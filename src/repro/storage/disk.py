"""The simulated disk: a per-file array of page images.

The paper's evaluation metric is the number of disk-page accesses, not
wall-clock time on a particular device, so the backing store is an in-memory
map from ``(file name, page number)`` to immutable page images. Every
transfer to or from the store is a *physical* I/O and is recorded in
:class:`~repro.storage.stats.IOStatistics` by the buffer pool.

The store is thread-safe (one reentrant lock over all maps) and can
optionally simulate device latency: when ``read_latency_seconds`` /
``write_latency_seconds`` are non-zero, each transfer sleeps that long
*after* releasing the lock, so concurrent workers' transfers overlap the
way independent disk requests would. The wall-clock benchmark uses this to
measure concurrent serving speedup honestly.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import Dict, List, Optional

from repro.errors import CorruptPageError, StorageError
from repro.obs.metrics import REGISTRY
from repro.storage.page import DEFAULT_PAGE_SIZE, Page


class DiskStore:
    """In-memory page store for any number of named files.

    Every page carries a CRC32 checksum in a sidecar map (never inside the
    page payload, so page layouts and the golden page-access counts stay
    bit-identical). The checksum is maintained on every write/allocation
    and verified on every physical read; a mismatch — which only fault
    injection or a genuine bug can produce — raises
    :class:`~repro.errors.CorruptPageError`. Verification is pure
    arithmetic on the already-transferred image and charges no I/O.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        #: set False to skip CRC verification on reads (escape hatch for
        #: benches that want the absolute minimum per-read overhead)
        self.verify_checksums = True
        #: simulated per-page device latency, slept *after* the store's
        #: lock is released so concurrent transfers overlap (sleeping
        #: releases the GIL — this is what makes multi-worker serving pay
        #: off in wall-clock terms). Zero (the default) sleeps nothing and
        #: keeps the sequential fast path sleep-free.
        self.read_latency_seconds = 0.0
        self.write_latency_seconds = 0.0
        # One reentrant lock over all file/checksum/version maps: store
        # operations are short dict-and-list manipulations, and reentrancy
        # lets write_page/allocate_page call bump_version under the lock.
        self._lock = threading.RLock()
        # Raw device-operation counters (includes accounting-free peeks,
        # which also read through the store); the paper-model physical
        # counts live in IOStatistics, recorded by the buffer pool.
        self._metric_reads = REGISTRY.counter("storage.disk.page_reads")
        self._metric_writes = REGISTRY.counter("storage.disk.page_writes")
        self._metric_allocs = REGISTRY.counter("storage.disk.pages_allocated")
        self._files: Dict[str, List[bytes]] = {}
        # Sidecar CRC32 per (file, page), parallel to _files.
        self._checksums: Dict[str, List[int]] = {}
        self._zero_page_crc = zlib.crc32(bytes(page_size))
        # Per-file modification counters for version-keyed decode caches.
        # Monotonic across the store's lifetime — surviving drop/recreate of
        # a name — so a (name, version) key can never alias stale content.
        self._versions: Dict[str, int] = {}
        # Version groups: a named counter bumped whenever any member file
        # bumps, giving callers O(1) staleness checks over many files
        # (e.g. a BSSF's F slice files) instead of F version lookups.
        self._group_versions: Dict[str, int] = {}
        self._file_groups: Dict[str, str] = {}

    def create_file(self, name: str) -> None:
        with self._lock:
            if name in self._files:
                raise StorageError(f"file already exists: {name!r}")
            self._files[name] = []
            self._checksums[name] = []
            self.bump_version(name)

    def drop_file(self, name: str) -> None:
        with self._lock:
            if name not in self._files:
                raise StorageError(f"no such file: {name!r}")
            del self._files[name]
            del self._checksums[name]
            # A dropped file leaves its version group: a later file recreated
            # under the same name must not silently rejoin (and bump) a group
            # registered for the old incarnation. The group itself is bumped
            # once so caches keyed on the old membership cannot stay valid.
            group = self._file_groups.pop(name, None)
            if group is not None:
                self._group_versions[group] = (
                    self._group_versions.get(group, 0) + 1
                )

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._files

    def file_names(self) -> List[str]:
        with self._lock:
            return sorted(self._files)

    def num_pages(self, name: str) -> int:
        with self._lock:
            return len(self._pages(name))

    def version(self, name: str) -> int:
        """Current modification counter of ``name`` (0 if never touched)."""
        with self._lock:
            return self._versions.get(name, 0)

    def bump_version(self, name: str) -> int:
        """Advance and return the file's modification counter.

        Called on every structural or content change — page allocation and
        page writes from the store itself, logical writes from
        :class:`~repro.storage.paged_file.PagedFile` (which may buffer the
        bytes in the pool long before they reach the store).
        """
        with self._lock:
            bumped = self._versions.get(name, 0) + 1
            self._versions[name] = bumped
            group = self._file_groups.get(name)
            if group is not None:
                self._group_versions[group] = (
                    self._group_versions.get(group, 0) + 1
                )
            return bumped

    def register_version_group(self, group: str, names) -> None:
        """Make ``group``'s counter advance whenever any named file bumps.

        A decode cache spanning many files (a BSSF's ``F`` slice files) can
        then validate itself with one counter read instead of ``F``.
        Registration itself bumps the group, conservatively invalidating
        anything keyed on an earlier membership.
        """
        with self._lock:
            for name in names:
                self._file_groups[name] = group
            self._group_versions[group] = self._group_versions.get(group, 0) + 1

    def group_version(self, group: str) -> int:
        """Current counter of a version group (0 if never registered)."""
        with self._lock:
            return self._group_versions.get(group, 0)

    def _pages(self, name: str) -> List[bytes]:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def allocate_page(self, name: str) -> int:
        """Extend the file by one zeroed page; return its page number."""
        with self._lock:
            pages = self._pages(name)
            pages.append(bytes(self.page_size))
            self._checksums[name].append(self._zero_page_crc)
            self.bump_version(name)
            self._metric_allocs.inc()
            return len(pages) - 1

    def read_page(self, name: str, page_no: int) -> Page:
        with self._lock:
            pages = self._pages(name)
            if not 0 <= page_no < len(pages):
                raise StorageError(
                    f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
                )
            self._metric_reads.inc()
            image = pages[page_no]
            if (
                self.verify_checksums
                and zlib.crc32(image) != self._checksums[name][page_no]
            ):
                raise CorruptPageError(
                    f"checksum mismatch on {name!r} page {page_no}: stored image "
                    f"does not match its recorded CRC32"
                )
        if self.read_latency_seconds:
            time.sleep(self.read_latency_seconds)
        return Page(self.page_size, image)

    def write_page(self, name: str, page_no: int, page: Page) -> None:
        with self._lock:
            pages = self._pages(name)
            if not 0 <= page_no < len(pages):
                raise StorageError(
                    f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
                )
            if page.page_size != self.page_size:
                raise StorageError(
                    f"page size mismatch: store {self.page_size}, "
                    f"page {page.page_size}"
                )
            image = page.image()
            pages[page_no] = image
            self._checksums[name][page_no] = zlib.crc32(image)
            self.bump_version(name)
            self._metric_writes.inc()
        if self.write_latency_seconds:
            time.sleep(self.write_latency_seconds)

    def total_pages(self) -> int:
        """Pages across all files — the simulated database footprint."""
        with self._lock:
            return sum(len(pages) for pages in self._files.values())

    # ------------------------------------------------------------------
    # Checksum facilities (fsck / snapshot / fault injection)
    # ------------------------------------------------------------------
    def page_checksums(self, name: str) -> List[int]:
        """Copy of the recorded CRC32 sidecar for one file."""
        with self._lock:
            self._pages(name)  # canonical no-such-file error
            return list(self._checksums[name])

    def page_image(self, name: str, page_no: int) -> bytes:
        """Raw stored bytes of one page — no verification, no accounting.

        Offline access for fsck and fault injection; regular readers go
        through :meth:`read_page`.
        """
        with self._lock:
            pages = self._pages(name)
            if not 0 <= page_no < len(pages):
                raise StorageError(
                    f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
                )
            return pages[page_no]

    def verify_page(self, name: str, page_no: int) -> bool:
        """``True`` iff the stored image matches its recorded checksum.

        Offline verification: touches no I/O counter and no pool state.
        """
        with self._lock:
            pages = self._pages(name)
            if not 0 <= page_no < len(pages):
                raise StorageError(
                    f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
                )
            return zlib.crc32(pages[page_no]) == self._checksums[name][page_no]

    def corrupt_pages(self, name: str) -> List[int]:
        """Page numbers of ``name`` whose image fails its checksum."""
        with self._lock:
            pages = self._pages(name)
            sums = self._checksums[name]
            return [
                page_no
                for page_no, image in enumerate(pages)
                if zlib.crc32(image) != sums[page_no]
            ]

    def checksum_report(self) -> Dict[str, List[int]]:
        """``{file: [corrupt page numbers]}`` over every file (fsck sweep)."""
        with self._lock:
            return {
                name: self.corrupt_pages(name) for name in sorted(self._files)
            }

    def adopt_pages(
        self,
        name: str,
        images: List[bytes],
        checksums: Optional[List[int]] = None,
    ) -> None:
        """Append page images wholesale (snapshot load path).

        ``checksums`` installs recorded CRCs from an external source (the
        snapshot catalog) instead of recomputing them — a loaded image that
        does not match its catalog checksum is then detectable by the
        normal read-path verification and by :meth:`corrupt_pages`.
        """
        with self._lock:
            pages = self._pages(name)
            for image in images:
                if len(image) != self.page_size:
                    raise StorageError(
                        f"adopted page for {name!r} is {len(image)} bytes, "
                        f"expected {self.page_size}"
                    )
            if checksums is not None and len(checksums) != len(images):
                raise StorageError(
                    f"{name!r}: {len(checksums)} checksums for {len(images)} pages"
                )
            pages.extend(bytes(image) for image in images)
            if checksums is not None:
                self._checksums[name].extend(int(c) for c in checksums)
            else:
                self._checksums[name].extend(
                    zlib.crc32(image) for image in images
                )
            self.bump_version(name)

    def _apply_corruption(
        self,
        name: str,
        page_no: int,
        image: bytes,
        checksum: Optional[int] = None,
    ) -> None:
        """Fault-injection hook: store ``image`` as-is, bypassing checksum
        maintenance (unless ``checksum`` explicitly sets the sidecar entry).

        Bumps the file version — the device content *did* change, so any
        decode cache keyed on the old version must re-read (and thereby
        detect the corruption). I/O metrics are untouched: corruption is
        not an operation the workload performed.
        """
        with self._lock:
            pages = self._pages(name)
            if not 0 <= page_no < len(pages):
                raise StorageError(
                    f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
                )
            if len(image) != self.page_size:
                raise StorageError(
                    f"corrupted image is {len(image)} bytes, "
                    f"expected {self.page_size}"
                )
            pages[page_no] = bytes(image)
            if checksum is not None:
                self._checksums[name][page_no] = checksum
            self.bump_version(name)
