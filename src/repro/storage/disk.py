"""The simulated disk: a per-file array of page images.

The paper's evaluation metric is the number of disk-page accesses, not
wall-clock time on a particular device, so the backing store is an in-memory
map from ``(file name, page number)`` to immutable page images. Every
transfer to or from the store is a *physical* I/O and is recorded in
:class:`~repro.storage.stats.IOStatistics` by the buffer pool.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import StorageError
from repro.obs.metrics import REGISTRY
from repro.storage.page import DEFAULT_PAGE_SIZE, Page


class DiskStore:
    """In-memory page store for any number of named files."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        # Raw device-operation counters (includes accounting-free peeks,
        # which also read through the store); the paper-model physical
        # counts live in IOStatistics, recorded by the buffer pool.
        self._metric_reads = REGISTRY.counter("storage.disk.page_reads")
        self._metric_writes = REGISTRY.counter("storage.disk.page_writes")
        self._metric_allocs = REGISTRY.counter("storage.disk.pages_allocated")
        self._files: Dict[str, List[bytes]] = {}
        # Per-file modification counters for version-keyed decode caches.
        # Monotonic across the store's lifetime — surviving drop/recreate of
        # a name — so a (name, version) key can never alias stale content.
        self._versions: Dict[str, int] = {}
        # Version groups: a named counter bumped whenever any member file
        # bumps, giving callers O(1) staleness checks over many files
        # (e.g. a BSSF's F slice files) instead of F version lookups.
        self._group_versions: Dict[str, int] = {}
        self._file_groups: Dict[str, str] = {}

    def create_file(self, name: str) -> None:
        if name in self._files:
            raise StorageError(f"file already exists: {name!r}")
        self._files[name] = []
        self.bump_version(name)

    def drop_file(self, name: str) -> None:
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        del self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def file_names(self) -> List[str]:
        return sorted(self._files)

    def num_pages(self, name: str) -> int:
        return len(self._pages(name))

    def version(self, name: str) -> int:
        """Current modification counter of ``name`` (0 if never touched)."""
        return self._versions.get(name, 0)

    def bump_version(self, name: str) -> int:
        """Advance and return the file's modification counter.

        Called on every structural or content change — page allocation and
        page writes from the store itself, logical writes from
        :class:`~repro.storage.paged_file.PagedFile` (which may buffer the
        bytes in the pool long before they reach the store).
        """
        bumped = self._versions.get(name, 0) + 1
        self._versions[name] = bumped
        group = self._file_groups.get(name)
        if group is not None:
            self._group_versions[group] = self._group_versions.get(group, 0) + 1
        return bumped

    def register_version_group(self, group: str, names) -> None:
        """Make ``group``'s counter advance whenever any named file bumps.

        A decode cache spanning many files (a BSSF's ``F`` slice files) can
        then validate itself with one counter read instead of ``F``.
        Registration itself bumps the group, conservatively invalidating
        anything keyed on an earlier membership.
        """
        for name in names:
            self._file_groups[name] = group
        self._group_versions[group] = self._group_versions.get(group, 0) + 1

    def group_version(self, group: str) -> int:
        """Current counter of a version group (0 if never registered)."""
        return self._group_versions.get(group, 0)

    def _pages(self, name: str) -> List[bytes]:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def allocate_page(self, name: str) -> int:
        """Extend the file by one zeroed page; return its page number."""
        pages = self._pages(name)
        pages.append(bytes(self.page_size))
        self.bump_version(name)
        self._metric_allocs.inc()
        return len(pages) - 1

    def read_page(self, name: str, page_no: int) -> Page:
        pages = self._pages(name)
        if not 0 <= page_no < len(pages):
            raise StorageError(
                f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
            )
        self._metric_reads.inc()
        return Page(self.page_size, pages[page_no])

    def write_page(self, name: str, page_no: int, page: Page) -> None:
        pages = self._pages(name)
        if not 0 <= page_no < len(pages):
            raise StorageError(
                f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
            )
        if page.page_size != self.page_size:
            raise StorageError(
                f"page size mismatch: store {self.page_size}, page {page.page_size}"
            )
        pages[page_no] = page.image()
        self.bump_version(name)
        self._metric_writes.inc()

    def total_pages(self) -> int:
        """Pages across all files — the simulated database footprint."""
        return sum(len(pages) for pages in self._files.values())
