"""The simulated disk: a per-file array of page images.

The paper's evaluation metric is the number of disk-page accesses, not
wall-clock time on a particular device, so the backing store is an in-memory
map from ``(file name, page number)`` to immutable page images. Every
transfer to or from the store is a *physical* I/O and is recorded in
:class:`~repro.storage.stats.IOStatistics` by the buffer pool.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import StorageError
from repro.storage.page import DEFAULT_PAGE_SIZE, Page


class DiskStore:
    """In-memory page store for any number of named files."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self._files: Dict[str, List[bytes]] = {}

    def create_file(self, name: str) -> None:
        if name in self._files:
            raise StorageError(f"file already exists: {name!r}")
        self._files[name] = []

    def drop_file(self, name: str) -> None:
        if name not in self._files:
            raise StorageError(f"no such file: {name!r}")
        del self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def file_names(self) -> List[str]:
        return sorted(self._files)

    def num_pages(self, name: str) -> int:
        return len(self._pages(name))

    def _pages(self, name: str) -> List[bytes]:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def allocate_page(self, name: str) -> int:
        """Extend the file by one zeroed page; return its page number."""
        pages = self._pages(name)
        pages.append(bytes(self.page_size))
        return len(pages) - 1

    def read_page(self, name: str, page_no: int) -> Page:
        pages = self._pages(name)
        if not 0 <= page_no < len(pages):
            raise StorageError(
                f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
            )
        return Page(self.page_size, pages[page_no])

    def write_page(self, name: str, page_no: int, page: Page) -> None:
        pages = self._pages(name)
        if not 0 <= page_no < len(pages):
            raise StorageError(
                f"page {page_no} out of range for {name!r} ({len(pages)} pages)"
            )
        if page.page_size != self.page_size:
            raise StorageError(
                f"page size mismatch: store {self.page_size}, page {page.page_size}"
            )
        pages[page_no] = page.image()

    def total_pages(self) -> int:
        """Pages across all files — the simulated database footprint."""
        return sum(len(pages) for pages in self._files.values())
