"""Fixed-size page images with typed read/write helpers.

A :class:`Page` wraps a mutable ``bytearray`` of exactly ``page_size`` bytes.
Structured accessors (u16/u32/u64, bytes) bound-check every access so layout
bugs surface as :class:`~repro.errors.PageError` instead of silent
corruption. The default page size follows the paper's Table 2 (P = 4096).
"""

from __future__ import annotations

import struct

from repro.errors import PageError

DEFAULT_PAGE_SIZE = 4096


class Page:
    """One page-sized byte image."""

    __slots__ = ("page_size", "data")

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, data: bytes | None = None):
        if page_size <= 0:
            raise PageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        if data is None:
            self.data = bytearray(page_size)
        else:
            if len(data) != page_size:
                raise PageError(
                    f"page image must be exactly {page_size} bytes, got {len(data)}"
                )
            self.data = bytearray(data)

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------
    def _check_span(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.page_size:
            raise PageError(
                f"access [{offset}, {offset + length}) outside page of "
                f"{self.page_size} bytes"
            )

    def read_bytes(self, offset: int, length: int) -> bytes:
        self._check_span(offset, length)
        return bytes(self.data[offset : offset + length])

    def write_bytes(self, offset: int, payload: bytes) -> None:
        self._check_span(offset, len(payload))
        self.data[offset : offset + len(payload)] = payload

    # ------------------------------------------------------------------
    # Typed accessors (little-endian)
    # ------------------------------------------------------------------
    def read_u16(self, offset: int) -> int:
        self._check_span(offset, 2)
        return struct.unpack_from("<H", self.data, offset)[0]

    def write_u16(self, offset: int, value: int) -> None:
        self._check_span(offset, 2)
        if not 0 <= value <= 0xFFFF:
            raise PageError(f"u16 out of range: {value}")
        struct.pack_into("<H", self.data, offset, value)

    def read_u32(self, offset: int) -> int:
        self._check_span(offset, 4)
        return struct.unpack_from("<I", self.data, offset)[0]

    def write_u32(self, offset: int, value: int) -> None:
        self._check_span(offset, 4)
        if not 0 <= value <= 0xFFFFFFFF:
            raise PageError(f"u32 out of range: {value}")
        struct.pack_into("<I", self.data, offset, value)

    def read_u64(self, offset: int) -> int:
        self._check_span(offset, 8)
        return struct.unpack_from("<Q", self.data, offset)[0]

    def write_u64(self, offset: int, value: int) -> None:
        self._check_span(offset, 8)
        if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
            raise PageError(f"u64 out of range: {value}")
        struct.pack_into("<Q", self.data, offset, value)

    def zero(self) -> None:
        """Clear the whole page."""
        self.data[:] = bytes(self.page_size)

    def image(self) -> bytes:
        """Immutable copy of the page contents."""
        return bytes(self.data)

    def __repr__(self) -> str:
        return f"Page(size={self.page_size})"
