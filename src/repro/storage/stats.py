"""I/O accounting for the paged storage substrate.

The paper's cost model is expressed in *page accesses*. The simulator tracks
two layers of counts per file:

``logical reads / writes``
    Every page the executing algorithm touches, whether or not the buffer
    pool already holds it. This is the quantity the paper's equations
    predict (they assume no buffering between steps).

``physical reads / writes``
    Pages actually moved between the buffer pool and the backing store
    (misses and dirty evictions/flushes). Useful for the buffer-pool
    ablation bench.

Counters are cheap plain ints; snapshots are immutable and subtractable so
an experiment can meter a single query as ``after - before``.

Concurrency: the shared counters are guarded by a lock, and a thread may
open an :meth:`IOStatistics.isolated` scope that routes its own recording
into a private :class:`PageAccessStats` delta, merged into the shared
counters when the scope closes. Inside the scope, :meth:`snapshot` returns
the scope's entry snapshot plus the thread's own delta — so a worker's
``after - before`` metering sees exactly its own page accesses, never a
concurrent neighbour's — and because merging is pure addition, the totals
after all scopes close are bit-identical to a sequential run of the same
work.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple


@dataclass(frozen=True)
class FileIOCounts:
    """Immutable per-file counters."""

    logical_reads: int = 0
    logical_writes: int = 0
    physical_reads: int = 0
    physical_writes: int = 0

    @property
    def logical_total(self) -> int:
        return self.logical_reads + self.logical_writes

    @property
    def physical_total(self) -> int:
        return self.physical_reads + self.physical_writes

    def __sub__(self, other: "FileIOCounts") -> "FileIOCounts":
        return FileIOCounts(
            self.logical_reads - other.logical_reads,
            self.logical_writes - other.logical_writes,
            self.physical_reads - other.physical_reads,
            self.physical_writes - other.physical_writes,
        )

    def __add__(self, other: "FileIOCounts") -> "FileIOCounts":
        return FileIOCounts(
            self.logical_reads + other.logical_reads,
            self.logical_writes + other.logical_writes,
            self.physical_reads + other.physical_reads,
            self.physical_writes + other.physical_writes,
        )


@dataclass(frozen=True)
class IOSnapshot:
    """A frozen view of every file's counters at one instant."""

    per_file: Mapping[str, FileIOCounts] = field(default_factory=dict)

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        names = set(self.per_file) | set(other.per_file)
        zero = FileIOCounts()
        return IOSnapshot(
            {
                name: self.per_file.get(name, zero) - other.per_file.get(name, zero)
                for name in names
            }
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        names = set(self.per_file) | set(other.per_file)
        zero = FileIOCounts()
        return IOSnapshot(
            {
                name: self.per_file.get(name, zero) + other.per_file.get(name, zero)
                for name in names
            }
        )

    def total(self) -> FileIOCounts:
        result = FileIOCounts()
        for counts in self.per_file.values():
            result = result + counts
        return result

    def for_file(self, name: str) -> FileIOCounts:
        return self.per_file.get(name, FileIOCounts())

    def files(self) -> Iterator[Tuple[str, FileIOCounts]]:
        return iter(sorted(self.per_file.items()))

    @property
    def logical_total(self) -> int:
        return self.total().logical_total

    @property
    def physical_total(self) -> int:
        return self.total().physical_total


class _RawCounts:
    """Plain-dict capture of per-file counters.

    The cheap cousin of :class:`IOSnapshot`: four dicts of ints, no frozen
    dataclass per file. Copying ~500 small dicts costs microseconds where
    materializing 500 :class:`FileIOCounts` costs milliseconds — this is
    what makes always-on tracing affordable. Materialize to a real
    :class:`IOSnapshot` only when someone asks.
    """

    __slots__ = ("lr", "lw", "pr", "pw")

    def __init__(self, lr, lw, pr, pw) -> None:
        self.lr = lr
        self.lw = lw
        self.pr = pr
        self.pw = pw

    def merged(self, delta: "PageAccessStats") -> "_RawCounts":
        """New counts = self plus a private delta's counts."""
        out = _RawCounts(dict(self.lr), dict(self.lw), dict(self.pr), dict(self.pw))
        for mine, theirs in (
            (out.lr, delta._logical_reads),
            (out.lw, delta._logical_writes),
            (out.pr, delta._physical_reads),
            (out.pw, delta._physical_writes),
        ):
            for name, pages in theirs.items():
                mine[name] = mine.get(name, 0) + pages
        return out

    def to_snapshot(self) -> IOSnapshot:
        names = set(self.lr) | set(self.lw) | set(self.pr) | set(self.pw)
        return IOSnapshot(
            {
                name: FileIOCounts(
                    self.lr.get(name, 0),
                    self.lw.get(name, 0),
                    self.pr.get(name, 0),
                    self.pw.get(name, 0),
                )
                for name in names
            }
        )

    def diff(self, other: "_RawCounts") -> IOSnapshot:
        """Sparse ``self - other``: only files whose counters changed.

        Observably equivalent to the dense :meth:`IOSnapshot.__sub__` for
        every consumer (totals, ``for_file``, non-zero ``pages_by_file``)
        — it merely omits the zero-delta entries the dense form carries.
        """
        names = (
            set(self.lr) | set(self.lw) | set(self.pr) | set(self.pw)
            | set(other.lr) | set(other.lw) | set(other.pr) | set(other.pw)
        )
        out = {}
        for name in names:
            counts = FileIOCounts(
                self.lr.get(name, 0) - other.lr.get(name, 0),
                self.lw.get(name, 0) - other.lw.get(name, 0),
                self.pr.get(name, 0) - other.pr.get(name, 0),
                self.pw.get(name, 0) - other.pw.get(name, 0),
            )
            if (
                counts.logical_reads or counts.logical_writes
                or counts.physical_reads or counts.physical_writes
            ):
                out[name] = counts
        return IOSnapshot(out)


class RawIOSnapshot:
    """A near-free capture of counter state, diffable later.

    ``token`` identifies the recording context the capture was taken in
    (the thread's private :class:`PageAccessStats` inside an
    :meth:`IOStatistics.isolated` scope, else the shared
    :class:`IOStatistics`). Two captures with the same token diff by their
    relative ``counts`` alone; captures straddling a scope boundary fall
    back to absolute counts (``base`` + ``counts``), still exact.
    """

    __slots__ = ("token", "counts", "base")

    def __init__(self, token, counts: _RawCounts, base) -> None:
        self.token = token
        self.counts = counts
        self.base = base

    def absolute(self) -> _RawCounts:
        if self.base is None:
            return self.counts
        out = _RawCounts(
            dict(self.base.lr), dict(self.base.lw),
            dict(self.base.pr), dict(self.base.pw),
        )
        for mine, theirs in (
            (out.lr, self.counts.lr), (out.lw, self.counts.lw),
            (out.pr, self.counts.pr), (out.pw, self.counts.pw),
        ):
            for name, pages in theirs.items():
                mine[name] = mine.get(name, 0) + pages
        return out


class JournalMark:
    """An O(1) position capture in a thread's I/O journal.

    The cheapest possible "snapshot": the journal list plus an index.
    Two marks bracket a span; replaying the entries between them yields
    the exact per-file delta this thread charged — lazily, only when
    someone reads ``span.io``.
    """

    __slots__ = ("journal", "index")

    def __init__(self, journal: list, index: int) -> None:
        self.journal = journal
        self.index = index


def _replay(journal: list, start: int, stop: int) -> IOSnapshot:
    """Fold journal entries ``[start:stop)`` into a sparse snapshot."""
    lr: Dict[str, int] = {}
    lw: Dict[str, int] = {}
    pr: Dict[str, int] = {}
    pw: Dict[str, int] = {}
    single = {"lr": lr, "lw": lw, "pr": pr, "pw": pw}
    for kind, payload, pages in journal[start:stop]:
        counters = single.get(kind)
        if counters is not None:
            counters[payload] = counters.get(payload, 0) + pages
        else:  # many-file form: payload is a list of names
            counters = lr if kind == "LR" else pr
            for name in payload:
                counters[name] = counters.get(name, 0) + pages
    names = set(lr) | set(lw) | set(pr) | set(pw)
    return IOSnapshot(
        {
            name: FileIOCounts(
                lr.get(name, 0), lw.get(name, 0), pr.get(name, 0), pw.get(name, 0)
            )
            for name in names
        }
    )


def diff_raw(after, before) -> IOSnapshot:
    """Exact I/O delta between two captures taken on the same statistics.

    Accepts :class:`JournalMark` pairs (the tracer's fast path),
    :class:`RawIOSnapshot` pairs (the batch executor's fast path) or plain
    :class:`IOSnapshot` pairs (eager fallback for exotic ``io_source``
    objects that only expose ``snapshot()``).
    """
    if isinstance(after, JournalMark):
        return _replay(after.journal, before.index, after.index)
    if isinstance(after, IOSnapshot):
        return after - before
    if after.token is before.token:
        return after.counts.diff(before.counts)
    return after.absolute().diff(before.absolute())


class PageAccessStats:
    """One thread's private page-access delta.

    Same recording surface as :class:`IOStatistics`, but unshared: no lock
    is needed because exactly one thread writes it. Created by
    :meth:`IOStatistics.isolated` and merged into the shared counters when
    the scope exits — merging is pure addition, so concurrent workers'
    merged totals equal the sequential totals of the same work.
    """

    __slots__ = (
        "_logical_reads",
        "_logical_writes",
        "_physical_reads",
        "_physical_writes",
    )

    def __init__(self) -> None:
        self._logical_reads: Dict[str, int] = {}
        self._logical_writes: Dict[str, int] = {}
        self._physical_reads: Dict[str, int] = {}
        self._physical_writes: Dict[str, int] = {}

    def record_logical_read(self, file_name: str, pages: int = 1) -> None:
        self._logical_reads[file_name] = self._logical_reads.get(file_name, 0) + pages

    def record_logical_write(self, file_name: str, pages: int = 1) -> None:
        self._logical_writes[file_name] = self._logical_writes.get(file_name, 0) + pages

    def record_physical_read(self, file_name: str, pages: int = 1) -> None:
        self._physical_reads[file_name] = self._physical_reads.get(file_name, 0) + pages

    def record_physical_write(self, file_name: str, pages: int = 1) -> None:
        self._physical_writes[file_name] = (
            self._physical_writes.get(file_name, 0) + pages
        )

    def record_logical_read_many(self, file_names, pages_each: int) -> None:
        counters = self._logical_reads
        for name in file_names:
            counters[name] = counters.get(name, 0) + pages_each

    def record_physical_read_many(self, file_names, pages_each: int) -> None:
        counters = self._physical_reads
        for name in file_names:
            counters[name] = counters.get(name, 0) + pages_each

    def snapshot(self) -> IOSnapshot:
        names = (
            set(self._logical_reads)
            | set(self._logical_writes)
            | set(self._physical_reads)
            | set(self._physical_writes)
        )
        return IOSnapshot(
            {
                name: FileIOCounts(
                    self._logical_reads.get(name, 0),
                    self._logical_writes.get(name, 0),
                    self._physical_reads.get(name, 0),
                    self._physical_writes.get(name, 0),
                )
                for name in names
            }
        )


class IOStatistics:
    """Mutable counter registry shared by a storage manager's files.

    Thread-safe: shared counters are mutated under a lock, and a thread
    inside an :meth:`isolated` scope records into its own
    :class:`PageAccessStats` without touching the lock at all.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._logical_reads: Dict[str, int] = {}
        self._logical_writes: Dict[str, int] = {}
        self._physical_reads: Dict[str, int] = {}
        self._physical_writes: Dict[str, int] = {}

    def _delta(self):
        scope = getattr(self._local, "scope", None)
        return scope[1] if scope is not None else None

    # ------------------------------------------------------------------
    # Tracing journal
    # ------------------------------------------------------------------
    # When a tracer is active on this thread, every record_* call appends
    # one entry to a thread-local journal (an O(1) list append per *call*,
    # not per file). Spans capture journal positions instead of snapshots,
    # making the per-span capture cost independent of how many files the
    # store holds. With no tracer active the journal is None and each
    # record path pays one attribute read.
    def journal_acquire(self):
        """Enable (or join) this thread's I/O journal.

        Returns ``(journal, owned)``; the caller that received
        ``owned=True`` enabled journaling and must call
        :meth:`journal_release` when its root span closes.
        """
        journal = getattr(self._local, "journal", None)
        if journal is not None:
            return journal, False
        journal = []
        self._local.journal = journal
        return journal, True

    def journal_release(self) -> None:
        """Stop journaling on this thread (spans keep their entries alive)."""
        self._local.journal = None

    def record_logical_read(self, file_name: str, pages: int = 1) -> None:
        journal = getattr(self._local, "journal", None)
        if journal is not None:
            journal.append(("lr", file_name, pages))
        delta = self._delta()
        if delta is not None:
            delta.record_logical_read(file_name, pages)
            return
        with self._lock:
            self._logical_reads[file_name] = (
                self._logical_reads.get(file_name, 0) + pages
            )

    def record_logical_write(self, file_name: str, pages: int = 1) -> None:
        journal = getattr(self._local, "journal", None)
        if journal is not None:
            journal.append(("lw", file_name, pages))
        delta = self._delta()
        if delta is not None:
            delta.record_logical_write(file_name, pages)
            return
        with self._lock:
            self._logical_writes[file_name] = (
                self._logical_writes.get(file_name, 0) + pages
            )

    def record_physical_read(self, file_name: str, pages: int = 1) -> None:
        journal = getattr(self._local, "journal", None)
        if journal is not None:
            journal.append(("pr", file_name, pages))
        delta = self._delta()
        if delta is not None:
            delta.record_physical_read(file_name, pages)
            return
        with self._lock:
            self._physical_reads[file_name] = (
                self._physical_reads.get(file_name, 0) + pages
            )

    def record_physical_write(self, file_name: str, pages: int = 1) -> None:
        journal = getattr(self._local, "journal", None)
        if journal is not None:
            journal.append(("pw", file_name, pages))
        delta = self._delta()
        if delta is not None:
            delta.record_physical_write(file_name, pages)
            return
        with self._lock:
            self._physical_writes[file_name] = (
                self._physical_writes.get(file_name, 0) + pages
            )

    def record_logical_read_many(self, file_names, pages_each: int) -> None:
        """Charge ``pages_each`` logical reads to every named file.

        Equivalent to calling :meth:`record_logical_read` per file, but one
        call for a whole batch — the hot path of packed slice search, which
        charges hundreds of slice files per query.
        """
        journal = getattr(self._local, "journal", None)
        if journal is not None:
            file_names = list(file_names)
            journal.append(("LR", file_names, pages_each))
        delta = self._delta()
        if delta is not None:
            delta.record_logical_read_many(file_names, pages_each)
            return
        with self._lock:
            counters = self._logical_reads
            for name in file_names:
                counters[name] = counters.get(name, 0) + pages_each

    def record_physical_read_many(self, file_names, pages_each: int) -> None:
        """Bulk form of :meth:`record_physical_read` (see above)."""
        journal = getattr(self._local, "journal", None)
        if journal is not None:
            file_names = list(file_names)
            journal.append(("PR", file_names, pages_each))
        delta = self._delta()
        if delta is not None:
            delta.record_physical_read_many(file_names, pages_each)
            return
        with self._lock:
            counters = self._physical_reads
            for name in file_names:
                counters[name] = counters.get(name, 0) + pages_each

    # ------------------------------------------------------------------
    # Per-thread isolation
    # ------------------------------------------------------------------
    @contextmanager
    def isolated(self):
        """Route this thread's recording into a private delta for the body.

        On entry the shared snapshot is captured once; inside the scope
        :meth:`snapshot` returns *entry snapshot + own delta*, so metering
        a query as ``after - before`` observes exactly this thread's page
        accesses regardless of concurrent neighbours. On exit the delta
        merges into the shared counters (or the enclosing scope's delta —
        scopes nest). Yields the :class:`PageAccessStats` delta.
        """
        base = self._raw_base()
        delta = PageAccessStats()
        previous = getattr(self._local, "scope", None)
        self._local.scope = (base, delta)
        try:
            yield delta
        finally:
            self._local.scope = previous
            self._merge(delta)

    def _merge(self, delta: PageAccessStats) -> None:
        """Fold a finished delta into the enclosing scope or shared state."""
        outer = self._delta()
        if outer is not None:
            for mine, theirs in (
                (outer._logical_reads, delta._logical_reads),
                (outer._logical_writes, delta._logical_writes),
                (outer._physical_reads, delta._physical_reads),
                (outer._physical_writes, delta._physical_writes),
            ):
                for name, pages in theirs.items():
                    mine[name] = mine.get(name, 0) + pages
            return
        with self._lock:
            for mine, theirs in (
                (self._logical_reads, delta._logical_reads),
                (self._logical_writes, delta._logical_writes),
                (self._physical_reads, delta._physical_reads),
                (self._physical_writes, delta._physical_writes),
            ):
                for name, pages in theirs.items():
                    mine[name] = mine.get(name, 0) + pages

    def _raw_base(self) -> _RawCounts:
        """Counter state visible to this thread, as cheap raw dicts."""
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            base, delta = scope
            return base.merged(delta)
        with self._lock:
            return _RawCounts(
                dict(self._logical_reads),
                dict(self._logical_writes),
                dict(self._physical_reads),
                dict(self._physical_writes),
            )

    def raw_snapshot(self) -> RawIOSnapshot:
        """Capture counter state without materializing an :class:`IOSnapshot`.

        Costs a handful of dict copies (microseconds) instead of building
        one frozen dataclass per file (milliseconds on a bit-sliced store
        with hundreds of slice files). Pair two captures with
        :func:`diff_raw` for an exact per-file delta. This is the tracer's
        hot path.
        """
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            base, delta = scope
            counts = _RawCounts(
                dict(delta._logical_reads),
                dict(delta._logical_writes),
                dict(delta._physical_reads),
                dict(delta._physical_writes),
            )
            return RawIOSnapshot(delta, counts, base)
        with self._lock:
            counts = _RawCounts(
                dict(self._logical_reads),
                dict(self._logical_writes),
                dict(self._physical_reads),
                dict(self._physical_writes),
            )
        return RawIOSnapshot(self, counts, None)

    def merge_snapshot(self, snap: IOSnapshot) -> None:
        """Fold an externally metered :class:`IOSnapshot` into the counters.

        Used by the process-pool execution mode: each worker process meters
        its queries against its own private store, ships the per-query
        delta back, and the parent merges it here so shared totals match a
        sequential run of the same work (merging is pure addition, exactly
        like :meth:`isolated` scope exits).
        """
        delta = self._delta()
        if delta is not None:
            for name, counts in snap.per_file.items():
                if counts.logical_reads:
                    delta.record_logical_read(name, counts.logical_reads)
                if counts.logical_writes:
                    delta.record_logical_write(name, counts.logical_writes)
                if counts.physical_reads:
                    delta.record_physical_read(name, counts.physical_reads)
                if counts.physical_writes:
                    delta.record_physical_write(name, counts.physical_writes)
            return
        with self._lock:
            for name, counts in snap.per_file.items():
                for store, pages in (
                    (self._logical_reads, counts.logical_reads),
                    (self._logical_writes, counts.logical_writes),
                    (self._physical_reads, counts.physical_reads),
                    (self._physical_writes, counts.physical_writes),
                ):
                    if pages:
                        store[name] = store.get(name, 0) + pages

    def snapshot(self) -> IOSnapshot:
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            base, delta = scope
            return base.merged(delta).to_snapshot()
        with self._lock:
            names = (
                set(self._logical_reads)
                | set(self._logical_writes)
                | set(self._physical_reads)
                | set(self._physical_writes)
            )
            return IOSnapshot(
                {
                    name: FileIOCounts(
                        self._logical_reads.get(name, 0),
                        self._logical_writes.get(name, 0),
                        self._physical_reads.get(name, 0),
                        self._physical_writes.get(name, 0),
                    )
                    for name in names
                }
            )

    def reset(self) -> None:
        with self._lock:
            self._logical_reads.clear()
            self._logical_writes.clear()
            self._physical_reads.clear()
            self._physical_writes.clear()
