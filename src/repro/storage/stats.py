"""I/O accounting for the paged storage substrate.

The paper's cost model is expressed in *page accesses*. The simulator tracks
two layers of counts per file:

``logical reads / writes``
    Every page the executing algorithm touches, whether or not the buffer
    pool already holds it. This is the quantity the paper's equations
    predict (they assume no buffering between steps).

``physical reads / writes``
    Pages actually moved between the buffer pool and the backing store
    (misses and dirty evictions/flushes). Useful for the buffer-pool
    ablation bench.

Counters are cheap plain ints; snapshots are immutable and subtractable so
an experiment can meter a single query as ``after - before``.

Concurrency: the shared counters are guarded by a lock, and a thread may
open an :meth:`IOStatistics.isolated` scope that routes its own recording
into a private :class:`PageAccessStats` delta, merged into the shared
counters when the scope closes. Inside the scope, :meth:`snapshot` returns
the scope's entry snapshot plus the thread's own delta — so a worker's
``after - before`` metering sees exactly its own page accesses, never a
concurrent neighbour's — and because merging is pure addition, the totals
after all scopes close are bit-identical to a sequential run of the same
work.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple


@dataclass(frozen=True)
class FileIOCounts:
    """Immutable per-file counters."""

    logical_reads: int = 0
    logical_writes: int = 0
    physical_reads: int = 0
    physical_writes: int = 0

    @property
    def logical_total(self) -> int:
        return self.logical_reads + self.logical_writes

    @property
    def physical_total(self) -> int:
        return self.physical_reads + self.physical_writes

    def __sub__(self, other: "FileIOCounts") -> "FileIOCounts":
        return FileIOCounts(
            self.logical_reads - other.logical_reads,
            self.logical_writes - other.logical_writes,
            self.physical_reads - other.physical_reads,
            self.physical_writes - other.physical_writes,
        )

    def __add__(self, other: "FileIOCounts") -> "FileIOCounts":
        return FileIOCounts(
            self.logical_reads + other.logical_reads,
            self.logical_writes + other.logical_writes,
            self.physical_reads + other.physical_reads,
            self.physical_writes + other.physical_writes,
        )


@dataclass(frozen=True)
class IOSnapshot:
    """A frozen view of every file's counters at one instant."""

    per_file: Mapping[str, FileIOCounts] = field(default_factory=dict)

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        names = set(self.per_file) | set(other.per_file)
        zero = FileIOCounts()
        return IOSnapshot(
            {
                name: self.per_file.get(name, zero) - other.per_file.get(name, zero)
                for name in names
            }
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        names = set(self.per_file) | set(other.per_file)
        zero = FileIOCounts()
        return IOSnapshot(
            {
                name: self.per_file.get(name, zero) + other.per_file.get(name, zero)
                for name in names
            }
        )

    def total(self) -> FileIOCounts:
        result = FileIOCounts()
        for counts in self.per_file.values():
            result = result + counts
        return result

    def for_file(self, name: str) -> FileIOCounts:
        return self.per_file.get(name, FileIOCounts())

    def files(self) -> Iterator[Tuple[str, FileIOCounts]]:
        return iter(sorted(self.per_file.items()))

    @property
    def logical_total(self) -> int:
        return self.total().logical_total

    @property
    def physical_total(self) -> int:
        return self.total().physical_total


class PageAccessStats:
    """One thread's private page-access delta.

    Same recording surface as :class:`IOStatistics`, but unshared: no lock
    is needed because exactly one thread writes it. Created by
    :meth:`IOStatistics.isolated` and merged into the shared counters when
    the scope exits — merging is pure addition, so concurrent workers'
    merged totals equal the sequential totals of the same work.
    """

    __slots__ = (
        "_logical_reads",
        "_logical_writes",
        "_physical_reads",
        "_physical_writes",
    )

    def __init__(self) -> None:
        self._logical_reads: Dict[str, int] = {}
        self._logical_writes: Dict[str, int] = {}
        self._physical_reads: Dict[str, int] = {}
        self._physical_writes: Dict[str, int] = {}

    def record_logical_read(self, file_name: str, pages: int = 1) -> None:
        self._logical_reads[file_name] = self._logical_reads.get(file_name, 0) + pages

    def record_logical_write(self, file_name: str, pages: int = 1) -> None:
        self._logical_writes[file_name] = self._logical_writes.get(file_name, 0) + pages

    def record_physical_read(self, file_name: str, pages: int = 1) -> None:
        self._physical_reads[file_name] = self._physical_reads.get(file_name, 0) + pages

    def record_physical_write(self, file_name: str, pages: int = 1) -> None:
        self._physical_writes[file_name] = (
            self._physical_writes.get(file_name, 0) + pages
        )

    def record_logical_read_many(self, file_names, pages_each: int) -> None:
        counters = self._logical_reads
        for name in file_names:
            counters[name] = counters.get(name, 0) + pages_each

    def record_physical_read_many(self, file_names, pages_each: int) -> None:
        counters = self._physical_reads
        for name in file_names:
            counters[name] = counters.get(name, 0) + pages_each

    def snapshot(self) -> IOSnapshot:
        names = (
            set(self._logical_reads)
            | set(self._logical_writes)
            | set(self._physical_reads)
            | set(self._physical_writes)
        )
        return IOSnapshot(
            {
                name: FileIOCounts(
                    self._logical_reads.get(name, 0),
                    self._logical_writes.get(name, 0),
                    self._physical_reads.get(name, 0),
                    self._physical_writes.get(name, 0),
                )
                for name in names
            }
        )


class IOStatistics:
    """Mutable counter registry shared by a storage manager's files.

    Thread-safe: shared counters are mutated under a lock, and a thread
    inside an :meth:`isolated` scope records into its own
    :class:`PageAccessStats` without touching the lock at all.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._logical_reads: Dict[str, int] = {}
        self._logical_writes: Dict[str, int] = {}
        self._physical_reads: Dict[str, int] = {}
        self._physical_writes: Dict[str, int] = {}

    def _delta(self):
        scope = getattr(self._local, "scope", None)
        return scope[1] if scope is not None else None

    def record_logical_read(self, file_name: str, pages: int = 1) -> None:
        delta = self._delta()
        if delta is not None:
            delta.record_logical_read(file_name, pages)
            return
        with self._lock:
            self._logical_reads[file_name] = (
                self._logical_reads.get(file_name, 0) + pages
            )

    def record_logical_write(self, file_name: str, pages: int = 1) -> None:
        delta = self._delta()
        if delta is not None:
            delta.record_logical_write(file_name, pages)
            return
        with self._lock:
            self._logical_writes[file_name] = (
                self._logical_writes.get(file_name, 0) + pages
            )

    def record_physical_read(self, file_name: str, pages: int = 1) -> None:
        delta = self._delta()
        if delta is not None:
            delta.record_physical_read(file_name, pages)
            return
        with self._lock:
            self._physical_reads[file_name] = (
                self._physical_reads.get(file_name, 0) + pages
            )

    def record_physical_write(self, file_name: str, pages: int = 1) -> None:
        delta = self._delta()
        if delta is not None:
            delta.record_physical_write(file_name, pages)
            return
        with self._lock:
            self._physical_writes[file_name] = (
                self._physical_writes.get(file_name, 0) + pages
            )

    def record_logical_read_many(self, file_names, pages_each: int) -> None:
        """Charge ``pages_each`` logical reads to every named file.

        Equivalent to calling :meth:`record_logical_read` per file, but one
        call for a whole batch — the hot path of packed slice search, which
        charges hundreds of slice files per query.
        """
        delta = self._delta()
        if delta is not None:
            delta.record_logical_read_many(file_names, pages_each)
            return
        with self._lock:
            counters = self._logical_reads
            for name in file_names:
                counters[name] = counters.get(name, 0) + pages_each

    def record_physical_read_many(self, file_names, pages_each: int) -> None:
        """Bulk form of :meth:`record_physical_read` (see above)."""
        delta = self._delta()
        if delta is not None:
            delta.record_physical_read_many(file_names, pages_each)
            return
        with self._lock:
            counters = self._physical_reads
            for name in file_names:
                counters[name] = counters.get(name, 0) + pages_each

    # ------------------------------------------------------------------
    # Per-thread isolation
    # ------------------------------------------------------------------
    @contextmanager
    def isolated(self):
        """Route this thread's recording into a private delta for the body.

        On entry the shared snapshot is captured once; inside the scope
        :meth:`snapshot` returns *entry snapshot + own delta*, so metering
        a query as ``after - before`` observes exactly this thread's page
        accesses regardless of concurrent neighbours. On exit the delta
        merges into the shared counters (or the enclosing scope's delta —
        scopes nest). Yields the :class:`PageAccessStats` delta.
        """
        base = self.snapshot()
        delta = PageAccessStats()
        previous = getattr(self._local, "scope", None)
        self._local.scope = (base, delta)
        try:
            yield delta
        finally:
            self._local.scope = previous
            self._merge(delta)

    def _merge(self, delta: PageAccessStats) -> None:
        """Fold a finished delta into the enclosing scope or shared state."""
        outer = self._delta()
        if outer is not None:
            for mine, theirs in (
                (outer._logical_reads, delta._logical_reads),
                (outer._logical_writes, delta._logical_writes),
                (outer._physical_reads, delta._physical_reads),
                (outer._physical_writes, delta._physical_writes),
            ):
                for name, pages in theirs.items():
                    mine[name] = mine.get(name, 0) + pages
            return
        with self._lock:
            for mine, theirs in (
                (self._logical_reads, delta._logical_reads),
                (self._logical_writes, delta._logical_writes),
                (self._physical_reads, delta._physical_reads),
                (self._physical_writes, delta._physical_writes),
            ):
                for name, pages in theirs.items():
                    mine[name] = mine.get(name, 0) + pages

    def snapshot(self) -> IOSnapshot:
        scope = getattr(self._local, "scope", None)
        if scope is not None:
            base, delta = scope
            return base + delta.snapshot()
        with self._lock:
            names = (
                set(self._logical_reads)
                | set(self._logical_writes)
                | set(self._physical_reads)
                | set(self._physical_writes)
            )
            return IOSnapshot(
                {
                    name: FileIOCounts(
                        self._logical_reads.get(name, 0),
                        self._logical_writes.get(name, 0),
                        self._physical_reads.get(name, 0),
                        self._physical_writes.get(name, 0),
                    )
                    for name in names
                }
            )

    def reset(self) -> None:
        with self._lock:
            self._logical_reads.clear()
            self._logical_writes.clear()
            self._physical_reads.clear()
            self._physical_writes.clear()
