"""I/O accounting for the paged storage substrate.

The paper's cost model is expressed in *page accesses*. The simulator tracks
two layers of counts per file:

``logical reads / writes``
    Every page the executing algorithm touches, whether or not the buffer
    pool already holds it. This is the quantity the paper's equations
    predict (they assume no buffering between steps).

``physical reads / writes``
    Pages actually moved between the buffer pool and the backing store
    (misses and dirty evictions/flushes). Useful for the buffer-pool
    ablation bench.

Counters are cheap plain ints; snapshots are immutable and subtractable so
an experiment can meter a single query as ``after - before``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple


@dataclass(frozen=True)
class FileIOCounts:
    """Immutable per-file counters."""

    logical_reads: int = 0
    logical_writes: int = 0
    physical_reads: int = 0
    physical_writes: int = 0

    @property
    def logical_total(self) -> int:
        return self.logical_reads + self.logical_writes

    @property
    def physical_total(self) -> int:
        return self.physical_reads + self.physical_writes

    def __sub__(self, other: "FileIOCounts") -> "FileIOCounts":
        return FileIOCounts(
            self.logical_reads - other.logical_reads,
            self.logical_writes - other.logical_writes,
            self.physical_reads - other.physical_reads,
            self.physical_writes - other.physical_writes,
        )

    def __add__(self, other: "FileIOCounts") -> "FileIOCounts":
        return FileIOCounts(
            self.logical_reads + other.logical_reads,
            self.logical_writes + other.logical_writes,
            self.physical_reads + other.physical_reads,
            self.physical_writes + other.physical_writes,
        )


@dataclass(frozen=True)
class IOSnapshot:
    """A frozen view of every file's counters at one instant."""

    per_file: Mapping[str, FileIOCounts] = field(default_factory=dict)

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        names = set(self.per_file) | set(other.per_file)
        zero = FileIOCounts()
        return IOSnapshot(
            {
                name: self.per_file.get(name, zero) - other.per_file.get(name, zero)
                for name in names
            }
        )

    def total(self) -> FileIOCounts:
        result = FileIOCounts()
        for counts in self.per_file.values():
            result = result + counts
        return result

    def for_file(self, name: str) -> FileIOCounts:
        return self.per_file.get(name, FileIOCounts())

    def files(self) -> Iterator[Tuple[str, FileIOCounts]]:
        return iter(sorted(self.per_file.items()))

    @property
    def logical_total(self) -> int:
        return self.total().logical_total

    @property
    def physical_total(self) -> int:
        return self.total().physical_total


class IOStatistics:
    """Mutable counter registry shared by a storage manager's files."""

    def __init__(self) -> None:
        self._logical_reads: Dict[str, int] = {}
        self._logical_writes: Dict[str, int] = {}
        self._physical_reads: Dict[str, int] = {}
        self._physical_writes: Dict[str, int] = {}

    def record_logical_read(self, file_name: str, pages: int = 1) -> None:
        self._logical_reads[file_name] = self._logical_reads.get(file_name, 0) + pages

    def record_logical_write(self, file_name: str, pages: int = 1) -> None:
        self._logical_writes[file_name] = self._logical_writes.get(file_name, 0) + pages

    def record_physical_read(self, file_name: str, pages: int = 1) -> None:
        self._physical_reads[file_name] = self._physical_reads.get(file_name, 0) + pages

    def record_physical_write(self, file_name: str, pages: int = 1) -> None:
        self._physical_writes[file_name] = (
            self._physical_writes.get(file_name, 0) + pages
        )

    def record_logical_read_many(self, file_names, pages_each: int) -> None:
        """Charge ``pages_each`` logical reads to every named file.

        Equivalent to calling :meth:`record_logical_read` per file, but one
        call for a whole batch — the hot path of packed slice search, which
        charges hundreds of slice files per query.
        """
        counters = self._logical_reads
        for name in file_names:
            counters[name] = counters.get(name, 0) + pages_each

    def record_physical_read_many(self, file_names, pages_each: int) -> None:
        """Bulk form of :meth:`record_physical_read` (see above)."""
        counters = self._physical_reads
        for name in file_names:
            counters[name] = counters.get(name, 0) + pages_each

    def snapshot(self) -> IOSnapshot:
        names = (
            set(self._logical_reads)
            | set(self._logical_writes)
            | set(self._physical_reads)
            | set(self._physical_writes)
        )
        return IOSnapshot(
            {
                name: FileIOCounts(
                    self._logical_reads.get(name, 0),
                    self._logical_writes.get(name, 0),
                    self._physical_reads.get(name, 0),
                    self._physical_writes.get(name, 0),
                )
                for name in names
            }
        )

    def reset(self) -> None:
        self._logical_reads.clear()
        self._logical_writes.clear()
        self._physical_reads.clear()
        self._physical_writes.clear()
