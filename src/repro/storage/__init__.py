"""Paged storage substrate: simulated disk, buffer pool, I/O accounting.

The OODB object store and every access facility (SSF, BSSF, NIX) are built
on this layer; its logical page-access counters are the empirical
counterpart of the paper's analytical cost model.
"""

from repro.storage.buffer_pool import BufferPool
from repro.storage.decode_cache import DecodeCache
from repro.storage.disk import DiskStore
from repro.storage.faults import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    with_retries,
)
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.paged_file import PagedFile, StorageManager
from repro.storage.stats import FileIOCounts, IOSnapshot, IOStatistics

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_RETRY_POLICY",
    "DecodeCache",
    "DiskStore",
    "FaultInjector",
    "FaultRule",
    "FileIOCounts",
    "InjectedFault",
    "IOSnapshot",
    "IOStatistics",
    "Page",
    "PagedFile",
    "RetryPolicy",
    "StorageManager",
    "with_retries",
]
