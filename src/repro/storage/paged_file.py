"""Paged file handles: the interface access methods program against.

A :class:`PagedFile` mediates every page access of one named file through
the buffer pool, recording *logical* reads and writes — the paper-model
quantity — on each call regardless of cache residency.

Mutation protocol: callers fetch a page with :meth:`read_page` (or create
one with :meth:`append_page`), mutate the returned :class:`Page` in place,
then call :meth:`write_page` to record the logical write and schedule
write-back. Skipping ``write_page`` after mutating loses the change on
eviction in cached mode and immediately in uncached mode — by design, since
that is what forgetting to write a frame back does on a real system.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskStore
from repro.storage.page import Page
from repro.storage.stats import IOStatistics


class PagedFile:
    """Handle to one named file in the simulated database."""

    def __init__(
        self,
        name: str,
        store: DiskStore,
        pool: BufferPool,
        stats: IOStatistics,
    ):
        self.name = name
        self._store = store
        self._pool = pool
        self._stats = stats

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self._store.page_size

    @property
    def num_pages(self) -> int:
        return self._store.num_pages(self.name)

    @property
    def version(self) -> int:
        """Monotonic modification counter — key for decoded-page caches.

        Bumped by every logical write or page allocation, so any cached
        decode of this file's content is valid exactly as long as the
        version it was captured at is still current.
        """
        return self._store.version(self.name)

    # ------------------------------------------------------------------
    # Page operations
    # ------------------------------------------------------------------
    def read_page(self, page_no: int) -> Page:
        """Fetch one page; counts one logical read."""
        self._stats.record_logical_read(self.name)
        return self._pool.fetch(self.name, page_no)

    def charge_read(self, page_no: int) -> None:
        """Charge the full accounting of :meth:`read_page` without decoding.

        Used by version-keyed decode caches: on a cache hit the algorithm
        still *logically* reads every page (the paper's metric), and the
        buffer pool must land in exactly the state a real fetch would leave
        it in (hit/miss counters, LRU order, residency, physical reads) —
        only the page image materialization is skipped.
        """
        self._stats.record_logical_read(self.name)
        self._pool.touch(self.name, page_no)

    def peek_page(self, page_no: int) -> Page:
        """Current page image with NO accounting or pool-state change.

        For decode caches only: read the content here, then charge the
        logical I/O the algorithm actually performs via :meth:`charge_read`
        or :meth:`charge_reads`. Never a substitute for :meth:`read_page`
        in access-method code paths that the cost model meters.
        """
        return self._pool.peek(self.name, page_no)

    def charge_reads(self, count: int) -> None:
        """Charge ``count`` logical reads of pages ``0..count-1`` in bulk.

        Same contract as :meth:`charge_read` — counters and pool state end
        up exactly as ``count`` real fetches would leave them — but with
        O(1) cost in uncached mode. The caller guarantees the pages exist
        (decode caches charge only pages they just decoded).
        """
        if count <= 0:
            return
        self._stats.record_logical_read(self.name, count)
        self._pool.touch_file(self.name, count)

    def write_page(self, page_no: int, page: Page) -> None:
        """Record a logical write of a (mutated) page and persist it."""
        if not 0 <= page_no < self.num_pages:
            raise StorageError(
                f"page {page_no} out of range for {self.name!r} "
                f"({self.num_pages} pages)"
            )
        self._stats.record_logical_write(self.name)
        self._store.bump_version(self.name)
        if self._pool.capacity == 0:
            self._pool.write_through(self.name, page_no, page)
        else:
            self._pool.put(self.name, page_no, page, dirty=True)

    def append_page(self) -> Tuple[int, Page]:
        """Allocate a zeroed page at the end of the file.

        Counts one logical write (the append itself); further mutations of
        the returned page must still go through :meth:`write_page` if the
        caller wants them counted/persisted.
        """
        page_no = self._store.allocate_page(self.name)
        page = Page(self.page_size)
        self._stats.record_logical_write(self.name)
        if self._pool.capacity == 0:
            self._pool.write_through(self.name, page_no, page)
        else:
            self._pool.put(self.name, page_no, page, dirty=True)
        return page_no, page

    def scan_pages(self) -> Iterator[Tuple[int, Page]]:
        """Full sequential scan; each yielded page counts one logical read."""
        for page_no in range(self.num_pages):
            yield page_no, self.read_page(page_no)

    def __repr__(self) -> str:
        return f"PagedFile({self.name!r}, pages={self.num_pages})"


class StorageManager:
    """Owns the disk, the buffer pool, the statistics, and the file table.

    One manager per simulated database instance. ``pool_capacity = 0``
    reproduces the paper's unbuffered cost model; larger pools are used by
    the buffer-pool ablation bench.
    """

    def __init__(self, page_size: int = 4096, pool_capacity: int = 0):
        self.stats = IOStatistics()
        self.store = DiskStore(page_size=page_size)
        self.pool = BufferPool(self.store, self.stats, capacity=pool_capacity)

    @property
    def page_size(self) -> int:
        return self.store.page_size

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def attach_fault_injector(self, injector=None, **kwargs):
        """Interpose a fault injector between the pool and the disk.

        Pass a ready-made :class:`~repro.storage.faults.FaultInjector`, or
        keyword arguments (``rules=``, ``seed=``, rates) to build one
        around the current store. All device traffic — pool fetches and
        write-backs, accounting-free peeks — flows through the injector;
        already-open :class:`PagedFile` handles are unaffected because
        their page images travel via the pool, which is rewired here.
        Returns the injector so callers can add rules or read its log.

        Transient faults are retried by the buffer pool per its
        :class:`~repro.storage.faults.RetryPolicy` (attempt count,
        exponential backoff, optional ``jitter_seconds`` and a
        ``max_elapsed_seconds`` cap on total retry time). Rules with
        ``op="wal-append"`` fire on write-ahead-log appends instead of
        device I/O — attach through
        :meth:`repro.objects.database.Database.attach_fault_injector` so
        the WAL sees the injector too.
        """
        from repro.storage.faults import FaultInjector

        if isinstance(self.store, FaultInjector):
            raise StorageError("a fault injector is already attached")
        if injector is None:
            injector = FaultInjector(self.store, **kwargs)
        elif kwargs:
            raise StorageError(
                "pass either a FaultInjector or constructor kwargs, not both"
            )
        self.store = injector
        self.pool.store = injector
        return injector

    def detach_fault_injector(self) -> None:
        """Remove the injector (if any), restoring the raw store."""
        from repro.storage.faults import FaultInjector

        if isinstance(self.store, FaultInjector):
            inner = self.store.inner
            self.store = inner
            self.pool.store = inner

    def create_file(self, name: str) -> PagedFile:
        self.store.create_file(name)
        return PagedFile(name, self.store, self.pool, self.stats)

    def open_file(self, name: str) -> PagedFile:
        if not self.store.exists(name):
            raise StorageError(f"no such file: {name!r}")
        return PagedFile(name, self.store, self.pool, self.stats)

    def drop_file(self, name: str) -> None:
        self.pool.invalidate_file(name)
        self.store.drop_file(name)

    def snapshot(self):
        """Current I/O snapshot (delegates to :class:`IOStatistics`)."""
        return self.stats.snapshot()

    def flush(self) -> int:
        return self.pool.flush_all()
