"""Version-keyed cache of decoded page-file content.

The access methods repeatedly decode the same immutable page images into
packed word arrays — a BSSF slice column, an SSF signature matrix. Decoding
is pure function of ``(file content)``, and every file content change bumps
the file's :attr:`~repro.storage.paged_file.PagedFile.version`, so a decode
captured at version ``v`` is valid exactly while the file is still at
``v``. A :class:`DecodeCache` memoizes one payload per file name, keyed on
that version; a lookup with any other version is a miss and implicitly
invalidates the stale entry.

The cache lives strictly *above* the I/O accounting: callers must charge
the logical page reads of a hit themselves (see
:meth:`PagedFile.charge_read`), which keeps the paper's page-access metric
bit-identical whether or not the cache is warm.

Lookups and insertions are serialized by a small internal lock so the LRU
order, hit/miss counters, and entry map stay consistent under concurrent
readers; payloads themselves are immutable once decoded, so sharing one
across threads is safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.errors import StorageError
from repro.obs.metrics import REGISTRY


class DecodeCache:
    """LRU cache of ``file name → (version, decoded payload)``."""

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise StorageError(
                f"decode cache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[int, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._metric_hits = REGISTRY.counter("storage.decode_cache.hits")
        self._metric_misses = REGISTRY.counter("storage.decode_cache.misses")

    def get(self, name: str, version: int) -> Optional[Any]:
        """The payload cached for ``name`` iff it was decoded at ``version``."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None and entry[0] == version:
                self.hits += 1
                self._metric_hits.inc()
                self._entries.move_to_end(name)
                return entry[1]
            self.misses += 1
            self._metric_misses.inc()
            if entry is not None:
                # Stale version: the slot will be overwritten by the caller's
                # re-decode; drop it now so it cannot be served again.
                del self._entries[name]
            return None

    def put(self, name: str, version: int, payload: Any) -> None:
        with self._lock:
            self._entries[name] = (version, payload)
            self._entries.move_to_end(name)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
