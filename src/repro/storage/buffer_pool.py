"""LRU buffer pool between the access methods and the simulated disk.

Each frame caches one ``(file, page_no)`` page image. Fetching a page that
is not resident costs one physical read; evicting a dirty frame costs one
physical write. Logical accesses are recorded by :class:`PagedFile`, not
here, so that the paper-model quantity (pages *touched* by the algorithm) is
independent of cache hits.

The pool intentionally has no pinning protocol: access methods never hold
page references across other page operations, and page images are immutable
once fetched. ``capacity = 0`` disables caching entirely (every logical
access becomes a physical one), which is the configuration that matches the
paper's no-buffering cost model exactly.

Thread-safety: all frame-map and counter state is guarded by one reentrant
lock. In uncached mode the device read happens *outside* the lock — there
is no shared frame state to protect, and holding the lock across a
simulated-latency read would serialize concurrent readers and erase the
overlap the query service exists to exploit. With a real cache the lock is
held across the miss so two threads cannot double-install one page.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from repro.errors import BufferPoolError
from repro.obs.metrics import REGISTRY
from repro.storage.disk import DiskStore
from repro.storage.faults import DEFAULT_RETRY_POLICY, RetryPolicy, with_retries
from repro.storage.page import Page
from repro.storage.stats import IOStatistics

_FrameKey = Tuple[str, int]


class BufferPool:
    """Write-back LRU cache of page frames.

    The pool is the single place where page images cross to or from the
    device, so it is also where transient device faults are retried: every
    ``store.read_page`` / ``store.write_page`` is wrapped in
    :func:`~repro.storage.faults.with_retries` under ``retry_policy``.
    Retries are a device-level concern and charge no logical or physical
    I/O beyond the one the caller asked for.
    """

    def __init__(
        self,
        store: DiskStore,
        stats: IOStatistics,
        capacity: int = 64,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if capacity < 0:
            raise BufferPoolError(f"capacity must be >= 0, got {capacity}")
        self.store = store
        self.stats = stats
        self.capacity = capacity
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._lock = threading.RLock()
        self._frames: "OrderedDict[_FrameKey, Page]" = OrderedDict()
        self._dirty: set = set()
        self.hits = 0
        self.misses = 0
        # Process-wide instruments (shared across pools, survive clear()).
        self._metric_hits = REGISTRY.counter("storage.pool.hits")
        self._metric_misses = REGISTRY.counter("storage.pool.misses")

    # ------------------------------------------------------------------
    # Device access (single choke point, transient faults retried here)
    # ------------------------------------------------------------------
    def _read_page(self, file_name: str, page_no: int) -> Page:
        return with_retries(
            lambda: self.store.read_page(file_name, page_no), self.retry_policy
        )

    def _write_page(self, file_name: str, page_no: int, page: Page) -> None:
        with_retries(
            lambda: self.store.write_page(file_name, page_no, page),
            self.retry_policy,
        )

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def fetch(self, file_name: str, page_no: int) -> Page:
        """Return the page, loading it from the store on a miss."""
        key = (file_name, page_no)
        if self.capacity == 0:
            # Nothing resident and nothing retained: count the miss, then
            # read outside the lock so concurrent device reads overlap.
            with self._lock:
                self.misses += 1
            self._metric_misses.inc()
            page = self._read_page(file_name, page_no)
            self.stats.record_physical_read(file_name)
            return page
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                self.hits += 1
                self._metric_hits.inc()
                self._frames.move_to_end(key)
                return frame
            self.misses += 1
            self._metric_misses.inc()
            page = self._read_page(file_name, page_no)
            self.stats.record_physical_read(file_name)
            self._install(key, page)
            return page

    def touch(self, file_name: str, page_no: int) -> None:
        """Replay :meth:`fetch`'s accounting and state transitions without
        returning the page image.

        Decode caches use this for read-through charging: hit/miss counters,
        LRU recency, physical-read counts, residency and eviction side
        effects are all identical to a real fetch; in uncached mode
        (capacity 0) the page materialization itself is skipped, which is
        the whole point.
        """
        key = (file_name, page_no)
        with self._lock:
            if key in self._frames:
                self.hits += 1
                self._metric_hits.inc()
                self._frames.move_to_end(key)
                return
            if not 0 <= page_no < self.store.num_pages(file_name):
                # Raise the canonical out-of-range error, exactly as fetch would.
                self._read_page(file_name, page_no)
            self.misses += 1
            self._metric_misses.inc()
            self.stats.record_physical_read(file_name)
            if self.capacity > 0:
                self._install(key, self._read_page(file_name, page_no))

    def peek(self, file_name: str, page_no: int) -> Page:
        """Current page image with zero accounting and zero state change.

        Simulator-internal: decode caches read content through this and
        charge the corresponding logical/physical I/O separately (via
        :meth:`touch` and friends), so that what-is-read and what-is-charged
        can be decoupled without ever diverging in the counters. Prefers the
        resident frame (which may be dirty) over the store image.
        """
        with self._lock:
            frame = self._frames.get((file_name, page_no))
        if frame is not None:
            return frame
        # Device read outside the lock: peeks dominate the warm search path
        # and must overlap across reader threads under simulated latency.
        return self._read_page(file_name, page_no)

    def touch_file(self, file_name: str, pages: int) -> None:
        """Replay fetch accounting for pages ``0..pages-1`` of one file.

        In uncached mode (capacity 0) every logical read is a physical read
        and nothing is retained, so the whole batch collapses to two counter
        increments; the caller guarantees the pages exist (it just decoded
        them). With a real pool the per-page :meth:`touch` loop preserves
        LRU order, residency, and eviction side effects exactly.
        """
        if pages <= 0:
            return
        if self.capacity == 0:
            with self._lock:
                self.misses += pages
            self._metric_misses.inc(pages)
            self.stats.record_physical_read(file_name, pages)
            return
        for page_no in range(pages):
            self.touch(file_name, page_no)

    def touch_files(self, file_names, pages_each: int) -> None:
        """Batch :meth:`touch_file` over many files (BSSF slice charging)."""
        if pages_each <= 0:
            return
        if self.capacity == 0:
            with self._lock:
                self.misses += pages_each * len(file_names)
            self._metric_misses.inc(pages_each * len(file_names))
            self.stats.record_physical_read_many(file_names, pages_each)
            return
        for file_name in file_names:
            for page_no in range(pages_each):
                self.touch(file_name, page_no)

    def put(self, file_name: str, page_no: int, page: Page, dirty: bool = True) -> None:
        """Install a page image produced by the caller (e.g. a fresh append)."""
        key = (file_name, page_no)
        if self.capacity == 0:
            # Nothing is retained in uncached mode; persist dirty images
            # immediately, clean ones are already on the store.
            if dirty:
                self._writeback(key, page)
            return
        with self._lock:
            self._install(key, page)
            if dirty:
                self._dirty.add(key)

    def mark_dirty(self, file_name: str, page_no: int) -> None:
        key = (file_name, page_no)
        with self._lock:
            if key not in self._frames:
                raise BufferPoolError(f"page not resident: {key}")
            self._dirty.add(key)

    def _install(self, key: _FrameKey, page: Page) -> None:
        if self.capacity == 0:
            # Uncached mode retains nothing; a freshly fetched page is
            # clean, so dropping it costs no write.
            return
        self._frames[key] = page
        self._frames.move_to_end(key)
        while len(self._frames) > self.capacity:
            old_key, old_page = self._frames.popitem(last=False)
            if old_key in self._dirty:
                self._dirty.discard(old_key)
                self._writeback(old_key, old_page)

    def _writeback(self, key: _FrameKey, page: Page) -> None:
        file_name, page_no = key
        self._write_page(file_name, page_no, page)
        self.stats.record_physical_write(file_name)

    # ------------------------------------------------------------------
    # Uncached-mode write path
    # ------------------------------------------------------------------
    def write_through(self, file_name: str, page_no: int, page: Page) -> None:
        """Persist a modified page immediately (used when capacity == 0,
        and by callers that need durability mid-run)."""
        key = (file_name, page_no)
        self._writeback(key, page)
        with self._lock:
            if key in self._frames:
                self._frames[key] = page
                self._dirty.discard(key)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush_all(self) -> int:
        """Write every dirty frame back; return the number written."""
        written = 0
        with self._lock:
            for key in list(self._dirty):
                page = self._frames.get(key)
                if page is not None:
                    self._writeback(key, page)
                    written += 1
                self._dirty.discard(key)
        return written

    def invalidate_file(self, file_name: str) -> None:
        """Drop (without writeback) all frames of a file being destroyed."""
        with self._lock:
            doomed = [key for key in self._frames if key[0] == file_name]
            for key in doomed:
                del self._frames[key]
                self._dirty.discard(key)

    def clear(self) -> None:
        """Flush then empty the pool (e.g. between metered experiments).

        Also resets the hit/miss counters: a cleared pool starts a fresh
        measurement, and a stale ratio would leak one experiment's locality
        into the next run's ``hit_ratio()``.
        """
        with self._lock:
            self.flush_all()
            self._frames.clear()
            self._dirty.clear()
            self.hits = 0
            self.misses = 0

    @property
    def resident_pages(self) -> int:
        with self._lock:
            return len(self._frames)

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
