"""Reader-writer latches for concurrent query serving.

The paper evaluates the facilities one query at a time; the serving layer
lets many readers drive them at once. Two latch shapes:

:class:`RWLatch`
    One writer-preference reader-writer latch. Any number of readers share
    it; a writer excludes everyone. Readers are *reentrant* (a thread
    holding the latch in read mode may re-acquire it freely — nested query
    execution and subquery resolution depend on this), a write holder may
    take read holds for free, and a single reader may *upgrade* to write
    (the degraded-facility rebuild path runs under a read hold). Writer
    preference: once a writer is waiting, new first-time readers queue
    behind it, so a steady read stream cannot starve mutations.

:class:`ShardedLatch`
    A map of independent :class:`RWLatch` instances created on demand, keyed
    by file or class name. Operations on different shards proceed fully in
    parallel; :meth:`ShardedLatch.exclusive_scope` takes every shard in
    sorted order for the rare whole-database critical sections (checkpoint,
    snapshot save).

Both expose the same scope API — ``read_scope(key)`` / ``write_scope(key)``
/ ``exclusive_scope()`` — so the :class:`~repro.objects.database.Database`
facade can hold either. Latch traffic feeds the ``latch.*`` metrics:
``latch.read_acquires`` / ``latch.write_acquires`` count grants,
``latch.read_waits`` / ``latch.write_waits`` count acquisitions that had to
block at least once, and ``latch.upgrades`` counts read-to-write upgrades.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional

from repro.errors import LatchError
from repro.obs.metrics import REGISTRY

__all__ = ["RWLatch", "ShardedLatch"]


class RWLatch:
    """Writer-preference reader-writer latch with reentrant reads.

    Invariants held under the internal mutex:

    * ``_writer`` is the ident of the thread holding write mode (or None);
      ``_writer_depth`` counts its reentrant write holds.
    * ``_readers`` maps thread ident → reentrant read depth.
    * ``_waiting_writers`` counts threads blocked in :meth:`acquire_write`;
      while it is non-zero, *first-time* readers wait (reentrant re-reads
      are always granted — blocking them would deadlock the holder).
    * ``_upgrader`` is the ident of the single thread allowed to wait for
      write while still holding read; a second concurrent upgrade attempt
      raises :class:`~repro.errors.LatchError` instead of deadlocking.
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self._mutex = threading.Lock()
        self._can_read = threading.Condition(self._mutex)
        self._can_write = threading.Condition(self._mutex)
        self._readers: Dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._waiting_writers = 0
        self._upgrader: Optional[int] = None
        self._m_read = REGISTRY.counter("latch.read_acquires")
        self._m_write = REGISTRY.counter("latch.write_acquires")
        self._m_read_waits = REGISTRY.counter("latch.read_waits")
        self._m_write_waits = REGISTRY.counter("latch.write_waits")
        self._m_upgrades = REGISTRY.counter("latch.upgrades")

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._mutex:
            if self._writer == me or me in self._readers:
                # Reentrant (or read-under-write): always granted, even
                # past waiting writers — the alternative is self-deadlock.
                self._readers[me] = self._readers.get(me, 0) + 1
                self._m_read.inc()
                return
            if self._writer is not None or self._waiting_writers:
                self._m_read_waits.inc()
                while self._writer is not None or self._waiting_writers:
                    self._can_read.wait()
            self._readers[me] = 1
            self._m_read.inc()

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._mutex:
            depth = self._readers.get(me)
            if depth is None:
                raise LatchError(
                    f"latch {self.name!r}: release_read without a read hold"
                )
            if depth == 1:
                del self._readers[me]
            else:
                self._readers[me] = depth - 1
            if self._waiting_writers and (
                not self._readers or set(self._readers) == {self._upgrader}
            ):
                # Wake every waiting writer: with an upgrader still holding
                # its read, a single notify could land on a non-upgrader
                # that just re-blocks, swallowing the wakeup the upgrader
                # needs. Losers re-check grantability and wait again.
                self._can_write.notify_all()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._mutex:
            if self._writer == me:
                self._writer_depth += 1
                self._m_write.inc()
                return
            upgrading = me in self._readers
            if upgrading:
                if self._upgrader is not None:
                    raise LatchError(
                        f"latch {self.name!r}: concurrent read-to-write "
                        "upgrade would deadlock; one upgrader is already "
                        "waiting"
                    )
                self._upgrader = me
                self._m_upgrades.inc()
            self._waiting_writers += 1
            try:
                if not self._write_grantable(me):
                    self._m_write_waits.inc()
                    while not self._write_grantable(me):
                        self._can_write.wait()
            finally:
                self._waiting_writers -= 1
                if self._upgrader == me:
                    self._upgrader = None
            self._writer = me
            self._writer_depth = 1
            self._m_write.inc()

    def _write_grantable(self, me: int) -> bool:
        """Write may start when no writer holds and no *other* reader does."""
        if self._writer is not None:
            return False
        return all(ident == me for ident in self._readers)

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._mutex:
            if self._writer != me:
                raise LatchError(
                    f"latch {self.name!r}: release_write without the write hold"
                )
            self._writer_depth -= 1
            if self._writer_depth:
                return
            self._writer = None
            if self._waiting_writers:
                self._can_write.notify()
            else:
                self._can_read.notify_all()

    # ------------------------------------------------------------------
    # Scope API (shared with ShardedLatch; ``key`` is ignored here)
    # ------------------------------------------------------------------
    @contextmanager
    def read_scope(self, key: Optional[str] = None):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_scope(self, key: Optional[str] = None):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def exclusive_scope(self):
        """Whole-latch exclusion (identical to a write scope here)."""
        return self.write_scope()

    # ------------------------------------------------------------------
    # Introspection (tests, \health)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "readers": sum(self._readers.values()),
                "reader_threads": len(self._readers),
                "writer_depth": self._writer_depth if self._writer else 0,
                "waiting_writers": self._waiting_writers,
            }

    def __repr__(self) -> str:
        s = self.state()
        return (
            f"RWLatch({self.name!r}, readers={s['readers']}, "
            f"writer_depth={s['writer_depth']}, "
            f"waiting_writers={s['waiting_writers']})"
        )


class ShardedLatch:
    """Independent :class:`RWLatch` per key (file or class name).

    Shards are created on first use and never discarded, so a latch object,
    once handed out, stays valid. The scope API matches :class:`RWLatch`
    except that ``key`` is required — a sharded latch cannot guess which
    shard an anonymous operation belongs to.
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self._mutex = threading.Lock()
        self._shards: Dict[str, RWLatch] = {}

    def shard(self, key: str) -> RWLatch:
        """The latch for ``key``, created on first use."""
        if key is None:
            raise LatchError(
                f"sharded latch {self.name!r} needs an explicit key"
            )
        with self._mutex:
            latch = self._shards.get(key)
            if latch is None:
                latch = self._shards[key] = RWLatch(f"{self.name}:{key}")
            return latch

    def read_scope(self, key: Optional[str] = None):
        return self.shard(key).read_scope()

    def write_scope(self, key: Optional[str] = None):
        return self.shard(key).write_scope()

    @contextmanager
    def exclusive_scope(self):
        """Write-hold every existing shard, in sorted order (no cycles)."""
        with self._mutex:
            latches = [self._shards[k] for k in sorted(self._shards)]
        for latch in latches:
            latch.acquire_write()
        try:
            yield self
        finally:
            for latch in reversed(latches):
                latch.release_write()

    def shard_names(self):
        with self._mutex:
            return sorted(self._shards)

    def __repr__(self) -> str:
        return f"ShardedLatch({self.name!r}, shards={len(self.shard_names())})"
