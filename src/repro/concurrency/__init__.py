"""Concurrency primitives for serving many queries at once.

The reproduction's substrate was built single-threaded; this package adds
the pieces that let it serve concurrent traffic without perturbing the
golden page-access counts the reproduction depends on:

* :class:`~repro.concurrency.latch.RWLatch` — a writer-preference,
  reentrant-read reader-writer latch installed at the
  :class:`~repro.objects.database.Database` facade (queries share it in
  read mode; every mutating facade operation takes it in write mode);
* :class:`~repro.concurrency.latch.ShardedLatch` — the same interface
  sharded by class/file name, so mutations of one class never block
  readers of another.

Thread-safety of the shared storage substrate (buffer pool, decode cache,
disk store, metrics registry, per-thread I/O accounting) lives with the
components themselves; see ``docs/CONCURRENCY.md`` for the full latch
hierarchy and the exact thread-safety contract. The worker-pool serving
surface is :class:`repro.server.QueryService`.
"""

from repro.concurrency.latch import RWLatch, ShardedLatch

__all__ = ["RWLatch", "ShardedLatch"]
