"""Correctness under a real buffer pool (the non-paper configuration).

The cost model assumes no caching, but a production deployment would run
with a pool. Everything must behave identically — only physical I/O may
differ — across pool capacities, including writes landing durably through
LRU evictions.
"""

import random

import pytest

from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.planner import CostContext

HOBBIES = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]
CTX = CostContext(num_objects=150, domain_cardinality=10, target_cardinality=3)


def build(pool_capacity: int) -> Database:
    db = Database(page_size=4096, pool_capacity=pool_capacity)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_ssf_index("Student", "hobbies", 64, 2, seed=4)
    db.create_bssf_index("Student", "hobbies", 64, 2, seed=4)
    db.create_nested_index("Student", "hobbies")
    rng = random.Random(12)
    for i in range(150):
        db.insert(
            "Student",
            {"name": f"s{i}", "hobbies": set(rng.sample(HOBBIES, 3))},
        )
    return db


QUERY = 'select Student where hobbies has-subset ("a", "b")'


@pytest.mark.parametrize("capacity", [1, 4, 64, 4096])
class TestCachedMode:
    def test_results_independent_of_pool(self, capacity):
        uncached = build(0)
        cached = build(capacity)
        expected = {
            values["name"]
            for _, values in QueryExecutor(uncached)
            .execute_text(QUERY, ExecutionOptions(context=CTX)).rows
        }
        for prefer in ("ssf", "bssf", "nix"):
            got = {
                values["name"]
                for _, values in QueryExecutor(cached)
                .execute_text(QUERY, ExecutionOptions(context=CTX, prefer_facility=prefer)).rows
            }
            assert got == expected

    def test_mutations_survive_evictions(self, capacity):
        db = build(capacity)
        executor = QueryExecutor(db)
        oid = db.insert("Student", {"name": "fresh", "hobbies": {"a", "b"}})
        # churn the pool so the new pages are evicted
        for _ in range(3):
            executor.execute_text(QUERY, ExecutionOptions(context=CTX, prefer_facility="ssf"))
        db.storage.flush()
        assert db.get(oid)["name"] == "fresh"
        result = executor.execute_text(QUERY, ExecutionOptions(context=CTX, prefer_facility="bssf"))
        assert oid in result.oids()

    def test_logical_counts_capacity_invariant(self, capacity):
        baseline = build(0)
        cached = build(capacity)
        for db in (baseline, cached):
            db.storage.pool.clear()
        runs = {}
        for name, db in (("uncached", baseline), ("cached", cached)):
            before = db.io_snapshot()
            QueryExecutor(db).execute_text(
                QUERY, ExecutionOptions(context=CTX, prefer_facility="bssf", smart=False)
            )
            runs[name] = (db.io_snapshot() - before).logical_total
        assert runs["uncached"] == runs["cached"]

    def test_consistency_checker_with_pool(self, capacity):
        build(capacity).check_consistency(sample=20)
