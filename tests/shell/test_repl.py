"""Tests for the interactive shell."""

import io

import pytest

from repro.shell.repl import Shell, interactive_loop

SETUP = [
    "create class Student (name scalar, hobbies set)",
    "create index nix on Student.hobbies",
    'insert into Student (name = "Jeff", hobbies = {"Baseball"})',
]


class TestShell:
    def test_script_flow(self):
        shell = Shell()
        responses = shell.run_script(
            SETUP + ['select Student where hobbies contains "Baseball"']
        )
        assert any("1 row(s)" in r for r in responses)

    def test_blank_lines_and_comments_ignored(self):
        shell = Shell()
        assert shell.run_line("") == ""
        assert shell.run_line("   ") == ""
        assert shell.run_line("-- a comment") == ""

    def test_errors_reported_not_raised(self):
        shell = Shell()
        response = shell.run_line("select Nope where a contains 1")
        assert response.startswith("error:")

    def test_parse_errors_reported(self):
        shell = Shell()
        assert shell.run_line("create index foo on A.b").startswith("error:")

    def test_tables_and_indexes(self):
        shell = Shell()
        assert shell.run_line("\\tables") == "(no classes)"
        assert shell.run_line("\\indexes") == "(no indexes)"
        shell.run_script(SETUP)
        assert "Student: 1 object(s)" in shell.run_line("\\tables")
        assert "Student.hobbies/nix" in shell.run_line("\\indexes")

    def test_check(self):
        shell = Shell()
        shell.run_script(SETUP)
        assert shell.run_line("\\check").startswith("consistent")

    def test_quit_stops_script(self):
        shell = Shell()
        responses = shell.run_script(["\\quit", "create class T (a set)"])
        assert responses == ["bye"]
        assert shell.finished

    def test_help(self):
        assert "save" in Shell().run_line("\\help")

    def test_unknown_meta(self):
        assert Shell().run_line("\\frobnicate").startswith("error:")

    def test_trace_toggle_appends_span_tree(self):
        shell = Shell()
        shell.run_script(SETUP)
        query = 'select Student where hobbies contains "Baseball"'
        assert "query.execute" not in shell.run_line(query)
        assert shell.run_line("\\trace on") == "tracing on"
        traced = shell.run_line(query)
        assert "1 row(s)" in traced
        assert "query.execute" in traced and "pages=" in traced
        assert shell.run_line("\\trace off") == "tracing off"
        assert "query.execute" not in shell.run_line(query)

    def test_trace_usage_errors(self):
        shell = Shell()
        assert shell.run_line("\\trace").startswith("usage")
        assert shell.run_line("\\trace maybe").startswith("usage")

    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "s.sigdb")
        shell = Shell()
        shell.run_script(SETUP)
        assert shell.run_line(f'\\save "{path}"') == f"saved to {path}"
        fresh = Shell()
        assert fresh.run_line(f'\\load "{path}"') == f"loaded {path}"
        out = fresh.run_line('select Student where hobbies contains "Baseball"')
        assert "1 row(s)" in out

    def test_save_usage_errors(self):
        shell = Shell()
        assert shell.run_line("\\save").startswith("usage")
        assert shell.run_line("\\load a b").startswith("usage")

    def test_load_missing_file(self):
        assert Shell().run_line('\\load "/nonexistent/x.sigdb"').startswith(
            "error:"
        )


class TestShardsMeta:
    def test_not_connected(self):
        assert "not connected" in Shell().run_line("\\shards")

    def test_reports_router_health(self):
        from repro.objects.database import Database
        from repro.objects.schema import ClassSchema
        from repro.serving import make_service
        from repro.sharding import partition_database

        db = Database(page_size=4096, pool_capacity=0)
        db.define_class(
            ClassSchema.build("Student", name="scalar", hobbies="set")
        )
        db.insert("Student", {"name": "Jeff", "hobbies": {"Baseball"}})
        shell = Shell()
        shell.remote = make_service(partition_database(db, 2), "serial")
        try:
            report = shell.run_line("\\shards")
        finally:
            shell._disconnect()
        assert "shard 0" in report
        assert "shard 1" in report
        assert "healthy" in report

    def test_partial_answers_are_flagged(self):
        from repro.objects.oid import OID
        from repro.query.executor import QueryResult, QueryStatistics
        from repro.shell.ddl import format_query_result

        result = QueryResult(
            rows=[(OID(1, 0), {"name": "Jeff"})],
            statistics=QueryStatistics(plan="index(...)"),
            partial=True,
            missing_shards=["sigfile://127.0.0.1:7842"],
        )
        rendered = format_query_result(result)
        assert "PARTIAL" in rendered
        assert "sigfile://127.0.0.1:7842" in rendered
        complete = QueryResult(
            rows=[], statistics=QueryStatistics(plan="scan")
        )
        assert "PARTIAL" not in format_query_result(complete)


class TestInteractiveLoop:
    def test_loop_over_streams(self):
        stdin = io.StringIO(
            "create class T (tags set)\n"
            "insert into T (tags = {1})\n"
            "select T where tags contains 1\n"
            "\\quit\n"
        )
        stdout = io.StringIO()
        code = interactive_loop(input_stream=stdin, output_stream=stdout)
        assert code == 0
        output = stdout.getvalue()
        assert "1 row(s)" in output
        assert "bye" in output

    def test_loop_handles_eof(self):
        stdin = io.StringIO("create class T (a set)\n")  # no quit: EOF ends
        stdout = io.StringIO()
        assert interactive_loop(input_stream=stdin, output_stream=stdout) == 0
