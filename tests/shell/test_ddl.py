"""Tests for the DDL/DML statement layer."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.objects.database import Database
from repro.shell.ddl import (
    Analyze,
    CreateClass,
    CreateIndex,
    InsertObject,
    RunQuery,
    execute_statement,
    parse_statement,
)


class TestParsing:
    def test_create_class(self):
        stmt = parse_statement(
            "create class Student (name scalar, hobbies set, "
            "courses set of Course)"
        )
        assert isinstance(stmt, CreateClass)
        assert stmt.schema.name == "Student"
        assert stmt.schema.attribute("courses").ref_class == "Course"
        assert stmt.schema.attribute("hobbies").is_set

    def test_create_class_duplicate_attribute(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_statement("create class T (a scalar, a set)")

    def test_create_class_bad_kind(self):
        with pytest.raises(ParseError):
            parse_statement("create class T (a list)")

    def test_create_index_with_options(self):
        stmt = parse_statement(
            "create index bssf on Student.hobbies (F = 500, m = 2, seed = 7)"
        )
        assert isinstance(stmt, CreateIndex)
        assert stmt.kind == "bssf"
        assert stmt.options == {"F": 500, "m": 2, "seed": 7}

    def test_create_index_defaults(self):
        stmt = parse_statement("create index nix on Student.courses")
        assert stmt.kind == "nix" and stmt.options == {}

    def test_create_index_bad_kind(self):
        with pytest.raises(ParseError):
            parse_statement("create index btree on S.a")

    def test_nix_rejects_options(self):
        with pytest.raises(ParseError):
            parse_statement("create index nix on S.a (F = 10)")

    def test_unknown_option_rejected(self):
        with pytest.raises(ParseError, match="unknown index option"):
            parse_statement("create index ssf on S.a (width = 10)")

    def test_non_integer_option_rejected(self):
        with pytest.raises(ParseError):
            parse_statement('create index ssf on S.a (F = "big")')

    def test_insert(self):
        stmt = parse_statement(
            'insert into Student (name = "Jeff", hobbies = {"a", "b"}, n = 3)'
        )
        assert isinstance(stmt, InsertObject)
        assert stmt.values == {"name": "Jeff", "hobbies": {"a", "b"}, "n": 3}

    def test_insert_empty_set(self):
        stmt = parse_statement("insert into T (tags = {})")
        assert stmt.values == {"tags": set()}

    def test_insert_duplicate_attribute(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_statement("insert into T (a = 1, a = 2)")

    def test_analyze(self):
        stmt = parse_statement("analyze Student.hobbies")
        assert isinstance(stmt, Analyze)
        assert (stmt.class_name, stmt.attribute) == ("Student", "hobbies")

    def test_select_passthrough(self):
        stmt = parse_statement('select S where a contains "x";')
        assert isinstance(stmt, RunQuery)
        assert not stmt.explain

    def test_explain(self):
        stmt = parse_statement('explain select S where a contains "x"')
        assert isinstance(stmt, RunQuery) and stmt.explain

    def test_explain_requires_select(self):
        with pytest.raises(ParseError):
            parse_statement("explain create class T (a scalar)")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("drop class T")

    def test_empty_statement(self):
        with pytest.raises(ParseError):
            parse_statement("   ;")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("analyze S.a extra")


class TestExecution:
    @pytest.fixture
    def db(self):
        return Database()

    def _setup(self, db):
        execute_statement(db, "create class Student (name scalar, hobbies set)")
        execute_statement(
            db, "create index bssf on Student.hobbies (F = 64, m = 2)"
        )
        execute_statement(
            db, 'insert into Student (name = "Jeff", hobbies = {"a", "b"})'
        )
        execute_statement(
            db, 'insert into Student (name = "Ann", hobbies = {"b"})'
        )

    def test_full_flow(self, db):
        self._setup(db)
        assert db.count("Student") == 2
        out = execute_statement(
            db, 'select Student where hobbies has-subset ("a")'
        )
        assert "1 row(s)" in out and "Jeff" in out

    def test_analyze_output(self, db):
        self._setup(db)
        out = execute_statement(db, "analyze Student.hobbies")
        assert "N=2" in out

    def test_explain_output(self, db):
        self._setup(db)
        out = execute_statement(
            db, 'explain select Student where hobbies contains "b"'
        )
        assert "plan  :" in out

    def test_schema_errors_propagate(self, db):
        with pytest.raises(SchemaError):
            execute_statement(db, 'insert into Ghost (a = 1)')

    def test_row_cap(self, db):
        execute_statement(db, "create class T (tags set)")
        for i in range(30):
            execute_statement(db, f'insert into T (tags = {{{i}, 999}})')
        out = execute_statement(
            db, "select T where tags contains 999", max_rows=5
        )
        assert "... 25 more" in out
