"""Tests for the Zipf-skewed workload extension."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import SetWorkloadGenerator, WorkloadSpec


def make_generator(exponent: float, V: int = 200, Dt: int = 5, seed: int = 3):
    return SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=300,
            domain_cardinality=V,
            target_cardinality=Dt,
            seed=seed,
            zipf_exponent=exponent,
        )
    )


class TestSkewedTargets:
    def test_sets_have_requested_cardinality(self):
        generator = make_generator(0.9)
        sets = list(generator.target_sets())
        assert len(sets) == 300
        assert all(len(s) == 5 for s in sets)
        assert all(all(0 <= e < 200 for e in s) for s in sets)

    def test_deterministic(self):
        a = list(make_generator(0.9).target_sets())
        b = list(make_generator(0.9).target_sets())
        assert a == b

    def test_head_is_hot(self):
        """Element 0 must appear far more often than a tail element."""
        generator = make_generator(1.0)
        counts = {0: 0, 150: 0}
        for target in generator.target_sets():
            for element in counts:
                counts[element] += element in target
        assert counts[0] > 5 * max(counts[150], 1)

    def test_zero_exponent_is_uniform(self):
        """s = 0 must reproduce the paper's uniform draw (same machinery)."""
        generator = make_generator(0.0)
        counts = [0] * 200
        for target in generator.target_sets():
            for element in target:
                counts[element] += 1
        # 300 sets × 5 elements over 200 values → mean 7.5 per element
        assert max(counts) < 25  # no hot head under uniformity

    def test_extreme_skew_still_terminates_with_distinct_elements(self):
        generator = make_generator(3.0, V=50, Dt=40)
        target = next(iter(generator.target_sets()))
        assert len(target) == 40

    def test_cardinality_exceeding_domain_rejected(self):
        generator = make_generator(1.0, V=10, Dt=5)
        with pytest.raises(ConfigurationError):
            generator._draw_skewed_set(11)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(10, 10, 2, zipf_exponent=-0.5)


class TestSkewedQueries:
    def test_skewed_query_set(self):
        generator = make_generator(1.0)
        query = generator.skewed_query_set(4)
        assert len(query) == 4

    def test_skewed_query_requires_skewed_spec(self):
        with pytest.raises(ConfigurationError):
            make_generator(0.0).skewed_query_set(3)

    def test_hot_elements(self):
        generator = make_generator(1.0)
        assert generator.hot_elements(3) == frozenset({0, 1, 2})
        with pytest.raises(ConfigurationError):
            generator.hot_elements(201)


class TestSkewAblationExperiment:
    def test_small_run(self):
        from repro.experiments.skew import skew_ablation

        table = skew_ablation(
            exponents=(0.0, 0.9),
            num_objects=400,
            domain_cardinality=200,
            target_cardinality=6,
            signature_bits=128,
        )
        assert len(table.rows) == 2
        uniform, skewed = table.rows
        assert uniform[0] == 0.0
        # BSSF storage identical; NIX postings heavier (or failed) at 0.9
        assert uniform[4] == skewed[4]
        assert skewed[1] == "BUILD FAILS" or skewed[1] > uniform[1]

    def test_overflow_chains_survive_heavy_skew(self):
        from repro.experiments.skew import skew_ablation

        table = skew_ablation(
            exponents=(1.2,),
            num_objects=400,
            domain_cardinality=200,
            target_cardinality=6,
            signature_bits=128,
            overflow_chains=True,
        )
        (row,) = table.rows
        assert row[1] != "BUILD FAILS"
        assert isinstance(row[1], int) and row[1] > 100
        assert table.experiment_id == "ablation_skew_chained"
