"""Tests for the Section 1 university sample database."""

import pytest

from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.planner import CostContext
from repro.workloads.university import (
    COURSE_CATEGORIES,
    UniversityDatabase,
    build_university,
)


@pytest.fixture(scope="module")
def campus() -> UniversityDatabase:
    return build_university(num_students=80, seed=2)


class TestPopulation:
    def test_counts(self, campus):
        db = campus.database
        assert db.count("Student") == 80
        assert db.count("Teacher") == len(COURSE_CATEGORIES)
        assert db.count("Course") == sum(len(v) for v in COURSE_CATEGORIES.values())

    def test_course_categories(self, campus):
        assert set(campus.courses) == set(COURSE_CATEGORIES)
        db_courses = campus.course_oids("DB")
        assert len(db_courses) == 3
        for oid in db_courses:
            assert campus.database.get(oid)["category"] == "DB"

    def test_students_reference_real_courses(self, campus):
        all_courses = set(campus.all_course_oids())
        for oid in campus.students[:10]:
            student = campus.database.get(oid)
            assert set(student["courses"]) <= all_courses
            assert len(student["hobbies"]) == 3

    def test_deterministic(self):
        a = build_university(num_students=10, seed=5)
        b = build_university(num_students=10, seed=5)
        names_a = [a.database.get(oid)["name"] for oid in a.students]
        names_b = [b.database.get(oid)["name"] for oid in b.students]
        assert names_a == names_b


class TestPaperIntroQuery:
    """'Find all students who take all of the lectures in the DB category'
    — the two-step scheme of Section 1."""

    def test_two_step_scheme_with_nix(self, campus):
        db = campus.database
        db.create_nested_index("Student", "courses")
        # step 1: OIDs of DB-category courses
        oid_list = frozenset(campus.course_oids("DB"))
        # step 2: Student.courses ⊇ OID-list via the set access facility
        nix = db.index("Student", "courses", "nix")
        result = nix.search_superset(oid_list)
        expected = sorted(
            oid for oid, values in db.scan("Student")
            if oid_list <= frozenset(values["courses"])
        )
        assert sorted(result.candidates) == expected

    def test_only_db_lectures_query(self, campus):
        """The 'take only DB lectures' variant: courses ⊆ OID-list."""
        db = campus.database
        oid_list = frozenset(campus.course_oids("DB"))
        facility = db.index("Student", "courses", "nix")
        candidates = facility.search_subset(oid_list).candidates
        confirmed = sorted(
            oid for oid in candidates
            if frozenset(db.get(oid)["courses"]) <= oid_list
        )
        expected = sorted(
            oid for oid, values in db.scan("Student")
            if frozenset(values["courses"]) <= oid_list
        )
        assert confirmed == expected


class TestHobbyQueries:
    def test_q1_and_q2_run_end_to_end(self, campus):
        db = campus.database
        db.create_bssf_index("Student", "hobbies", 128, 2)
        executor = QueryExecutor(db)
        context = CostContext(
            num_objects=80, domain_cardinality=18, target_cardinality=3
        )
        q1 = executor.execute_text(
            'select Student where hobbies has-subset ("Baseball", "Fishing")',
            ExecutionOptions(context=context),
        )
        q2 = executor.execute_text(
            'select Student where hobbies in-subset '
            '("Baseball", "Fishing", "Tennis")',
            ExecutionOptions(context=context),
        )
        brute_q1 = [
            oid for oid, v in db.scan("Student")
            if {"Baseball", "Fishing"} <= set(v["hobbies"])
        ]
        brute_q2 = [
            oid for oid, v in db.scan("Student")
            if set(v["hobbies"]) <= {"Baseball", "Fishing", "Tennis"}
        ]
        assert sorted(q1.oids()) == sorted(brute_q1)
        assert sorted(q2.oids()) == sorted(brute_q2)
