"""Tests for the synthetic workload generator."""

import pytest

from repro.errors import ConfigurationError
from repro.objects.database import Database
from repro.workloads.generator import (
    EVAL_ATTRIBUTE,
    EVAL_CLASS,
    SetWorkloadGenerator,
    WorkloadSpec,
    load_workload,
    query_sets_for_sweep,
)


SPEC = WorkloadSpec(
    num_objects=50, domain_cardinality=200, target_cardinality=10, seed=3
)


class TestSpecValidation:
    def test_valid(self):
        assert SPEC.target_cardinality == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_objects": -1, "domain_cardinality": 10, "target_cardinality": 2},
            {"num_objects": 1, "domain_cardinality": 0, "target_cardinality": 0},
            {"num_objects": 1, "domain_cardinality": 10, "target_cardinality": 11},
            {"num_objects": 1, "domain_cardinality": 10, "target_cardinality": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)


class TestTargetSets:
    def test_count_and_cardinality(self):
        sets = list(SetWorkloadGenerator(SPEC).target_sets())
        assert len(sets) == 50
        assert all(len(s) == 10 for s in sets)
        assert all(all(0 <= e < 200 for e in s) for s in sets)

    def test_deterministic_under_seed(self):
        a = list(SetWorkloadGenerator(SPEC).target_sets())
        b = list(SetWorkloadGenerator(SPEC).target_sets())
        assert a == b

    def test_different_seeds_differ(self):
        other = WorkloadSpec(50, 200, 10, seed=4)
        a = list(SetWorkloadGenerator(SPEC).target_sets())
        b = list(SetWorkloadGenerator(other).target_sets())
        assert a != b

    def test_variable_cardinality_extension(self):
        spec = WorkloadSpec(200, 500, 10, seed=1, variable_cardinality=True)
        generator = SetWorkloadGenerator(spec)
        sizes = [len(s) for s in generator.target_sets()]
        assert min(sizes) >= 1
        assert max(sizes) <= 19
        assert len(set(sizes)) > 3  # actually varies
        mean = sum(sizes) / len(sizes)
        assert 8 <= mean <= 12  # mean stays near Dt

    def test_variable_cardinality_deterministic(self):
        spec = WorkloadSpec(30, 100, 5, seed=9, variable_cardinality=True)
        a = [SetWorkloadGenerator(spec).target_cardinality_for(i) for i in range(30)]
        b = [SetWorkloadGenerator(spec).target_cardinality_for(i) for i in range(30)]
        assert a == b


class TestQuerySets:
    def test_random_query_set(self):
        generator = SetWorkloadGenerator(SPEC)
        query = generator.random_query_set(7)
        assert len(query) == 7

    def test_random_query_bounds(self):
        generator = SetWorkloadGenerator(SPEC)
        with pytest.raises(ConfigurationError):
            generator.random_query_set(201)

    def test_subquery_guarantees_superset_hit(self):
        generator = SetWorkloadGenerator(SPEC)
        target = list(range(20, 40))
        query = generator.subquery_of(target, 5)
        assert query <= set(target)

    def test_subquery_too_large(self):
        generator = SetWorkloadGenerator(SPEC)
        with pytest.raises(ConfigurationError):
            generator.subquery_of([1, 2], 3)

    def test_superquery_guarantees_subset_hit(self):
        generator = SetWorkloadGenerator(SPEC)
        target = {5, 6, 7}
        query = generator.superquery_of(target, 10)
        assert target <= query
        assert len(query) == 10

    def test_superquery_too_small(self):
        generator = SetWorkloadGenerator(SPEC)
        with pytest.raises(ConfigurationError):
            generator.superquery_of({1, 2, 3}, 2)

    def test_sweep_queries(self):
        sweep = query_sets_for_sweep(SPEC, [1, 3, 5], queries_per_point=2)
        assert set(sweep) == {1, 3, 5}
        assert all(len(queries) == 2 for queries in sweep.values())
        assert all(len(q) == dq for dq, qs in sweep.items() for q in qs)


class TestLoadWorkload:
    def test_populates_database(self):
        db = Database()
        oids = load_workload(db, SPEC)
        assert len(oids) == 50
        assert db.count(EVAL_CLASS) == 50
        _, values = next(iter(db.scan(EVAL_CLASS)))
        assert len(values[EVAL_ATTRIBUTE]) == 10

    def test_existing_class_reused(self):
        db = Database()
        load_workload(db, SPEC)
        more = WorkloadSpec(5, 200, 10, seed=8)
        load_workload(db, more)
        assert db.count(EVAL_CLASS) == 55

    def test_indexes_created_before_load_are_maintained(self):
        db = Database()
        from repro.objects.schema import ClassSchema

        db.define_class(ClassSchema.build(EVAL_CLASS, **{EVAL_ATTRIBUTE: "set"}))
        nix = db.create_nested_index(EVAL_CLASS, EVAL_ATTRIBUTE)
        oids = load_workload(db, SPEC)
        values = db.get(oids[0])[EVAL_ATTRIBUTE]
        element = next(iter(values))
        assert oids[0] in nix.lookup_element(element)
