"""Tests for I/O statistics and snapshot arithmetic."""

from repro.storage.stats import FileIOCounts, IOSnapshot, IOStatistics


class TestFileIOCounts:
    def test_totals(self):
        counts = FileIOCounts(1, 2, 3, 4)
        assert counts.logical_total == 3
        assert counts.physical_total == 7

    def test_subtraction(self):
        a = FileIOCounts(5, 5, 5, 5)
        b = FileIOCounts(1, 2, 3, 4)
        assert a - b == FileIOCounts(4, 3, 2, 1)

    def test_addition(self):
        assert FileIOCounts(1, 1, 1, 1) + FileIOCounts(2, 0, 0, 2) == FileIOCounts(
            3, 1, 1, 3
        )


class TestIOStatistics:
    def test_recording(self):
        stats = IOStatistics()
        stats.record_logical_read("a", 2)
        stats.record_logical_write("a")
        stats.record_physical_read("b")
        stats.record_physical_write("b", 3)
        snap = stats.snapshot()
        assert snap.for_file("a") == FileIOCounts(2, 1, 0, 0)
        assert snap.for_file("b") == FileIOCounts(0, 0, 1, 3)

    def test_unknown_file_is_zero(self):
        assert IOStatistics().snapshot().for_file("nope") == FileIOCounts()

    def test_reset(self):
        stats = IOStatistics()
        stats.record_logical_read("a")
        stats.reset()
        assert stats.snapshot().for_file("a") == FileIOCounts()

    def test_snapshot_is_immutable_view(self):
        stats = IOStatistics()
        stats.record_logical_read("a")
        snap = stats.snapshot()
        stats.record_logical_read("a")
        assert snap.for_file("a").logical_reads == 1


class TestSnapshotArithmetic:
    def test_difference_meters_an_interval(self):
        stats = IOStatistics()
        stats.record_logical_read("a", 3)
        before = stats.snapshot()
        stats.record_logical_read("a", 2)
        stats.record_logical_write("b")
        delta = stats.snapshot() - before
        assert delta.for_file("a").logical_reads == 2
        assert delta.for_file("b").logical_writes == 1

    def test_total_sums_all_files(self):
        snap = IOSnapshot(
            {"a": FileIOCounts(1, 0, 0, 0), "b": FileIOCounts(2, 3, 0, 0)}
        )
        assert snap.total().logical_reads == 3
        assert snap.logical_total == 6
        assert snap.physical_total == 0

    def test_files_iterates_sorted(self):
        snap = IOSnapshot({"b": FileIOCounts(), "a": FileIOCounts()})
        assert [name for name, _ in snap.files()] == ["a", "b"]

    def test_difference_handles_new_files(self):
        empty = IOSnapshot({})
        later = IOSnapshot({"new": FileIOCounts(1, 0, 0, 0)})
        assert (later - empty).for_file("new").logical_reads == 1
