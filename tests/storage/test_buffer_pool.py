"""Tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskStore
from repro.storage.page import Page
from repro.storage.stats import IOStatistics


def make_pool(capacity: int, pages: int = 4, page_size: int = 32):
    stats = IOStatistics()
    store = DiskStore(page_size=page_size)
    store.create_file("f")
    for _ in range(pages):
        store.allocate_page("f")
    return BufferPool(store, stats, capacity=capacity), store, stats


class TestCaching:
    def test_first_fetch_is_miss_second_is_hit(self):
        pool, _, stats = make_pool(capacity=2)
        pool.fetch("f", 0)
        pool.fetch("f", 0)
        assert pool.misses == 1 and pool.hits == 1
        assert stats.snapshot().for_file("f").physical_reads == 1

    def test_hit_returns_same_frame(self):
        pool, _, _ = make_pool(capacity=2)
        first = pool.fetch("f", 0)
        assert pool.fetch("f", 0) is first

    def test_lru_eviction_order(self):
        pool, _, stats = make_pool(capacity=2)
        pool.fetch("f", 0)
        pool.fetch("f", 1)
        pool.fetch("f", 0)  # 1 is now LRU
        pool.fetch("f", 2)  # evicts 1
        pool.fetch("f", 0)  # still resident: hit
        assert pool.hits == 2
        pool.fetch("f", 1)  # miss again
        assert stats.snapshot().for_file("f").physical_reads == 4

    def test_capacity_bound_respected(self):
        pool, _, _ = make_pool(capacity=2)
        for page_no in range(4):
            pool.fetch("f", page_no)
        assert pool.resident_pages == 2

    def test_hit_ratio(self):
        pool, _, _ = make_pool(capacity=4)
        assert pool.hit_ratio() == 0.0
        pool.fetch("f", 0)
        pool.fetch("f", 0)
        assert pool.hit_ratio() == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        stats = IOStatistics()
        store = DiskStore(32)
        with pytest.raises(BufferPoolError):
            BufferPool(store, stats, capacity=-1)


class TestDirtyPages:
    def test_dirty_eviction_writes_back(self):
        pool, store, stats = make_pool(capacity=1)
        page = pool.fetch("f", 0)
        page.write_bytes(0, b"x")
        pool.mark_dirty("f", 0)
        pool.fetch("f", 1)  # evicts dirty page 0
        assert store.read_page("f", 0).read_bytes(0, 1) == b"x"
        assert stats.snapshot().for_file("f").physical_writes == 1

    def test_clean_eviction_skips_writeback(self):
        pool, _, stats = make_pool(capacity=1)
        pool.fetch("f", 0)
        pool.fetch("f", 1)
        assert stats.snapshot().for_file("f").physical_writes == 0

    def test_mark_dirty_nonresident_raises(self):
        pool, _, _ = make_pool(capacity=1)
        with pytest.raises(BufferPoolError):
            pool.mark_dirty("f", 3)

    def test_flush_all(self):
        pool, store, _ = make_pool(capacity=4)
        page = pool.fetch("f", 2)
        page.write_bytes(0, b"z")
        pool.mark_dirty("f", 2)
        assert pool.flush_all() == 1
        assert store.read_page("f", 2).read_bytes(0, 1) == b"z"
        assert pool.flush_all() == 0  # idempotent

    def test_put_installs_dirty_frame(self):
        pool, store, _ = make_pool(capacity=4)
        page = Page(32)
        page.write_bytes(0, b"q")
        pool.put("f", 1, page, dirty=True)
        pool.flush_all()
        assert store.read_page("f", 1).read_bytes(0, 1) == b"q"


class TestUncachedMode:
    def test_capacity_zero_keeps_nothing(self):
        pool, _, _ = make_pool(capacity=0)
        pool.fetch("f", 0)
        assert pool.resident_pages == 0

    def test_every_fetch_is_physical(self):
        pool, _, stats = make_pool(capacity=0)
        pool.fetch("f", 0)
        pool.fetch("f", 0)
        assert stats.snapshot().for_file("f").physical_reads == 2

    def test_write_through(self):
        pool, store, stats = make_pool(capacity=0)
        page = Page(32)
        page.write_bytes(0, b"w")
        pool.write_through("f", 0, page)
        assert store.read_page("f", 0).read_bytes(0, 1) == b"w"
        assert stats.snapshot().for_file("f").physical_writes == 1


class TestInvalidation:
    def test_invalidate_file_drops_frames(self):
        pool, _, _ = make_pool(capacity=4)
        pool.fetch("f", 0)
        pool.invalidate_file("f")
        assert pool.resident_pages == 0

    def test_clear_flushes_then_empties(self):
        pool, store, _ = make_pool(capacity=4)
        page = pool.fetch("f", 0)
        page.write_bytes(0, b"c")
        pool.mark_dirty("f", 0)
        pool.clear()
        assert pool.resident_pages == 0
        assert store.read_page("f", 0).read_bytes(0, 1) == b"c"
