"""Tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskStore
from repro.storage.page import Page
from repro.storage.stats import IOStatistics


def make_pool(capacity: int, pages: int = 4, page_size: int = 32):
    stats = IOStatistics()
    store = DiskStore(page_size=page_size)
    store.create_file("f")
    for _ in range(pages):
        store.allocate_page("f")
    return BufferPool(store, stats, capacity=capacity), store, stats


class TestCaching:
    def test_first_fetch_is_miss_second_is_hit(self):
        pool, _, stats = make_pool(capacity=2)
        pool.fetch("f", 0)
        pool.fetch("f", 0)
        assert pool.misses == 1 and pool.hits == 1
        assert stats.snapshot().for_file("f").physical_reads == 1

    def test_hit_returns_same_frame(self):
        pool, _, _ = make_pool(capacity=2)
        first = pool.fetch("f", 0)
        assert pool.fetch("f", 0) is first

    def test_lru_eviction_order(self):
        pool, _, stats = make_pool(capacity=2)
        pool.fetch("f", 0)
        pool.fetch("f", 1)
        pool.fetch("f", 0)  # 1 is now LRU
        pool.fetch("f", 2)  # evicts 1
        pool.fetch("f", 0)  # still resident: hit
        assert pool.hits == 2
        pool.fetch("f", 1)  # miss again
        assert stats.snapshot().for_file("f").physical_reads == 4

    def test_capacity_bound_respected(self):
        pool, _, _ = make_pool(capacity=2)
        for page_no in range(4):
            pool.fetch("f", page_no)
        assert pool.resident_pages == 2

    def test_hit_ratio(self):
        pool, _, _ = make_pool(capacity=4)
        assert pool.hit_ratio() == 0.0
        pool.fetch("f", 0)
        pool.fetch("f", 0)
        assert pool.hit_ratio() == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        stats = IOStatistics()
        store = DiskStore(32)
        with pytest.raises(BufferPoolError):
            BufferPool(store, stats, capacity=-1)


class TestDirtyPages:
    def test_dirty_eviction_writes_back(self):
        pool, store, stats = make_pool(capacity=1)
        page = pool.fetch("f", 0)
        page.write_bytes(0, b"x")
        pool.mark_dirty("f", 0)
        pool.fetch("f", 1)  # evicts dirty page 0
        assert store.read_page("f", 0).read_bytes(0, 1) == b"x"
        assert stats.snapshot().for_file("f").physical_writes == 1

    def test_clean_eviction_skips_writeback(self):
        pool, _, stats = make_pool(capacity=1)
        pool.fetch("f", 0)
        pool.fetch("f", 1)
        assert stats.snapshot().for_file("f").physical_writes == 0

    def test_mark_dirty_nonresident_raises(self):
        pool, _, _ = make_pool(capacity=1)
        with pytest.raises(BufferPoolError):
            pool.mark_dirty("f", 3)

    def test_flush_all(self):
        pool, store, _ = make_pool(capacity=4)
        page = pool.fetch("f", 2)
        page.write_bytes(0, b"z")
        pool.mark_dirty("f", 2)
        assert pool.flush_all() == 1
        assert store.read_page("f", 2).read_bytes(0, 1) == b"z"
        assert pool.flush_all() == 0  # idempotent

    def test_put_installs_dirty_frame(self):
        pool, store, _ = make_pool(capacity=4)
        page = Page(32)
        page.write_bytes(0, b"q")
        pool.put("f", 1, page, dirty=True)
        pool.flush_all()
        assert store.read_page("f", 1).read_bytes(0, 1) == b"q"


class TestUncachedMode:
    def test_capacity_zero_keeps_nothing(self):
        pool, _, _ = make_pool(capacity=0)
        pool.fetch("f", 0)
        assert pool.resident_pages == 0

    def test_every_fetch_is_physical(self):
        pool, _, stats = make_pool(capacity=0)
        pool.fetch("f", 0)
        pool.fetch("f", 0)
        assert stats.snapshot().for_file("f").physical_reads == 2

    def test_write_through(self):
        pool, store, stats = make_pool(capacity=0)
        page = Page(32)
        page.write_bytes(0, b"w")
        pool.write_through("f", 0, page)
        assert store.read_page("f", 0).read_bytes(0, 1) == b"w"
        assert stats.snapshot().for_file("f").physical_writes == 1


class TestInvalidation:
    def test_invalidate_file_drops_frames(self):
        pool, _, _ = make_pool(capacity=4)
        pool.fetch("f", 0)
        pool.invalidate_file("f")
        assert pool.resident_pages == 0

    def test_clear_flushes_then_empties(self):
        pool, store, _ = make_pool(capacity=4)
        page = pool.fetch("f", 0)
        page.write_bytes(0, b"c")
        pool.mark_dirty("f", 0)
        pool.clear()
        assert pool.resident_pages == 0
        assert store.read_page("f", 0).read_bytes(0, 1) == b"c"


class TestClearResetsCounters:
    def test_clear_resets_hit_miss_counters(self):
        pool, _, _ = make_pool(capacity=2)
        pool.fetch("f", 0)
        pool.fetch("f", 0)
        assert (pool.hits, pool.misses) == (1, 1)
        pool.clear()
        assert (pool.hits, pool.misses) == (0, 0)
        assert pool.hit_ratio() == 0.0


class TestReadThrough:
    """touch/touch_file/touch_files must replay fetch accounting exactly."""

    def _drive(self, capacity, op):
        pool, _, stats = make_pool(capacity=capacity)
        op(pool)
        return (
            pool.hits,
            pool.misses,
            pool.resident_pages,
            stats.snapshot().for_file("f").physical_reads,
        )

    @pytest.mark.parametrize("capacity", [0, 2])
    def test_touch_matches_fetch(self, capacity):
        sequence = [0, 1, 0, 2, 3, 1]

        def by_fetch(pool):
            for page_no in sequence:
                pool.fetch("f", page_no)

        def by_touch(pool):
            for page_no in sequence:
                pool.touch("f", page_no)

        assert self._drive(capacity, by_fetch) == self._drive(capacity, by_touch)

    @pytest.mark.parametrize("capacity", [0, 2])
    def test_touch_file_matches_fetch_loop(self, capacity):
        def by_fetch(pool):
            for page_no in range(4):
                pool.fetch("f", page_no)

        assert self._drive(capacity, by_fetch) == self._drive(
            capacity, lambda pool: pool.touch_file("f", 4)
        )

    @pytest.mark.parametrize("capacity", [0, 2])
    def test_touch_files_matches_fetch_loop(self, capacity):
        stats_a = IOStatistics()
        store = DiskStore(page_size=32)
        for name in ("a", "b"):
            store.create_file(name)
            for _ in range(2):
                store.allocate_page(name)
        fetch_pool = BufferPool(store, stats_a, capacity=capacity)
        for name in ("a", "b"):
            for page_no in range(2):
                fetch_pool.fetch(name, page_no)
        stats_b = IOStatistics()
        touch_pool = BufferPool(store, stats_b, capacity=capacity)
        touch_pool.touch_files(["a", "b"], 2)
        assert (fetch_pool.hits, fetch_pool.misses) == (
            touch_pool.hits,
            touch_pool.misses,
        )
        for name in ("a", "b"):
            assert stats_a.snapshot().for_file(name) == stats_b.snapshot().for_file(
                name
            )

    def test_touch_out_of_range_raises_like_fetch(self):
        from repro.errors import StorageError

        pool, _, _ = make_pool(capacity=2)
        with pytest.raises(StorageError):
            pool.touch("f", 99)

    def test_touch_preserves_lru_recency(self):
        pool, _, _ = make_pool(capacity=2)
        pool.fetch("f", 0)
        pool.fetch("f", 1)
        pool.touch("f", 0)  # page 0 becomes MRU; 1 is eviction victim
        pool.fetch("f", 2)
        assert pool.fetch("f", 0) is not None
        assert pool.hits == 2  # the touch hit plus the re-fetch of page 0


class TestPeek:
    def test_peek_changes_no_counters_or_residency(self):
        pool, _, stats = make_pool(capacity=2)
        page = pool.peek("f", 0)
        assert page is not None
        assert (pool.hits, pool.misses, pool.resident_pages) == (0, 0, 0)
        assert stats.snapshot().for_file("f").physical_reads == 0

    def test_peek_prefers_dirty_resident_frame(self):
        pool, store, _ = make_pool(capacity=2)
        page = pool.fetch("f", 0)
        page.write_bytes(0, b"z")
        pool.mark_dirty("f", 0)
        # The store still has the old image; peek must see the dirty frame.
        assert pool.peek("f", 0).read_bytes(0, 1) == b"z"
        assert store.read_page("f", 0).read_bytes(0, 1) == b"\x00"
