"""Tests for paged-file handles and the storage manager."""

import pytest

from repro.errors import StorageError
from repro.storage.paged_file import StorageManager


@pytest.fixture
def manager() -> StorageManager:
    return StorageManager(page_size=64, pool_capacity=0)


class TestLogicalCounting:
    """Logical counters must track algorithmic page touches exactly."""

    def test_read_counts_one_logical_read(self, manager):
        f = manager.create_file("f")
        f.append_page()
        before = manager.snapshot()
        f.read_page(0)
        delta = manager.snapshot() - before
        assert delta.for_file("f").logical_reads == 1
        assert delta.for_file("f").logical_writes == 0

    def test_cached_read_still_counts_logically(self):
        manager = StorageManager(page_size=64, pool_capacity=8)
        f = manager.create_file("f")
        f.append_page()
        manager.pool.clear()  # drop the frame the append installed
        before = manager.snapshot()
        f.read_page(0)
        f.read_page(0)
        delta = manager.snapshot() - before
        assert delta.for_file("f").logical_reads == 2
        assert delta.for_file("f").physical_reads == 1

    def test_append_counts_one_logical_write(self, manager):
        f = manager.create_file("f")
        before = manager.snapshot()
        f.append_page()
        delta = manager.snapshot() - before
        assert delta.for_file("f").logical_writes == 1

    def test_write_page_counts(self, manager):
        f = manager.create_file("f")
        _, page = f.append_page()
        before = manager.snapshot()
        page.write_bytes(0, b"x")
        f.write_page(0, page)
        delta = manager.snapshot() - before
        assert delta.for_file("f").logical_writes == 1

    def test_scan_counts_every_page(self, manager):
        f = manager.create_file("f")
        for _ in range(5):
            f.append_page()
        before = manager.snapshot()
        list(f.scan_pages())
        assert (manager.snapshot() - before).for_file("f").logical_reads == 5


class TestPersistence:
    def test_write_page_persists_uncached(self, manager):
        f = manager.create_file("f")
        _, page = f.append_page()
        page.write_bytes(0, b"hi")
        f.write_page(0, page)
        assert f.read_page(0).read_bytes(0, 2) == b"hi"

    def test_write_page_persists_cached_after_flush(self):
        manager = StorageManager(page_size=64, pool_capacity=4)
        f = manager.create_file("f")
        _, page = f.append_page()
        page.write_bytes(0, b"hi")
        f.write_page(0, page)
        manager.flush()
        assert manager.store.read_page("f", 0).read_bytes(0, 2) == b"hi"

    def test_unwritten_mutation_lost_uncached(self, manager):
        """Mutating without write_page must not persist (by design)."""
        f = manager.create_file("f")
        _, page = f.append_page()
        page.write_bytes(0, b"zz")  # no write_page call
        assert f.read_page(0).read_bytes(0, 2) == bytes(2)

    def test_write_out_of_range_raises(self, manager):
        f = manager.create_file("f")
        _, page = f.append_page()
        with pytest.raises(StorageError):
            f.write_page(5, page)

    def test_append_returns_sequential_page_numbers(self, manager):
        f = manager.create_file("f")
        assert f.append_page()[0] == 0
        assert f.append_page()[0] == 1
        assert f.num_pages == 2


class TestManager:
    def test_create_open_drop(self, manager):
        manager.create_file("f")
        handle = manager.open_file("f")
        assert handle.num_pages == 0
        manager.drop_file("f")
        with pytest.raises(StorageError):
            manager.open_file("f")

    def test_open_missing_raises(self, manager):
        with pytest.raises(StorageError):
            manager.open_file("missing")

    def test_page_size_exposed(self, manager):
        assert manager.page_size == 64
        assert manager.create_file("f").page_size == 64

    def test_repr(self, manager):
        f = manager.create_file("f")
        assert "f" in repr(f)
