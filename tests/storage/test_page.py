"""Tests for fixed-size page images."""

import pytest

from repro.errors import PageError
from repro.storage.page import DEFAULT_PAGE_SIZE, Page


class TestConstruction:
    def test_default_size_is_paper_p(self):
        assert DEFAULT_PAGE_SIZE == 4096
        assert Page().page_size == 4096

    def test_new_page_zeroed(self):
        assert Page(64).read_bytes(0, 64) == bytes(64)

    def test_from_data(self):
        page = Page(4, b"\x01\x02\x03\x04")
        assert page.read_bytes(0, 4) == b"\x01\x02\x03\x04"

    def test_wrong_data_length_raises(self):
        with pytest.raises(PageError):
            Page(4, b"\x01")

    def test_nonpositive_size_raises(self):
        with pytest.raises(PageError):
            Page(0)


class TestByteAccess:
    def test_write_read(self):
        page = Page(16)
        page.write_bytes(3, b"abc")
        assert page.read_bytes(3, 3) == b"abc"

    def test_read_past_end_raises(self):
        with pytest.raises(PageError):
            Page(8).read_bytes(6, 3)

    def test_write_past_end_raises(self):
        with pytest.raises(PageError):
            Page(8).write_bytes(7, b"xy")

    def test_negative_offset_raises(self):
        with pytest.raises(PageError):
            Page(8).read_bytes(-1, 2)


class TestTypedAccess:
    @pytest.mark.parametrize(
        "writer,reader,value,width",
        [
            ("write_u16", "read_u16", 0xBEEF, 2),
            ("write_u32", "read_u32", 0xDEADBEEF, 4),
            ("write_u64", "read_u64", 0x0123456789ABCDEF, 8),
        ],
    )
    def test_roundtrip(self, writer, reader, value, width):
        page = Page(32)
        getattr(page, writer)(8, value)
        assert getattr(page, reader)(8) == value

    @pytest.mark.parametrize(
        "writer,too_big",
        [
            ("write_u16", 0x10000),
            ("write_u32", 0x100000000),
            ("write_u64", 1 << 64),
        ],
    )
    def test_range_checked(self, writer, too_big):
        with pytest.raises(PageError):
            getattr(Page(32), writer)(0, too_big)

    def test_bounds_checked(self):
        page = Page(8)
        with pytest.raises(PageError):
            page.read_u64(1)
        with pytest.raises(PageError):
            page.write_u32(6, 1)

    def test_negative_value_rejected(self):
        with pytest.raises(PageError):
            Page(8).write_u16(0, -1)


class TestUtility:
    def test_zero(self):
        page = Page(8, b"\xff" * 8)
        page.zero()
        assert page.read_bytes(0, 8) == bytes(8)

    def test_image_is_copy(self):
        page = Page(4)
        image = page.image()
        page.write_bytes(0, b"\xff")
        assert image == bytes(4)

    def test_repr(self):
        assert "4096" in repr(Page())
