"""Tests for the version-keyed decode cache."""

from repro.storage.decode_cache import DecodeCache


class TestHitMiss:
    def test_empty_cache_misses(self):
        cache = DecodeCache(max_entries=4)
        assert cache.get("f", 1) is None
        assert cache.stats()["misses"] == 1

    def test_put_then_get_same_version_hits(self):
        cache = DecodeCache(max_entries=4)
        cache.put("f", 1, "decoded")
        assert cache.get("f", 1) == "decoded"
        assert cache.stats()["hits"] == 1

    def test_version_mismatch_misses_and_evicts_stale(self):
        cache = DecodeCache(max_entries=4)
        cache.put("f", 1, "old")
        assert cache.get("f", 2) is None
        # The stale entry must be gone: the old version can never come back.
        assert cache.get("f", 1) is None
        assert cache.stats()["entries"] == 0

    def test_put_overwrites_previous_version(self):
        cache = DecodeCache(max_entries=4)
        cache.put("f", 1, "old")
        cache.put("f", 2, "new")
        assert cache.get("f", 2) == "new"
        assert cache.get("f", 1) is None


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        cache = DecodeCache(max_entries=2)
        cache.put("a", 1, "A")
        cache.put("b", 1, "B")
        assert cache.get("a", 1) == "A"  # refresh a
        cache.put("c", 1, "C")  # evicts b
        assert cache.get("b", 1) is None
        assert cache.get("a", 1) == "A"
        assert cache.get("c", 1) == "C"

    def test_invalidate_and_clear(self):
        cache = DecodeCache(max_entries=4)
        cache.put("a", 1, "A")
        cache.put("b", 1, "B")
        cache.invalidate("a")
        assert cache.get("a", 1) is None
        cache.clear()
        assert cache.get("b", 1) is None
        assert cache.stats()["entries"] == 0
