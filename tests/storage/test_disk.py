"""Tests for the simulated disk store."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import DiskStore
from repro.storage.page import Page


@pytest.fixture
def store() -> DiskStore:
    return DiskStore(page_size=64)


class TestFileLifecycle:
    def test_create_and_exists(self, store):
        store.create_file("a")
        assert store.exists("a")
        assert not store.exists("b")

    def test_duplicate_create_raises(self, store):
        store.create_file("a")
        with pytest.raises(StorageError):
            store.create_file("a")

    def test_drop(self, store):
        store.create_file("a")
        store.drop_file("a")
        assert not store.exists("a")

    def test_drop_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.drop_file("ghost")

    def test_file_names_sorted(self, store):
        for name in ("c", "a", "b"):
            store.create_file(name)
        assert store.file_names() == ["a", "b", "c"]

    def test_invalid_page_size(self):
        with pytest.raises(StorageError):
            DiskStore(page_size=0)


class TestPageOperations:
    def test_allocate_returns_sequential_numbers(self, store):
        store.create_file("f")
        assert store.allocate_page("f") == 0
        assert store.allocate_page("f") == 1
        assert store.num_pages("f") == 2

    def test_new_pages_zeroed(self, store):
        store.create_file("f")
        store.allocate_page("f")
        assert store.read_page("f", 0).read_bytes(0, 64) == bytes(64)

    def test_write_read_roundtrip(self, store):
        store.create_file("f")
        store.allocate_page("f")
        page = Page(64)
        page.write_bytes(0, b"hello")
        store.write_page("f", 0, page)
        assert store.read_page("f", 0).read_bytes(0, 5) == b"hello"

    def test_read_returns_independent_copy(self, store):
        store.create_file("f")
        store.allocate_page("f")
        page = store.read_page("f", 0)
        page.write_bytes(0, b"\xff")
        assert store.read_page("f", 0).read_bytes(0, 1) == b"\x00"

    def test_out_of_range_read(self, store):
        store.create_file("f")
        with pytest.raises(StorageError):
            store.read_page("f", 0)

    def test_out_of_range_write(self, store):
        store.create_file("f")
        with pytest.raises(StorageError):
            store.write_page("f", 0, Page(64))

    def test_unknown_file_operations(self, store):
        with pytest.raises(StorageError):
            store.read_page("nope", 0)
        with pytest.raises(StorageError):
            store.allocate_page("nope")
        with pytest.raises(StorageError):
            store.num_pages("nope")

    def test_page_size_mismatch_rejected(self, store):
        store.create_file("f")
        store.allocate_page("f")
        with pytest.raises(StorageError):
            store.write_page("f", 0, Page(32))

    def test_total_pages(self, store):
        store.create_file("a")
        store.create_file("b")
        store.allocate_page("a")
        store.allocate_page("b")
        store.allocate_page("b")
        assert store.total_pages() == 3
