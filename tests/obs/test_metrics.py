"""Metrics registry: instrument arithmetic, snapshot, in-place reset."""

import pytest

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    file_kind,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge_keeps_last_value(self):
        g = Gauge("g")
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_summary(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert sum(h.buckets) == 3

    def test_histogram_empty_is_zeroed(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.summary() == {
            "count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
        }

    def test_histogram_bucket_overflow(self):
        h = Histogram("h")
        h.record(1e9)  # beyond the largest bound
        assert h.buckets[-1] == 1


class TestRegistry:
    def test_instruments_are_stable_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(7)
        reg.histogram("c").record(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 7}
        assert snap["histograms"]["c"]["count"] == 1

    def test_reset_zeroes_in_place(self):
        """Components cache instrument refs; reset must not replace them."""
        reg = MetricsRegistry()
        counter = reg.counter("a")
        histogram = reg.histogram("c")
        counter.inc(9)
        histogram.record(4.0)
        reg.reset()
        assert counter.value == 0
        assert histogram.count == 0
        assert histogram.min is None
        assert reg.counter("a") is counter
        counter.inc()
        assert reg.snapshot()["counters"]["a"] == 1

    def test_process_registry_fed_by_storage(self):
        from repro.storage.paged_file import StorageManager

        before = REGISTRY.counter("storage.pool.misses").value
        manager = StorageManager(page_size=256, pool_capacity=0)
        f = manager.create_file("data")
        f.append_page()
        f.read_page(0)
        assert REGISTRY.counter("storage.pool.misses").value > before


class TestFileKind:
    @pytest.mark.parametrize("name,kind", [
        ("objects:Student", "object"),
        ("ssf:Student.hobbies:signatures", "ssf.signature"),
        ("ssf:Student.hobbies:oids", "ssf.oid"),
        ("bssf:Student.hobbies:slice:0042", "bssf.slice"),
        ("bssf:Student.hobbies:oids", "bssf.oid"),
        ("nix:Student.courses:btree", "nix"),
        ("weird", "weird"),
    ])
    def test_classification(self, name, kind):
        assert file_kind(name) == kind
