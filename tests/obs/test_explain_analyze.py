"""Acceptance: ``explain_analyze`` span trees reconcile with IOSnapshot.

The ISSUE's acceptance criterion: running ``explain_analyze`` on a BSSF
superset query renders a span tree whose per-span page counts sum to the
query's IOSnapshot logical total. The cost context is passed explicitly so
planning performs no I/O of its own — the root span then covers exactly the
pages the statistics delta covers.
"""

import pytest

from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.planner import CostContext
from tests.conftest import HOBBIES, populate_students

CTX = CostContext(
    num_objects=120, domain_cardinality=len(HOBBIES), target_cardinality=3
)
QUERY = 'select Student where hobbies has-subset ("Baseball", "Fishing")'


@pytest.fixture
def indexed_db(student_db):
    populate_students(student_db)
    student_db.create_bssf_index(
        "Student", "hobbies", signature_bits=128, bits_per_element=2
    )
    return student_db


class TestExplainAnalyze:
    def test_span_pages_sum_to_io_snapshot_total(self, indexed_db):
        executor = QueryExecutor(indexed_db)
        result = executor.execute_text(
            QUERY,
            ExecutionOptions(context=CTX, prefer_facility="bssf", trace=True),
        )
        root = result.trace
        assert root is not None and root.name == "query.execute"
        io_total = result.statistics.io.logical_total
        assert io_total > 0
        # Inclusive root total == the query's IOSnapshot logical total ...
        assert root.logical_pages == io_total
        # ... and the exclusive per-span counts partition it exactly.
        assert sum(s.self_logical_pages for s in root.walk()) == io_total

    def test_rendered_tree_shows_pipeline_spans(self, indexed_db):
        executor = QueryExecutor(indexed_db)
        text = executor.explain_analyze(
            QUERY, ExecutionOptions(context=CTX, prefer_facility="bssf")
        )
        assert "query.execute" in text
        assert "query.plan" in text
        assert "bssf.search.superset" in text
        assert "query.drop_resolution" in text
        assert "pages=" in text
        assert "plan  :" in text

    def test_results_identical_with_and_without_tracing(self, indexed_db):
        executor = QueryExecutor(indexed_db)
        opts = ExecutionOptions(context=CTX, prefer_facility="bssf")
        plain = executor.execute_text(QUERY, opts)
        traced = executor.execute_text(QUERY, opts.evolve(trace=True))
        assert plain.oids() == traced.oids()
        assert (
            plain.statistics.io.logical_total
            == traced.statistics.io.logical_total
        )
        assert plain.trace is None and traced.trace is not None

    def test_explicit_tracer_with_sink_receives_root(self, indexed_db):
        sink = RingBufferSink()
        tracer = Tracer(io_source=indexed_db.storage, sinks=[sink])
        executor = QueryExecutor(indexed_db)
        executor.execute_text(QUERY, ExecutionOptions(context=CTX, tracer=tracer))
        assert [s.name for s in sink.spans()] == ["query.execute"]

    def test_subquery_spans_nest_under_one_root(self, database):
        from repro.objects.schema import ClassSchema

        database.define_class(
            ClassSchema.build("Course", name="scalar", category="scalar")
        )
        database.define_class(
            ClassSchema.build("Student", name="scalar", courses="set")
        )
        db_courses = [
            database.insert("Course", {"name": f"c{i}", "category": "DB"})
            for i in range(2)
        ]
        database.insert(
            "Student", {"name": "amy", "courses": set(db_courses)}
        )
        executor = QueryExecutor(database)
        result = executor.execute_text(
            'select Student where courses has-subset '
            '(select Course where category = "DB")',
            ExecutionOptions(trace=True),
        )
        assert len(result) == 1
        names = [s.name for s in result.trace.walk()]
        assert names.count("query.execute") == 1
        assert "query.subquery" in names
