"""Near-zero-cost tracing: lazy I/O materialization, sampling, root ring.

The tracer's record-path work is one journal append per I/O call and one
position capture per span; the per-file delta a span reports is replayed
lazily from the journal on first ``span.io`` access. These tests pin the
laziness contract (exactness after the fact, including the many-files
record forms), the ``sample_every`` knob (unsampled trees keep their
structure but skip I/O capture), and the bounded ``max_roots`` ring.
"""

from repro.obs.tracer import Tracer, activate
from repro.storage.paged_file import StorageManager


def make_manager():
    return StorageManager(page_size=256, pool_capacity=0)


def touch(manager, name, pages):
    try:
        file = manager.open_file(name)
    except Exception:
        file = manager.create_file(name)
    while file.num_pages < pages:
        file.append_page()
    for i in range(pages):
        file.read_page(i)


class TestLazyIO:
    def test_io_is_exact_after_tracer_is_done(self):
        manager = make_manager()
        tracer = Tracer(io_source=manager)
        with tracer.span("work"):
            touch(manager, "a", 2)
            touch(manager, "b", 1)
        span = tracer.last_root
        assert span.pages_by_file() == {"a": 4, "b": 2}
        assert span.io.total().logical_reads == 3
        assert span.io.total().logical_writes == 3

    def test_many_files_record_forms_replay_correctly(self):
        manager = make_manager()
        stats = manager.stats
        tracer = Tracer(io_source=manager)
        with tracer.span("bulk"):
            stats.record_logical_read_many(["s1", "s2", "s3"], 2)
            stats.record_physical_read_many(["s1"], 5)
        span = tracer.last_root
        assert span.pages_by_file() == {"s1": 2, "s2": 2, "s3": 2}
        per_file = dict(span.io.files())
        assert per_file["s1"].physical_reads == 5

    def test_nested_spans_attribute_io_to_the_right_levels(self):
        manager = make_manager()
        tracer = Tracer(io_source=manager)
        with tracer.span("outer"):
            touch(manager, "x", 1)
            with tracer.span("inner"):
                touch(manager, "y", 2)
        outer = tracer.last_root
        inner = outer.children[0]
        assert inner.pages_by_file() == {"y": 4}
        # The outer span covers both its own and the nested I/O.
        assert outer.pages_by_file() == {"x": 2, "y": 4}
        assert outer.self_logical_pages == 2

    def test_journal_does_not_grow_shared_statistics(self):
        # Tracing must not perturb accounting: totals with an active
        # tracer equal totals without one.
        traced, plain = make_manager(), make_manager()
        tracer = Tracer(io_source=traced)
        with activate(tracer):
            with tracer.span("work"):
                touch(traced, "a", 3)
        touch(plain, "a", 3)
        assert traced.snapshot().total() == plain.snapshot().total()


class TestSampling:
    def test_unsampled_roots_keep_structure_but_skip_io(self):
        manager = make_manager()
        tracer = Tracer(io_source=manager, sample_every=2)
        for i in range(4):
            with tracer.span(f"q{i}"):
                touch(manager, f"f{i}", 1)
        roots = tracer.roots
        assert [s.name for s in roots] == ["q0", "q1", "q2", "q3"]
        assert roots[0].io is not None and roots[2].io is not None
        assert roots[1].io is None and roots[3].io is None
        assert roots[1].pages_by_file() == {}

    def test_sample_every_one_captures_everything(self):
        manager = make_manager()
        tracer = Tracer(io_source=manager, sample_every=1)
        for i in range(3):
            with tracer.span(f"q{i}"):
                touch(manager, "f", 1)
        assert all(root.io is not None for root in tracer.roots)

    def test_nested_spans_follow_their_roots_sampling_decision(self):
        manager = make_manager()
        tracer = Tracer(io_source=manager, sample_every=2)
        for i in range(2):
            with tracer.span(f"root{i}"):
                with tracer.span("child"):
                    touch(manager, "f", 1)
        sampled, unsampled = tracer.roots
        assert sampled.children[0].io is not None
        assert unsampled.children[0].io is None


class TestRootRing:
    def test_ring_keeps_only_the_newest_roots(self):
        tracer = Tracer(max_roots=3)
        for i in range(7):
            with tracer.span(f"q{i}"):
                pass
        assert [s.name for s in tracer.roots] == ["q4", "q5", "q6"]
        assert tracer.last_root.name == "q6"

    def test_long_serving_sessions_stay_bounded(self):
        manager = make_manager()
        tracer = Tracer(io_source=manager, max_roots=16)
        for i in range(100):
            with tracer.span(f"q{i}"):
                touch(manager, "f", 1) if i == 0 else None
        assert len(tracer.roots) == 16
