"""Span tracer: nesting, I/O deltas, the null tracer, traced_search."""

import pytest

from repro.obs import tracer as trace
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, activate
from repro.storage.paged_file import StorageManager


@pytest.fixture
def manager():
    return StorageManager(page_size=256, pool_capacity=0)


class TestNesting:
    def test_children_attach_to_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a.1"):
                    pass
            with tracer.span("b"):
                pass
        root = tracer.last_root
        assert root.name == "root"
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a.1"]
        assert [s.name for s in root.walk()] == ["root", "a", "a.1", "b"]

    def test_only_roots_are_collected(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.roots] == ["outer"]

    def test_active_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.active_span is None
        with tracer.span("outer") as outer:
            assert tracer.active_span is outer
            with tracer.span("inner") as inner:
                assert tracer.active_span is inner
            assert tracer.active_span is outer
        assert tracer.active_span is None

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.last_root.attributes["error"] == "ValueError"

    def test_annotate_hits_innermost(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.annotate(k="v")
        root = tracer.last_root
        assert "k" not in root.attributes
        assert root.children[0].attributes["k"] == "v"


class TestIODeltas:
    def test_span_captures_per_file_delta(self, manager):
        f = manager.create_file("data")
        for _ in range(4):
            f.append_page()
        tracer = Tracer(io_source=manager)
        with tracer.span("reads") as sp:
            f.read_page(0)
            f.read_page(1)
        assert sp.logical_pages == 2
        assert sp.pages_by_file() == {"data": 2}
        assert sp.elapsed_seconds > 0.0

    def test_self_pages_sum_to_inclusive_total(self, manager):
        f = manager.create_file("data")
        for _ in range(6):
            f.append_page()
        tracer = Tracer(io_source=manager)
        with tracer.span("root"):
            f.read_page(0)
            with tracer.span("child"):
                f.read_page(1)
                f.read_page(2)
            f.read_page(3)
        root = tracer.last_root
        assert root.logical_pages == 4
        assert root.self_logical_pages == 2
        assert sum(s.self_logical_pages for s in root.walk()) == root.logical_pages

    def test_tracing_never_charges_io(self, manager):
        f = manager.create_file("data")
        f.append_page()
        before = manager.snapshot()
        tracer = Tracer(io_source=manager)
        with tracer.span("idle"):
            pass
        assert (manager.snapshot() - before).total().logical_reads == 0
        assert (manager.snapshot() - before).total().physical_reads == 0

    def test_to_dict_round_trips_structure(self, manager):
        f = manager.create_file("data")
        f.append_page()
        tracer = Tracer(io_source=manager)
        with tracer.span("root", tag="x"):
            f.read_page(0)
        d = tracer.last_root.to_dict()
        assert d["name"] == "root"
        assert d["logical_pages"] == 1
        assert d["attributes"]["tag"] == "x"
        assert d["children"] == []


class TestActivation:
    def test_default_is_null_tracer(self):
        assert trace.current() is NULL_TRACER
        assert isinstance(trace.current(), NullTracer)

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with activate(tracer):
            assert trace.current() is tracer
            with trace.span("via-module"):
                pass
        assert trace.current() is NULL_TRACER
        assert [s.name for s in tracer.roots] == ["via-module"]

    def test_activate_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with activate(tracer):
                raise RuntimeError("bail")
        assert trace.current() is NULL_TRACER

    def test_null_tracer_span_is_shared_noop(self):
        a = NULL_TRACER.span("x")
        b = NULL_TRACER.span("y", attr=1)
        assert a is b
        with a as sp:
            sp.set("ignored", True)  # must not raise
        NULL_TRACER.annotate(ignored=True)
        assert NULL_TRACER.active_span is None
