"""Trace sinks: ring buffer, JSON-lines, text renderer."""

import io
import json

import pytest

from repro.obs.sinks import JsonLinesSink, RingBufferSink, render_span_tree
from repro.obs.tracer import Tracer


def make_root(name="root", children=("a", "b")):
    tracer = Tracer()
    with tracer.span(name):
        for child in children:
            with tracer.span(child):
                pass
    return tracer.last_root


class TestRingBufferSink:
    def test_keeps_last_capacity_roots(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=[sink])
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in sink.spans()] == ["s2", "s3"]
        assert len(sink) == 2

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit(make_root())
        sink.clear()
        assert sink.spans() == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_only_roots_reach_the_sink(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in sink.spans()] == ["outer"]


class TestJsonLinesSink:
    def test_writes_one_json_object_per_root(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.emit(make_root("first"))
        sink.emit(make_root("second"))
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == ["first", "second"]
        assert [c["name"] for c in parsed[0]["children"]] == ["a", "b"]
        assert sink.emitted == 2

    def test_path_target_appends_and_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesSink(path) as sink:
            sink.emit(make_root())
        with JsonLinesSink(path) as sink:
            sink.emit(make_root())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2


class TestRenderSpanTree:
    def test_renders_connectors_and_names(self):
        text = render_span_tree(make_root("query.execute", ("plan", "search")))
        lines = text.splitlines()
        assert lines[0].startswith("query.execute")
        assert any(line.startswith("├─ plan") for line in lines)
        assert any(line.startswith("└─ search") for line in lines)
        assert "pages=" in lines[0]
        assert "elapsed=" in lines[0]

    def test_renders_error_marker(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert "!ValueError" in render_span_tree(tracer.last_root)

    def test_none_renders_placeholder(self):
        assert render_span_tree(None) == "(no trace recorded)"
