"""Tracing must not perturb the page-access accounting.

The golden fixed-seed suite (``tests/access/test_golden_page_accesses.py``)
freezes the logical page-access counts of every facility search. This module
re-runs that exact workload with a tracer *active* and demands bit-identical
numbers: the tracer only reads I/O counters, so enabling it must not change
a single count. The golden module is loaded by file path (test directories
are not packages).
"""

import importlib.util
from pathlib import Path

import pytest

from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer, activate

_GOLDEN_PATH = (
    Path(__file__).parent.parent / "access" / "test_golden_page_accesses.py"
)
_spec = importlib.util.spec_from_file_location("_golden_page_accesses", _GOLDEN_PATH)
golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden)


@pytest.mark.parametrize("use_kernels", [True, False], ids=["kernels", "naive"])
@pytest.mark.parametrize("pool_capacity", [0, 64], ids=["uncached", "cached"])
def test_golden_counts_identical_with_tracing_on(pool_capacity, use_kernels):
    manager, ssf, bssf, qgen = golden.build(pool_capacity, use_kernels)
    sink = RingBufferSink(capacity=1024)
    tracer = Tracer(io_source=manager, sinks=[sink])
    observed = {}
    with activate(tracer):
        for label, facility in (("ssf", ssf), ("bssf", bssf)):
            for mode in ("superset", "subset", "overlap"):
                for dq in (2, 5, 20):
                    query = qgen.random_query_set(dq)
                    search = getattr(facility, f"search_{mode}")
                    observed[f"{label}:{mode}:dq{dq}"] = golden.meter(
                        manager, lambda: search(query)
                    )
            observed[f"{label}:superset_smart"] = golden.meter(
                manager,
                lambda q=qgen.random_query_set(5): facility.search_superset(
                    q, use_elements=1
                ),
            )
            observed[f"{label}:subset_smart"] = golden.meter(
                manager,
                lambda q=qgen.random_query_set(40): facility.search_subset(
                    q, slices_to_examine=17
                ),
            )
    assert observed == golden.GOLDEN
    # The tracer actually recorded the searches (two runs per measurement).
    assert len(sink) > 0
    recorded = {span.name for span in sink.spans()}
    assert {"ssf.search.superset", "bssf.search.subset"} <= recorded
    # And every recorded span's page delta matches the metered logical reads.
    for span in sink.spans():
        assert span.io is not None


def test_traced_search_is_identity_when_off():
    """With the null tracer active the decorator adds no span objects."""
    manager, ssf, _bssf, qgen = golden.build(0, True)
    query = qgen.random_query_set(5)
    result = ssf.search_superset(query)
    assert result.facility == "ssf"
