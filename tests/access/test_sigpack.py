"""Tests for bit-level signature packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.sigpack import (
    bits_to_signature,
    page_bit_array,
    read_signature_matrix,
    signature_to_bits,
    signatures_per_page,
    store_bit_array,
    write_signature_in_page,
)
from repro.core.bits import BitVector
from repro.errors import ConfigurationError
from repro.storage.page import Page


class TestCapacity:
    def test_paper_values(self):
        # floor(P·b/F): F=250 → 131, F=500 → 65 (drives SC_SIG anchors)
        assert signatures_per_page(4096, 250) == 131
        assert signatures_per_page(4096, 500) == 65
        assert signatures_per_page(4096, 1000) == 32
        assert signatures_per_page(4096, 2500) == 13

    def test_oversized_signature_rejected(self):
        with pytest.raises(ConfigurationError):
            signatures_per_page(8, 100)

    def test_invalid_f(self):
        with pytest.raises(ConfigurationError):
            signatures_per_page(4096, 0)


class TestBitConversions:
    def test_signature_to_bits(self):
        sig = BitVector.from_bitstring("01010100")
        assert signature_to_bits(sig).tolist() == [0, 1, 0, 1, 0, 1, 0, 0]

    def test_bits_roundtrip(self):
        sig = BitVector.from_positions(100, [0, 63, 64, 99])
        assert bits_to_signature(signature_to_bits(sig)) == sig

    def test_page_bit_array_length(self):
        assert len(page_bit_array(Page(64))) == 512

    def test_store_bit_array_roundtrip(self):
        page = Page(64)
        bits = np.zeros(512, dtype=np.uint8)
        bits[[0, 7, 8, 511]] = 1
        store_bit_array(page, bits)
        assert page_bit_array(page).tolist() == bits.tolist()

    def test_store_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            store_bit_array(Page(64), np.zeros(100, dtype=np.uint8))


class TestPageSlots:
    def test_write_and_read_back(self):
        page = Page(64)  # 512 bits; F=100 → 5 slots
        sig_a = BitVector.from_positions(100, [0, 50, 99])
        sig_b = BitVector.from_positions(100, [1, 2, 3])
        write_signature_in_page(page, 0, sig_a)
        write_signature_in_page(page, 3, sig_b)
        matrix = read_signature_matrix(page, 100, 4)
        assert matrix.shape == (4, 100)
        assert np.nonzero(matrix[0])[0].tolist() == [0, 50, 99]
        assert np.nonzero(matrix[1])[0].tolist() == []
        assert np.nonzero(matrix[3])[0].tolist() == [1, 2, 3]

    def test_unaligned_f_packs_across_bytes(self):
        """F not a multiple of 8 must still pack without interference."""
        page = Page(64)
        sigs = [BitVector.from_positions(37, [i, 36]) for i in range(5)]
        for slot, sig in enumerate(sigs):
            write_signature_in_page(page, slot, sig)
        matrix = read_signature_matrix(page, 37, 5)
        for slot, sig in enumerate(sigs):
            assert np.nonzero(matrix[slot])[0].tolist() == sig.set_positions()

    def test_slot_bounds_checked(self):
        page = Page(64)
        sig = BitVector(100)
        with pytest.raises(ConfigurationError):
            write_signature_in_page(page, 5, sig)  # capacity is 5 (slots 0-4)

    def test_count_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            read_signature_matrix(Page(64), 100, 6)


@settings(max_examples=50)
@given(
    F=st.integers(min_value=1, max_value=511),
    data=st.data(),
)
def test_property_slots_do_not_interfere(F, data):
    page = Page(64)
    capacity = signatures_per_page(64, F)
    slots = data.draw(
        st.lists(
            st.integers(0, capacity - 1), min_size=1, max_size=min(capacity, 6),
            unique=True,
        )
    )
    written = {}
    for slot in slots:
        positions = data.draw(
            st.sets(st.integers(0, F - 1), max_size=min(F, 8))
        )
        sig = BitVector.from_positions(F, positions)
        write_signature_in_page(page, slot, sig)
        written[slot] = sig
    matrix = read_signature_matrix(page, F, capacity)
    for slot in range(capacity):
        expected = written.get(slot, BitVector(F))
        assert np.nonzero(matrix[slot])[0].tolist() == expected.set_positions()
