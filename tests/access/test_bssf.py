"""Tests for the Bit-Sliced Signature File."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.bssf import BitSlicedSignatureFile
from repro.core.signature import SignatureScheme
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


def make_bssf(F=64, m=2, page_size=256, seed=0, worst_case=False):
    """Small pages (256 B = 2048 entries/slice page) keep tests fast."""
    manager = StorageManager(page_size=page_size, pool_capacity=0)
    scheme = SignatureScheme(F, m, seed=seed)
    facility = BitSlicedSignatureFile(
        manager, scheme, worst_case_insert=worst_case
    )
    return facility, manager


def load(bssf, sets):
    oids = []
    for i, elements in enumerate(sets):
        oid = OID(1, i)
        bssf.insert(frozenset(elements), oid)
        oids.append(oid)
    return oids


RNG_SETS = [
    frozenset(random.Random(100 + i).sample(range(40), 4)) for i in range(60)
]


class TestInsert:
    def test_slice_files_materialized_uniformly(self):
        bssf, _ = make_bssf()
        load(bssf, RNG_SETS[:10])
        assert bssf.slice_pages == 1
        bssf.verify()

    def test_storage_cost_is_f_slices_plus_oid(self):
        bssf, _ = make_bssf(F=64)
        load(bssf, RNG_SETS[:10])
        pages = bssf.storage_pages()
        assert pages["slices"] == 64
        assert pages["oid"] == 1

    def test_expected_insert_touches_about_m_slices(self):
        bssf, manager = make_bssf(F=64, m=2)
        load(bssf, RNG_SETS[:5])
        before = manager.snapshot()
        bssf.insert(frozenset({991, 992}), OID(1, 99))
        delta = manager.snapshot() - before
        slice_touches = sum(
            counts.logical_total
            for name, counts in delta.per_file.items()
            if ":slice:" in name
        )
        # two elements × m=2 → at most 4 distinct slices, read+write each
        assert 2 <= slice_touches <= 8

    def test_worst_case_insert_touches_every_slice(self):
        bssf, manager = make_bssf(F=32, m=2, worst_case=True)
        load(bssf, RNG_SETS[:3])
        before = manager.snapshot()
        bssf.insert(frozenset({5}), OID(1, 99))
        delta = manager.snapshot() - before
        touched_slices = sum(
            1 for name, counts in delta.per_file.items()
            if ":slice:" in name and counts.logical_total > 0
        )
        assert touched_slices == 32  # the model's F term

    def test_second_slice_page_allocated_on_overflow(self):
        bssf, _ = make_bssf(F=8, m=1, page_size=64)  # 512 entries/page
        load(bssf, [{i % 30} for i in range(513)])
        assert bssf.slice_pages == 2
        bssf.verify()


class TestReadSlice:
    def test_reflects_inserted_bits(self):
        bssf, _ = make_bssf(F=64, m=2)
        sets = [{1}, {2}, {1}]
        load(bssf, sets)
        positions = bssf.scheme.hasher.positions(1)
        column = bssf.read_slice(positions[0])
        assert column.tolist()[:3] == [True, False, True]

    def test_bounds_checked(self):
        bssf, _ = make_bssf(F=8)
        with pytest.raises(AccessFacilityError):
            bssf.read_slice(8)

    def test_empty_file(self):
        bssf, _ = make_bssf()
        assert bssf.read_slice(0).size == 0

    def test_costs_slice_pages_reads(self):
        bssf, manager = make_bssf(F=16, m=1, page_size=64)
        load(bssf, [{i % 20} for i in range(600)])  # 2 pages/slice
        before = manager.snapshot()
        bssf.read_slice(3)
        delta = manager.snapshot() - before
        total = sum(
            counts.logical_reads for name, counts in delta.per_file.items()
            if ":slice:" in name
        )
        assert total == 2


class TestSupersetSearch:
    def test_no_false_dismissals(self):
        bssf, _ = make_bssf()
        oids = load(bssf, RNG_SETS)
        query = frozenset(list(RNG_SETS[3])[:2])
        expected = {oid for oid, s in zip(oids, RNG_SETS) if s >= query}
        result = bssf.search_superset(query)
        assert expected <= set(result.candidates)

    def test_reads_at_most_query_weight_slices(self):
        bssf, _ = make_bssf(F=64, m=2)
        load(bssf, RNG_SETS)
        query = frozenset({1, 2, 3})
        weight = bssf.scheme.set_signature(query).popcount()
        result = bssf.search_superset(query)
        assert result.detail["slices_read"] <= weight

    def test_partial_query_reads_fewer_slices(self):
        bssf, _ = make_bssf(F=256, m=2)
        load(bssf, RNG_SETS)
        query = frozenset(list(RNG_SETS[0]) )
        full = bssf.search_superset(query).detail["slices_read"]
        partial = bssf.search_superset(query, use_elements=1).detail["slices_read"]
        assert partial <= full
        assert partial <= 2  # one element × m=2

    def test_empty_query_returns_everything(self):
        bssf, _ = make_bssf()
        oids = load(bssf, RNG_SETS[:6])
        result = bssf.search_superset(frozenset())
        assert set(result.candidates) == set(oids)

    def test_use_elements_validated(self):
        bssf, _ = make_bssf()
        load(bssf, RNG_SETS[:3])
        with pytest.raises(AccessFacilityError):
            bssf.search_superset(frozenset({1}), use_elements=0)


class TestSubsetSearch:
    def test_no_false_dismissals(self):
        bssf, _ = make_bssf()
        oids = load(bssf, RNG_SETS)
        query = frozenset(range(12))
        expected = {oid for oid, s in zip(oids, RNG_SETS) if s <= query}
        result = bssf.search_subset(query)
        assert expected <= set(result.candidates)

    def test_slice_budget_respected(self):
        bssf, _ = make_bssf(F=64, m=2)
        load(bssf, RNG_SETS)
        result = bssf.search_subset(frozenset({1, 2}), slices_to_examine=5)
        assert result.detail["slices_read"] <= 5

    def test_budget_zero_drops_everything(self):
        bssf, _ = make_bssf()
        oids = load(bssf, RNG_SETS[:7])
        result = bssf.search_subset(frozenset({1}), slices_to_examine=0)
        assert set(result.candidates) == set(oids)

    def test_smaller_budget_never_loses_answers(self):
        bssf, _ = make_bssf()
        oids = load(bssf, RNG_SETS)
        by_oid = dict(zip(oids, RNG_SETS))
        query = frozenset(range(10))
        truth = {oid for oid, s in by_oid.items() if s <= query}
        for budget in (0, 3, 10, 40):
            candidates = set(
                bssf.search_subset(query, slices_to_examine=budget).candidates
            )
            assert truth <= candidates

    def test_negative_budget_rejected(self):
        bssf, _ = make_bssf()
        with pytest.raises(AccessFacilityError):
            bssf.search_subset(frozenset({1}), slices_to_examine=-1)

    def test_empty_target_always_drops(self):
        bssf, _ = make_bssf()
        oid = OID(1, 0)
        bssf.insert(frozenset(), oid)
        assert oid in bssf.search_subset(frozenset({3})).candidates


class TestOverlapSearch:
    def test_no_false_dismissals(self):
        bssf, _ = make_bssf()
        oids = load(bssf, RNG_SETS)
        query = frozenset({7, 21})
        expected = {oid for oid, s in zip(oids, RNG_SETS) if s & query}
        assert expected <= set(bssf.search_overlap(query).candidates)

    def test_empty_query_matches_nothing(self):
        bssf, _ = make_bssf()
        load(bssf, RNG_SETS[:4])
        assert bssf.search_overlap(frozenset()).candidates == []


class TestDelete:
    def test_tombstone_filters_results(self):
        bssf, _ = make_bssf()
        oids = load(bssf, [{1, 2}, {1, 3}])
        bssf.delete(frozenset({1, 2}), oids[0])
        result = bssf.search_superset(frozenset({1}))
        assert oids[0] not in result.candidates
        assert oids[1] in result.candidates


@settings(max_examples=20, deadline=None)
@given(
    sets=st.lists(
        st.frozensets(st.integers(0, 25), max_size=5), min_size=1, max_size=20
    ),
    query=st.frozensets(st.integers(0, 25), min_size=1, max_size=5),
)
def test_property_bssf_matches_ssf_drops(sets, query):
    """BSSF and SSF share the scheme, so their drop sets must be identical."""
    from repro.access.ssf import SequentialSignatureFile

    manager = StorageManager(page_size=256, pool_capacity=0)
    scheme = SignatureScheme(64, 2, seed=5)
    bssf = BitSlicedSignatureFile(manager, scheme)
    ssf = SequentialSignatureFile(manager, scheme)
    for i, elements in enumerate(sets):
        oid = OID(1, i)
        bssf.insert(elements, oid)
        ssf.insert(elements, oid)
    assert set(bssf.search_superset(query).candidates) == set(
        ssf.search_superset(query).candidates
    )
    assert set(bssf.search_subset(query).candidates) == set(
        ssf.search_subset(query).candidates
    )
