"""Tests for the order-preserving key codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.nix.keycodec import (
    EMPTY_SET_KEY,
    EmptySetMarker,
    decode_key,
    encode_key,
)
from repro.errors import AccessFacilityError
from repro.objects.oid import OID


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**62, -(2**62), 0.5, -3.25,
         "", "Baseball", "héllo", b"", b"\x00\xff", OID(7, 99)],
    )
    def test_roundtrip(self, value):
        assert decode_key(encode_key(value)) == value

    def test_empty_set_key_decodes_to_marker(self):
        assert decode_key(EMPTY_SET_KEY) is EmptySetMarker
        assert "empty-set" in repr(EmptySetMarker)

    def test_empty_key_rejected(self):
        with pytest.raises(AccessFacilityError):
            decode_key(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(AccessFacilityError):
            decode_key(b"\x99abc")

    def test_unsupported_type_rejected(self):
        with pytest.raises(AccessFacilityError):
            encode_key([1, 2])

    def test_int_out_of_range_rejected(self):
        with pytest.raises(AccessFacilityError):
            encode_key(2**63)


class TestOrderPreservation:
    def test_ints(self):
        values = [-(2**62), -100, -1, 0, 1, 7, 2**62]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_floats_including_negatives(self):
        values = [-1e300, -2.5, -0.5, 0.0, 0.25, 3.5, 1e300]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_strings(self):
        values = ["", "A", "Baseball", "Baseballs", "Fishing", "a"]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_oids(self):
        values = [OID(0, 0), OID(0, 5), OID(1, 0), OID(2, 3)]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_empty_set_key_sorts_first(self):
        assert EMPTY_SET_KEY < encode_key(None)
        assert EMPTY_SET_KEY < encode_key(-(2**62))
        assert EMPTY_SET_KEY < encode_key("")


@settings(max_examples=150)
@given(a=st.integers(-(2**62), 2**62), b=st.integers(-(2**62), 2**62))
def test_property_int_order(a, b):
    assert (encode_key(a) < encode_key(b)) == (a < b)


@settings(max_examples=150)
@given(
    a=st.floats(allow_nan=False, allow_infinity=False),
    b=st.floats(allow_nan=False, allow_infinity=False),
)
def test_property_float_order(a, b):
    assert (encode_key(a) < encode_key(b)) == (a < b) or (a == b)


@settings(max_examples=150)
@given(a=st.text(max_size=20), b=st.text(max_size=20))
def test_property_text_roundtrip_and_order(a, b):
    assert decode_key(encode_key(a)) == a
    # UTF-8 byte order equals code-point order
    assert (encode_key(a) < encode_key(b)) == (a < b)
