"""Tests for the Nested Index facility."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.nix import NestedIndex
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


def make_nix(page_size=4096):
    manager = StorageManager(page_size=page_size, pool_capacity=0)
    return NestedIndex(manager), manager


def load(nix, sets):
    oids = []
    for i, elements in enumerate(sets):
        oid = OID(1, i)
        nix.insert(frozenset(elements), oid)
        oids.append(oid)
    return oids


RNG_SETS = [
    frozenset(random.Random(500 + i).sample(range(30), 4)) for i in range(40)
]


class TestMaintenance:
    def test_insert_indexes_every_element(self):
        nix, _ = make_nix()
        oid = OID(1, 0)
        nix.insert(frozenset({"a", "b", "c"}), oid)
        for element in ("a", "b", "c"):
            assert nix.lookup_element(element) == [oid]

    def test_delete_removes_every_element(self):
        nix, _ = make_nix()
        oid = OID(1, 0)
        nix.insert(frozenset({"a", "b"}), oid)
        nix.delete(frozenset({"a", "b"}), oid)
        assert nix.lookup_element("a") == []
        nix.verify()

    def test_delete_unindexed_raises(self):
        nix, _ = make_nix()
        with pytest.raises(AccessFacilityError):
            nix.delete(frozenset({"ghost"}), OID(1, 0))

    def test_empty_set_bucket(self):
        nix, _ = make_nix()
        oid = OID(1, 0)
        nix.insert(frozenset(), oid)
        result = nix.search_subset(frozenset({"anything"}))
        assert oid in result.candidates
        nix.delete(frozenset(), oid)
        assert oid not in nix.search_subset(frozenset({"x"})).candidates

    def test_delete_empty_set_unindexed_raises(self):
        nix, _ = make_nix()
        with pytest.raises(AccessFacilityError):
            nix.delete(frozenset(), OID(1, 3))


class TestSupersetSearch:
    def test_exact_intersection(self):
        nix, _ = make_nix()
        oids = load(nix, RNG_SETS)
        query = frozenset(list(RNG_SETS[5])[:2])
        expected = sorted(
            oid for oid, s in zip(oids, RNG_SETS) if s >= query
        )
        result = nix.search_superset(query)
        assert result.exact
        assert sorted(result.candidates) == expected

    def test_partial_lookup_overapproximates(self):
        nix, _ = make_nix()
        oids = load(nix, RNG_SETS)
        query = frozenset(RNG_SETS[2])
        full = set(nix.search_superset(query).candidates)
        partial_result = nix.search_superset(query, use_elements=1)
        assert not partial_result.exact
        assert full <= set(partial_result.candidates)
        assert partial_result.detail["lookups"] == 1

    def test_empty_query_returns_all_indexed(self):
        nix, _ = make_nix()
        oids = load(nix, RNG_SETS[:6])
        result = nix.search_superset(frozenset())
        assert sorted(result.candidates) == sorted(oids)

    def test_short_circuit_on_empty_intersection(self):
        nix, _ = make_nix()
        load(nix, [{1}, {2}])
        result = nix.search_superset(frozenset({1, 99}))
        assert result.candidates == []

    def test_use_elements_validated(self):
        nix, _ = make_nix()
        with pytest.raises(AccessFacilityError):
            nix.search_superset(frozenset({1}), use_elements=0)


class TestSubsetSearch:
    def test_union_overapproximates_subset(self):
        nix, _ = make_nix()
        oids = load(nix, RNG_SETS)
        by_oid = dict(zip(oids, RNG_SETS))
        query = frozenset(range(10))
        result = nix.search_subset(query)
        assert not result.exact
        truth = {oid for oid, s in by_oid.items() if s <= query}
        candidates = set(result.candidates)
        assert truth <= candidates
        # every candidate intersects the query (or is empty)
        for oid in candidates:
            assert by_oid[oid] & query or not by_oid[oid]

    def test_lookup_count_is_dq_plus_empty_bucket(self):
        nix, _ = make_nix()
        load(nix, RNG_SETS[:5])
        result = nix.search_subset(frozenset({1, 2, 3}))
        assert result.detail["lookups"] == 4


class TestOverlapSearch:
    def test_exact_overlap(self):
        nix, _ = make_nix()
        oids = load(nix, RNG_SETS)
        query = frozenset({3, 9})
        expected = sorted(
            oid for oid, s in zip(oids, RNG_SETS) if s & query
        )
        result = nix.search_overlap(query)
        assert result.exact
        assert sorted(result.candidates) == expected


class TestStorageAndGeometry:
    def test_storage_pages(self):
        nix, _ = make_nix(page_size=256)
        load(nix, RNG_SETS)
        pages = nix.storage_pages()
        assert pages["leaf"] >= 1
        assert nix.total_storage_pages() == pages["leaf"] + pages["nonleaf"]

    def test_lookup_cost_pages(self):
        nix, _ = make_nix()
        load(nix, RNG_SETS[:3])
        assert nix.lookup_cost_pages() == nix.height + 1

    def test_verify_after_load(self):
        nix, _ = make_nix(page_size=256)
        load(nix, RNG_SETS)
        nix.verify()


@settings(max_examples=20, deadline=None)
@given(
    sets=st.lists(
        st.frozensets(st.integers(0, 20), max_size=5), min_size=1, max_size=25
    ),
    query=st.frozensets(st.integers(0, 20), min_size=1, max_size=6),
)
def test_property_nix_answers_match_brute_force(sets, query):
    nix, _ = make_nix(page_size=512)
    oids = load(nix, sets)
    by_oid = dict(zip(oids, sets))

    superset = set(nix.search_superset(query).candidates)
    assert superset == {oid for oid, s in by_oid.items() if s >= query}

    subset_candidates = set(nix.search_subset(query).candidates)
    subset_truth = {oid for oid, s in by_oid.items() if s <= query}
    assert subset_truth <= subset_candidates

    overlap = set(nix.search_overlap(query).candidates)
    assert overlap == {oid for oid, s in by_oid.items() if s & query}
