"""Kernel-path vs naive-path parity for SSF and BSSF.

The packed-word fast paths (``use_kernels=True``) must be observationally
identical to the original per-entry/per-bit reference paths: same
candidates, same result detail (including ``slices_read`` early-exit
points), and bit-identical logical *and* physical page-access accounting —
the paper's metric must not know which implementation ran. The property
tests also cross-check both implementations against the plain
:class:`BitVector`-semantics drop conditions of §3.1.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.bssf import BitSlicedSignatureFile
from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SignatureScheme
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager

DOMAIN = list(range(24))

sets_strategy = st.lists(
    st.frozensets(st.sampled_from(DOMAIN), max_size=6), max_size=24
)
query_strategy = st.frozensets(st.sampled_from(DOMAIN), max_size=8)
# 70 and 200 exercise the non-multiple-of-64 tail-mask edge.
f_strategy = st.sampled_from([70, 128, 200])


def build_pair(factory, sets, F, m, capacity, use_bulk, page_size=128):
    """The same facility twice: kernel path and naive reference path."""
    out = []
    for use_kernels in (True, False):
        manager = StorageManager(page_size=page_size, pool_capacity=capacity)
        scheme = SignatureScheme(F, m, seed=7)
        facility = factory(manager, scheme, use_kernels=use_kernels)
        pairs = [(elements, OID(1, i)) for i, elements in enumerate(sets)]
        if use_bulk:
            facility.bulk_load(pairs)
        else:
            for elements, oid in pairs:
                facility.insert(elements, oid)
        out.append((facility, manager))
    return out


def make_ssf(manager, scheme, use_kernels):
    return SequentialSignatureFile(manager, scheme, use_kernels=use_kernels)


def make_bssf(manager, scheme, use_kernels):
    return BitSlicedSignatureFile(manager, scheme, use_kernels=use_kernels)


def metered(manager, op):
    before_pool = (manager.pool.hits, manager.pool.misses)
    before = manager.snapshot()
    result = op()
    delta = manager.snapshot() - before
    pool_delta = (
        manager.pool.hits - before_pool[0],
        manager.pool.misses - before_pool[1],
    )
    return result, delta, pool_delta


def assert_same_behavior(fast_pair, naive_pair, op_name, *args, **kwargs):
    """Run one search twice on both paths and compare round by round.

    The second round hits the fast path's decode cache (and, in cached-pool
    mode, a warm buffer pool on both paths); every round must agree on
    results, logical/physical I/O deltas, and pool hit/miss deltas.
    """
    (fast, fast_mgr), (naive, naive_mgr) = fast_pair, naive_pair
    for _ in range(2):
        n_result, n_delta, n_pool = metered(
            naive_mgr, lambda: getattr(naive, op_name)(*args, **kwargs)
        )
        f_result, f_delta, f_pool = metered(
            fast_mgr, lambda: getattr(fast, op_name)(*args, **kwargs)
        )
        assert f_result.candidates == n_result.candidates
        assert f_result.exact == n_result.exact
        assert f_result.detail == n_result.detail
        assert f_delta == n_delta
        assert f_pool == n_pool
    return n_result


class TestBSSFParity:
    @settings(max_examples=30, deadline=None)
    @given(
        sets=sets_strategy,
        query=query_strategy,
        F=f_strategy,
        m=st.integers(1, 3),
        capacity=st.sampled_from([0, 3]),
        use_bulk=st.booleans(),
    )
    def test_all_modes_match_naive_and_bitvector_reference(
        self, sets, query, F, m, capacity, use_bulk
    ):
        fast_pair, naive_pair = build_pair(
            make_bssf, sets, F, m, capacity, use_bulk
        )
        scheme = SignatureScheme(F, m, seed=7)
        target_sigs = [scheme.set_signature(s) for s in sets]
        query_sig = scheme.set_signature(query)

        result = assert_same_behavior(fast_pair, naive_pair, "search_superset", query)
        if query:
            expected = [
                OID(1, i)
                for i, sig in enumerate(target_sigs)
                if scheme.is_drop_superset(sig, query_sig)
            ]
            assert result.candidates == expected

        result = assert_same_behavior(fast_pair, naive_pair, "search_subset", query)
        if query:
            expected = [
                OID(1, i)
                for i, sig in enumerate(target_sigs)
                if scheme.is_drop_subset(sig, query_sig)
            ]
            assert result.candidates == expected

        result = assert_same_behavior(fast_pair, naive_pair, "search_overlap", query)
        if query:
            expected = [
                OID(1, i)
                for i, sig in enumerate(target_sigs)
                if not sig.is_zero() and sig.intersects(query_sig)
            ]
            assert result.candidates == expected

    @settings(max_examples=20, deadline=None)
    @given(
        sets=sets_strategy,
        query=query_strategy,
        F=f_strategy,
        k=st.integers(0, 205),
        use_elements=st.integers(1, 4),
    )
    def test_smart_strategies_match_naive(self, sets, query, F, k, use_elements):
        fast_pair, naive_pair = build_pair(
            make_bssf, sets, F, 2, capacity=0, use_bulk=True
        )
        if query:
            assert_same_behavior(
                fast_pair,
                naive_pair,
                "search_superset",
                query,
                use_elements=use_elements,
            )
        assert_same_behavior(
            fast_pair,
            naive_pair,
            "search_subset",
            query,
            slices_to_examine=min(k, F),
        )

    def test_insert_invalidates_decode_cache(self):
        """A write between searches must be visible — and charged — on both
        paths identically."""
        sets = [frozenset({1, 2}), frozenset({3, 4}), frozenset({5})]
        fast_pair, naive_pair = build_pair(
            make_bssf, sets, 128, 2, capacity=0, use_bulk=False
        )
        query = frozenset({1, 2, 5})
        assert_same_behavior(fast_pair, naive_pair, "search_subset", query)
        for facility, _ in (fast_pair, naive_pair):
            facility.insert(frozenset({1, 5}), OID(1, 99))
        assert_same_behavior(fast_pair, naive_pair, "search_subset", query)
        assert_same_behavior(fast_pair, naive_pair, "search_superset", query)

    def test_delete_tombstones_match(self):
        sets = [frozenset({1}), frozenset({1, 2}), frozenset({2})]
        fast_pair, naive_pair = build_pair(
            make_bssf, sets, 70, 2, capacity=0, use_bulk=True
        )
        for facility, _ in (fast_pair, naive_pair):
            facility.delete(frozenset({1, 2}), OID(1, 1))
        result = assert_same_behavior(
            fast_pair, naive_pair, "search_superset", frozenset({1})
        )
        assert OID(1, 1) not in result.candidates

    def test_multipage_slices_match(self):
        """Entry counts past one slice page (page_size 16 → 128 entries/page)."""
        sets = [frozenset({i % 11, (i * 7) % 11}) for i in range(300)]
        fast_pair, naive_pair = build_pair(
            make_bssf, sets, 70, 2, capacity=0, use_bulk=True, page_size=16
        )
        assert fast_pair[0].slice_pages == 3
        for query in (frozenset({3}), frozenset({1, 4, 9}), frozenset(range(11))):
            assert_same_behavior(fast_pair, naive_pair, "search_superset", query)
            assert_same_behavior(fast_pair, naive_pair, "search_subset", query)
            assert_same_behavior(fast_pair, naive_pair, "search_overlap", query)


class TestSSFParity:
    @settings(max_examples=30, deadline=None)
    @given(
        sets=sets_strategy,
        query=query_strategy,
        F=f_strategy,
        m=st.integers(1, 3),
        capacity=st.sampled_from([0, 3]),
        use_bulk=st.booleans(),
    )
    def test_all_modes_match_naive_and_bitvector_reference(
        self, sets, query, F, m, capacity, use_bulk
    ):
        fast_pair, naive_pair = build_pair(
            make_ssf, sets, F, m, capacity, use_bulk
        )
        scheme = SignatureScheme(F, m, seed=7)
        target_sigs = [scheme.set_signature(s) for s in sets]
        query_sig = scheme.set_signature(query)

        result = assert_same_behavior(fast_pair, naive_pair, "search_superset", query)
        if query:
            expected = [
                OID(1, i)
                for i, sig in enumerate(target_sigs)
                if scheme.is_drop_superset(sig, query_sig)
            ]
            assert result.candidates == expected

        result = assert_same_behavior(fast_pair, naive_pair, "search_subset", query)
        if query:
            expected = [
                OID(1, i)
                for i, sig in enumerate(target_sigs)
                if scheme.is_drop_subset(sig, query_sig)
            ]
            assert result.candidates == expected

        result = assert_same_behavior(fast_pair, naive_pair, "search_overlap", query)
        if query:
            expected = [
                OID(1, i)
                for i, sig in enumerate(target_sigs)
                if not sig.is_zero() and sig.intersects(query_sig)
            ]
            assert result.candidates == expected

    @settings(max_examples=15, deadline=None)
    @given(
        sets=sets_strategy,
        query=query_strategy.filter(bool),
        k=st.integers(0, 70),
        use_elements=st.integers(1, 4),
    )
    def test_smart_strategies_match_naive(self, sets, query, k, use_elements):
        fast_pair, naive_pair = build_pair(
            make_ssf, sets, 70, 2, capacity=0, use_bulk=True
        )
        assert_same_behavior(
            fast_pair, naive_pair, "search_superset", query, use_elements=use_elements
        )
        assert_same_behavior(
            fast_pair, naive_pair, "search_subset", query, slices_to_examine=k
        )

    def test_insert_invalidates_decode_cache(self):
        sets = [frozenset({1, 2}), frozenset({3})]
        fast_pair, naive_pair = build_pair(
            make_ssf, sets, 128, 2, capacity=0, use_bulk=False
        )
        query = frozenset({1, 2, 3})
        assert_same_behavior(fast_pair, naive_pair, "search_subset", query)
        for facility, _ in (fast_pair, naive_pair):
            facility.insert(frozenset({2, 3}), OID(1, 50))
        assert_same_behavior(fast_pair, naive_pair, "search_subset", query)
        assert_same_behavior(fast_pair, naive_pair, "search_overlap", query)
