"""Tests for posting-list overflow chains (the skew-proof NIX variant)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.nix import NestedIndex
from repro.access.nix.btree import BPlusTree
from repro.access.nix.keycodec import encode_key
from repro.access.nix.node import OverflowNode
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


def make_tree(page_size=512, chains=True):
    manager = StorageManager(page_size=page_size, pool_capacity=0)
    return BPlusTree(manager.create_file("t"), overflow_chains=chains), manager


HOT = encode_key("hot")


class TestOverflowNode:
    def test_capacity(self):
        assert OverflowNode.capacity(4096) == 511
        assert OverflowNode.capacity(512) == 63

    def test_roundtrip(self):
        from repro.storage.page import Page

        node = OverflowNode(oids=[1, 2, 3], next_page=7)
        page = Page(128)
        node.serialize_into(page)
        again = OverflowNode.deserialize(page)
        assert again.oids == [1, 2, 3]
        assert again.next_page == 7

    def test_no_next(self):
        from repro.storage.page import Page

        page = Page(128)
        OverflowNode(oids=[9]).serialize_into(page)
        assert OverflowNode.deserialize(page).next_page is None


class TestChainedInserts:
    def test_long_posting_list_survives(self):
        tree, _ = make_tree()
        for serial in range(500):  # far beyond one 512-byte page
            tree.insert(HOT, OID(1, serial))
        tree.verify()
        assert tree.lookup(HOT) == [OID(1, s) for s in range(500)]

    def test_without_chains_raises(self):
        tree, _ = make_tree(chains=False)
        with pytest.raises(AccessFacilityError, match="overflow_chains"):
            for serial in range(500):
                tree.insert(HOT, OID(1, serial))

    def test_duplicate_in_chain_detected(self):
        tree, _ = make_tree()
        for serial in range(200):
            tree.insert(HOT, OID(1, serial))
        # OID(1, 199) is the most recent spill candidate; OID(1, 150) is
        # somewhere in the chain — both must be rejected as duplicates
        assert not tree.insert(HOT, OID(1, 150))
        assert not tree.insert(HOT, OID(1, 199))
        tree.verify()
        assert len(tree.lookup(HOT)) == 200

    def test_census_counts_overflow_pages(self):
        tree, _ = make_tree()
        for serial in range(300):
            tree.insert(HOT, OID(1, serial))
        census = tree.page_census()
        assert census["overflow"] >= 1
        assert census["leaf"] >= 1

    def test_other_keys_unaffected(self):
        tree, _ = make_tree()
        for serial in range(300):
            tree.insert(HOT, OID(1, serial))
        tree.insert(encode_key("cold"), OID(2, 1))
        assert tree.lookup(encode_key("cold")) == [OID(2, 1)]
        tree.verify()


class TestChainedDeletes:
    def _loaded_tree(self, count=300):
        tree, _ = make_tree()
        for serial in range(count):
            tree.insert(HOT, OID(1, serial))
        return tree

    def test_delete_from_inline(self):
        tree = self._loaded_tree()
        inline_smallest = OID(1, 0)
        assert tree.delete(HOT, inline_smallest)
        assert inline_smallest not in tree.lookup(HOT)
        tree.verify()

    def test_delete_from_chain(self):
        tree = self._loaded_tree()
        chained = OID(1, 299)
        assert tree.delete(HOT, chained)
        assert chained not in tree.lookup(HOT)
        assert len(tree.lookup(HOT)) == 299
        tree.verify()

    def test_delete_everything_removes_entry(self):
        tree = self._loaded_tree(count=150)
        for serial in range(150):
            assert tree.delete(HOT, OID(1, serial))
        assert tree.lookup(HOT) == []
        assert not tree.contains_key(HOT)
        tree.verify()

    def test_delete_missing_returns_false(self):
        tree = self._loaded_tree(count=100)
        assert not tree.delete(HOT, OID(1, 5000))


class TestBulkLoadWithChains:
    def test_long_lists_chain_at_build(self):
        tree, _ = make_tree()
        entries = [
            (encode_key("hot"), list(range(400))),
            (encode_key("warm"), list(range(1000, 1030))),
            (encode_key("zcold"), [5000]),
        ]
        tree.bulk_load(entries)
        tree.verify()
        assert len(tree.lookup(encode_key("hot"))) == 400
        assert len(tree.lookup(encode_key("warm"))) == 30
        assert tree.lookup(encode_key("zcold")) == [OID.from_int(5000)]
        assert tree.page_census()["overflow"] >= 400 // OverflowNode.capacity(512)


class TestNestedIndexIntegration:
    def test_skewed_domain_buildable_with_chains(self):
        manager = StorageManager(page_size=512, pool_capacity=0)
        nix = NestedIndex(manager, overflow_chains=True)
        rng = random.Random(1)
        for i in range(400):
            # everything contains element 0: worst-case hot key
            elements = frozenset({0} | set(rng.sample(range(1, 60), 3)))
            nix.insert(elements, OID(1, i))
        nix.verify()
        assert len(nix.lookup_element(0)) == 400
        assert "overflow" in nix.storage_pages()

    def test_snapshot_roundtrip_preserves_chains(self, tmp_path):
        from repro.objects.database import Database
        from repro.objects.schema import ClassSchema
        from repro.persistence.snapshot import load_database, save_database

        db = Database()
        db.define_class(ClassSchema.build("T", tags="set"))
        db.create_nested_index("T", "tags", overflow_chains=True)
        oids = [db.insert("T", {"tags": {0, i + 1}}) for i in range(600)]
        path = tmp_path / "chained.sigdb"
        save_database(db, path)
        loaded = load_database(path)
        restored = loaded.index("T", "tags", "nix")
        assert restored.overflow_chains
        assert len(restored.lookup_element(0)) == 600
        restored.verify()
        loaded.delete(oids[0])
        assert len(restored.lookup_element(0)) == 599

    def test_vacuum_preserves_chain_mode(self, student_db):
        from tests.conftest import populate_students

        student_db.create_nested_index("Student", "hobbies", overflow_chains=True)
        populate_students(student_db, count=30)
        fresh = student_db.vacuum_index("Student", "hobbies", "nix")
        assert fresh.overflow_chains


@settings(max_examples=15, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.booleans(), st.integers(0, 400)), max_size=250
    )
)
def test_property_chained_tree_matches_set_model(operations):
    """Hammer one hot key with inserts/deletes; tree must track a set."""
    tree, _ = make_tree(page_size=256)
    model = set()
    for is_insert, serial in operations:
        oid = OID(1, serial)
        if is_insert:
            tree.insert(HOT, oid)
            model.add(oid)
        else:
            tree.delete(HOT, oid)
            model.discard(oid)
    assert tree.lookup(HOT) == sorted(model)
    tree.verify()
