"""Tests for the facility base interface."""

import pytest

from repro.access.base import SearchResult, SetAccessFacility
from repro.objects.oid import OID


class _Stub(SetAccessFacility):
    name = "stub"

    def insert(self, elements, oid):  # pragma: no cover - trivial
        pass

    def delete(self, elements, oid):  # pragma: no cover - trivial
        pass

    def search_superset(self, query):  # pragma: no cover - trivial
        return SearchResult([], exact=True, facility=self.name)

    def search_subset(self, query):  # pragma: no cover - trivial
        return SearchResult([], exact=True, facility=self.name)

    def storage_pages(self):
        return {"a": 2, "b": 3}


class TestSearchResult:
    def test_len_and_repr(self):
        result = SearchResult([OID(1, 1)], exact=False, facility="ssf")
        assert len(result) == 1
        assert "candidate" in repr(result)
        exact = SearchResult([], exact=True, facility="nix")
        assert "exact" in repr(exact)

    def test_detail_defaults_to_empty_dict(self):
        assert SearchResult([], True, "x").detail == {}


class TestBaseFacility:
    def test_total_storage_pages(self):
        assert _Stub().total_storage_pages() == 5

    def test_default_overlap_unsupported(self):
        with pytest.raises(NotImplementedError):
            _Stub().search_overlap(frozenset({1}))

    def test_default_verify_is_noop(self):
        _Stub().verify()
