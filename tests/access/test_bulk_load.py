"""Tests for bulk index construction (SSF, BSSF, NIX, B+-tree)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.bssf import BitSlicedSignatureFile
from repro.access.nix import NestedIndex
from repro.access.nix.btree import BPlusTree
from repro.access.nix.keycodec import encode_key
from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SignatureScheme
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


def make_pairs(count: int, seed: int = 0, domain: int = 60, size: int = 5):
    rng = random.Random(seed)
    return [
        (frozenset(rng.sample(range(domain), size)), OID(1, i))
        for i in range(count)
    ]


def incremental_twin(facility_cls, pairs, **kwargs):
    manager = StorageManager(page_size=4096, pool_capacity=0)
    if facility_cls is NestedIndex:
        facility = NestedIndex(manager, file_prefix="twin")
    else:
        scheme = SignatureScheme(64, 2, seed=1)
        facility = facility_cls(manager, scheme, file_prefix="twin", **kwargs)
    for elements, oid in pairs:
        facility.insert(elements, oid)
    return facility


class TestSSFBulkLoad:
    def _bulk(self, pairs):
        manager = StorageManager(page_size=4096, pool_capacity=0)
        ssf = SequentialSignatureFile(manager, SignatureScheme(64, 2, seed=1))
        ssf.bulk_load(pairs)
        return ssf, manager

    def test_matches_incremental(self):
        pairs = make_pairs(150)
        bulk, _ = self._bulk(pairs)
        twin = incremental_twin(SequentialSignatureFile, pairs)
        query = frozenset(list(pairs[3][0])[:2])
        assert bulk.search_superset(query).candidates == twin.search_superset(
            query
        ).candidates
        assert bulk.entry_count == 150
        bulk.verify()

    def test_page_writes_scale_with_pages_not_entries(self):
        pairs = make_pairs(600)
        bulk, manager = self._bulk(pairs)
        snap = manager.snapshot()
        sig_writes = snap.for_file("ssf:signatures").logical_writes
        # 600 entries at 512 sigs/page (F=64) = 2 pages; appends+writes ≈ 4
        assert sig_writes <= 2 * bulk.signature_file.num_pages
        oid_writes = snap.for_file("ssf:oids").logical_writes
        assert oid_writes <= 2 * bulk.oid_file.num_pages

    def test_requires_empty(self):
        ssf, _ = self._bulk(make_pairs(3))
        with pytest.raises(AccessFacilityError):
            ssf.bulk_load(make_pairs(3))

    def test_empty_input(self):
        manager = StorageManager(page_size=4096, pool_capacity=0)
        ssf = SequentialSignatureFile(manager, SignatureScheme(64, 2, seed=1))
        assert ssf.bulk_load([]) == 0
        assert ssf.entry_count == 0


class TestBSSFBulkLoad:
    def _bulk(self, pairs):
        manager = StorageManager(page_size=4096, pool_capacity=0)
        bssf = BitSlicedSignatureFile(manager, SignatureScheme(64, 2, seed=1))
        bssf.bulk_load(pairs)
        return bssf, manager

    def test_matches_incremental(self):
        pairs = make_pairs(200, seed=2)
        bulk, _ = self._bulk(pairs)
        twin = incremental_twin(BitSlicedSignatureFile, pairs)
        for dq_query in (frozenset(list(pairs[0][0])[:2]), frozenset(range(12))):
            assert (
                bulk.search_superset(dq_query).candidates
                == twin.search_superset(dq_query).candidates
            )
            assert (
                bulk.search_subset(dq_query).candidates
                == twin.search_subset(dq_query).candidates
            )
        bulk.verify()

    def test_slice_geometry(self):
        bulk, _ = self._bulk(make_pairs(100))
        assert bulk.slice_pages == 1
        assert bulk.storage_pages()["slices"] == 64

    def test_requires_empty(self):
        bulk, _ = self._bulk(make_pairs(2))
        with pytest.raises(AccessFacilityError):
            bulk.bulk_load(make_pairs(2))

    def test_empty_input(self):
        manager = StorageManager(page_size=4096, pool_capacity=0)
        bssf = BitSlicedSignatureFile(manager, SignatureScheme(64, 2, seed=1))
        assert bssf.bulk_load([]) == 0


class TestBTreeBulkLoad:
    def _bulk_tree(self, entries, page_size=256):
        manager = StorageManager(page_size=page_size, pool_capacity=0)
        tree = BPlusTree(manager.create_file("bulk"))
        tree.bulk_load(entries)
        return tree

    def test_single_leaf(self):
        tree = self._bulk_tree([(encode_key(1), [11]), (encode_key(2), [22])])
        assert tree.height == 0
        assert tree.lookup(encode_key(1)) == [OID.from_int(11)]
        tree.verify()

    def test_multi_level(self):
        entries = [(encode_key(i), [i]) for i in range(500)]
        tree = self._bulk_tree(entries, page_size=128)
        assert tree.height >= 2
        tree.verify()
        for i in (0, 123, 499):
            assert tree.lookup(encode_key(i)) == [OID.from_int(i)]
        assert tree.key_count() == 500

    def test_leaf_chain_ordered(self):
        entries = [(encode_key(i), [i]) for i in range(300)]
        tree = self._bulk_tree(entries, page_size=128)
        keys = [key for key, _ in tree.iterate_entries()]
        assert keys == [encode_key(i) for i in range(300)]

    def test_mutable_after_bulk_load(self):
        entries = [(encode_key(i), [i]) for i in range(200)]
        tree = self._bulk_tree(entries, page_size=128)
        tree.insert(encode_key(1000), OID(1, 5))
        tree.delete(encode_key(0), OID.from_int(0))
        tree.verify()
        assert tree.lookup(encode_key(1000)) == [OID(1, 5)]
        assert tree.lookup(encode_key(0)) == []

    def test_rejects_unsorted(self):
        with pytest.raises(AccessFacilityError):
            self._bulk_tree([(encode_key(2), [1]), (encode_key(1), [1])])

    def test_rejects_duplicates(self):
        with pytest.raises(AccessFacilityError):
            self._bulk_tree([(encode_key(1), [1]), (encode_key(1), [2])])

    def test_rejects_nonempty_tree(self):
        manager = StorageManager(page_size=256, pool_capacity=0)
        tree = BPlusTree(manager.create_file("t"))
        tree.insert(encode_key(1), OID(1, 1))
        with pytest.raises(AccessFacilityError):
            tree.bulk_load([(encode_key(2), [2])])

    def test_oversized_posting_rejected(self):
        with pytest.raises(AccessFacilityError):
            self._bulk_tree([(encode_key(1), list(range(100)))], page_size=256)

    def test_empty_input(self):
        tree = self._bulk_tree([])
        assert tree.key_count() == 0


class TestNIXBulkLoad:
    def test_matches_incremental(self):
        pairs = make_pairs(180, seed=5)
        manager = StorageManager(page_size=512, pool_capacity=0)
        bulk = NestedIndex(manager, file_prefix="bulk")
        bulk.bulk_load(pairs)
        twin = incremental_twin(NestedIndex, pairs)
        query = frozenset(list(pairs[7][0])[:2])
        assert (
            bulk.search_superset(query).candidates
            == twin.search_superset(query).candidates
        )
        assert (
            bulk.search_subset(frozenset(range(15))).candidates
            == twin.search_subset(frozenset(range(15))).candidates
        )
        bulk.verify()

    def test_empty_sets_bucketed(self):
        manager = StorageManager(page_size=512, pool_capacity=0)
        nix = NestedIndex(manager, file_prefix="bulk")
        nix.bulk_load([(frozenset(), OID(1, 0)), (frozenset({3}), OID(1, 1))])
        assert OID(1, 0) in nix.search_subset(frozenset({9})).candidates

    def test_database_backfill_uses_bulk(self, student_db):
        from tests.conftest import populate_students

        populate_students(student_db, count=60)
        before = student_db.io_snapshot()
        nix = student_db.create_nested_index("Student", "hobbies")
        delta = student_db.io_snapshot() - before
        tree_writes = sum(
            counts.logical_writes
            for name, counts in delta.per_file.items()
            if name.endswith(":btree")
        )
        # bottom-up build: a handful of node writes, nowhere near
        # 60 objects × 3 elements × rc page accesses
        assert tree_writes < 30
        nix.verify()


@settings(max_examples=15, deadline=None)
@given(
    sets=st.lists(
        st.frozensets(st.integers(0, 25), max_size=5), min_size=1, max_size=40
    ),
)
def test_property_bulk_equals_incremental_everywhere(sets):
    pairs = [(elements, OID(1, i)) for i, elements in enumerate(sets)]
    manager = StorageManager(page_size=512, pool_capacity=0)
    bulk = NestedIndex(manager, file_prefix="bulk")
    bulk.bulk_load(pairs)
    twin = incremental_twin(NestedIndex, pairs)
    assert list(bulk.tree.iterate_entries()) == list(twin.tree.iterate_entries())
    bulk.verify()
