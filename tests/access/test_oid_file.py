"""Tests for the shared OID file."""

import pytest

from repro.access.oid_file import OIDFile
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


def make_oid_file(page_size: int = 4096):
    manager = StorageManager(page_size=page_size, pool_capacity=0)
    return OIDFile(manager.create_file("oids")), manager


class TestAppendGet:
    def test_sequential_indices(self):
        oid_file, _ = make_oid_file()
        assert oid_file.append(OID(1, 0)) == 0
        assert oid_file.append(OID(1, 1)) == 1
        assert oid_file.entry_count == 2

    def test_get_roundtrip(self):
        oid_file, _ = make_oid_file()
        oid_file.append(OID(3, 99))
        assert oid_file.get(0) == OID(3, 99)

    def test_entries_per_page_matches_table2(self):
        oid_file, _ = make_oid_file()
        assert oid_file.entries_per_page == 512  # O_p = P / oid

    def test_page_boundary(self):
        oid_file, _ = make_oid_file(page_size=32)  # 4 entries/page
        for i in range(9):
            oid_file.append(OID(1, i))
        assert oid_file.num_pages == 3
        assert oid_file.get(8) == OID(1, 8)

    def test_index_bounds_checked(self):
        oid_file, _ = make_oid_file()
        with pytest.raises(AccessFacilityError):
            oid_file.get(0)
        oid_file.append(OID(1, 0))
        with pytest.raises(AccessFacilityError):
            oid_file.get(1)
        with pytest.raises(AccessFacilityError):
            oid_file.get(-1)


class TestGetMany:
    def test_preserves_request_order(self):
        oid_file, _ = make_oid_file()
        for i in range(10):
            oid_file.append(OID(1, i))
        result = oid_file.get_many([5, 1, 7])
        assert result == [OID(1, 5), OID(1, 1), OID(1, 7)]

    def test_one_read_per_touched_page(self):
        oid_file, manager = make_oid_file(page_size=32)  # 4 entries/page
        for i in range(12):
            oid_file.append(OID(1, i))
        before = manager.snapshot()
        oid_file.get_many([0, 1, 2, 9])  # pages 0 and 2
        delta = manager.snapshot() - before
        assert delta.for_file("oids").logical_reads == 2

    def test_duplicates_allowed(self):
        oid_file, _ = make_oid_file()
        oid_file.append(OID(1, 0))
        assert oid_file.get_many([0, 0]) == [OID(1, 0), OID(1, 0)]

    def test_empty_request(self):
        oid_file, _ = make_oid_file()
        assert oid_file.get_many([]) == []


class TestDelete:
    def test_tombstone_hides_entry(self):
        oid_file, _ = make_oid_file()
        oid_file.append(OID(1, 0))
        oid_file.append(OID(1, 1))
        index = oid_file.delete(OID(1, 0))
        assert index == 0
        assert oid_file.get(0) is None
        assert not oid_file.is_live(0)
        assert oid_file.get(1) == OID(1, 1)

    def test_delete_scans_sequentially(self):
        """Deleting the last entry must touch every page (the model's
        SC_OID/2 expected cost comes from this scan)."""
        oid_file, manager = make_oid_file(page_size=32)
        for i in range(12):  # 3 pages
            oid_file.append(OID(1, i))
        before = manager.snapshot()
        oid_file.delete(OID(1, 11))
        delta = manager.snapshot() - before
        assert delta.for_file("oids").logical_reads == 3
        assert delta.for_file("oids").logical_writes == 1

    def test_delete_first_entry_touches_one_page(self):
        oid_file, manager = make_oid_file(page_size=32)
        for i in range(12):
            oid_file.append(OID(1, i))
        before = manager.snapshot()
        oid_file.delete(OID(1, 0))
        assert (manager.snapshot() - before).for_file("oids").logical_reads == 1

    def test_delete_missing_raises(self):
        oid_file, _ = make_oid_file()
        oid_file.append(OID(1, 0))
        with pytest.raises(AccessFacilityError):
            oid_file.delete(OID(1, 99))

    def test_entry_count_includes_tombstones(self):
        oid_file, _ = make_oid_file()
        oid_file.append(OID(1, 0))
        oid_file.delete(OID(1, 0))
        assert oid_file.entry_count == 1


class TestScanLive:
    def test_skips_tombstones(self):
        oid_file, _ = make_oid_file()
        for i in range(5):
            oid_file.append(OID(1, i))
        oid_file.delete(OID(1, 2))
        live = list(oid_file.scan_live())
        assert [index for index, _ in live] == [0, 1, 3, 4]
        assert [oid.serial for _, oid in live] == [0, 1, 3, 4]
