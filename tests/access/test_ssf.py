"""Tests for the Sequential Signature File."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SignatureScheme
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


def make_ssf(F=64, m=2, page_size=4096, seed=0):
    manager = StorageManager(page_size=page_size, pool_capacity=0)
    scheme = SignatureScheme(F, m, seed=seed)
    return SequentialSignatureFile(manager, scheme), manager


def load(ssf, sets):
    oids = []
    for i, elements in enumerate(sets):
        oid = OID(1, i)
        ssf.insert(frozenset(elements), oid)
        oids.append(oid)
    return oids


RNG_SETS = [
    frozenset(random.Random(i).sample(range(40), 4)) for i in range(60)
]


class TestInsert:
    def test_entry_count_tracks_inserts(self):
        ssf, _ = make_ssf()
        load(ssf, RNG_SETS[:10])
        assert ssf.entry_count == 10

    def test_signature_pages_grow_by_capacity(self):
        ssf, _ = make_ssf(F=500)
        load(ssf, [{i} for i in range(66)])  # capacity 65/page
        assert ssf.signature_file.num_pages == 2
        ssf.verify()

    def test_insert_touches_two_files(self):
        ssf, manager = make_ssf()
        load(ssf, RNG_SETS[:5])
        before = manager.snapshot()
        ssf.insert(frozenset({1, 2}), OID(1, 99))
        delta = manager.snapshot() - before
        assert delta.for_file("ssf:oids").logical_total >= 1
        assert delta.for_file("ssf:signatures").logical_total >= 1


class TestSupersetSearch:
    def test_no_false_dismissals(self):
        ssf, _ = make_ssf()
        oids = load(ssf, RNG_SETS)
        query = frozenset(list(RNG_SETS[7])[:2])
        expected = {
            oid for oid, s in zip(oids, RNG_SETS) if s >= query
        }
        result = ssf.search_superset(query)
        assert expected <= set(result.candidates)
        assert not result.exact

    def test_scan_reads_whole_signature_file(self):
        ssf, manager = make_ssf(F=500)
        load(ssf, [{i} for i in range(200)])  # 4 signature pages
        before = manager.snapshot()
        ssf.search_superset(frozenset({5}))
        delta = manager.snapshot() - before
        assert delta.for_file("ssf:signatures").logical_reads == 4

    def test_empty_query_returns_everything(self):
        ssf, _ = make_ssf()
        oids = load(ssf, RNG_SETS[:10])
        result = ssf.search_superset(frozenset())
        assert set(result.candidates) == set(oids)
        assert result.exact

    def test_partial_query_weakens_filter(self):
        ssf, _ = make_ssf(F=256, m=3)
        load(ssf, RNG_SETS)
        query = frozenset(RNG_SETS[3])
        full = set(ssf.search_superset(query).candidates)
        partial = set(ssf.search_superset(query, use_elements=1).candidates)
        assert full <= partial

    def test_partial_use_elements_validated(self):
        ssf, _ = make_ssf()
        load(ssf, RNG_SETS[:3])
        with pytest.raises(AccessFacilityError):
            ssf.search_superset(frozenset({1, 2}), use_elements=0)


class TestSubsetSearch:
    def test_no_false_dismissals(self):
        ssf, _ = make_ssf()
        oids = load(ssf, RNG_SETS)
        query = frozenset(range(12))
        expected = {oid for oid, s in zip(oids, RNG_SETS) if s <= query}
        result = ssf.search_subset(query)
        assert expected <= set(result.candidates)

    def test_empty_target_always_drops(self):
        ssf, _ = make_ssf()
        oid = OID(1, 0)
        ssf.insert(frozenset(), oid)
        result = ssf.search_subset(frozenset({1}))
        assert oid in result.candidates

    def test_zero_slice_budget_drops_everything(self):
        ssf, _ = make_ssf()
        oids = load(ssf, RNG_SETS[:8])
        result = ssf.search_subset(frozenset({1}), slices_to_examine=0)
        assert set(result.candidates) == set(oids)

    def test_negative_budget_rejected(self):
        ssf, _ = make_ssf()
        with pytest.raises(AccessFacilityError):
            ssf.search_subset(frozenset({1}), slices_to_examine=-1)


class TestOverlapSearch:
    def test_no_false_dismissals(self):
        ssf, _ = make_ssf()
        oids = load(ssf, RNG_SETS)
        query = frozenset({3, 17})
        expected = {oid for oid, s in zip(oids, RNG_SETS) if s & query}
        result = ssf.search_overlap(query)
        assert expected <= set(result.candidates)

    def test_empty_query_matches_nothing(self):
        ssf, _ = make_ssf()
        load(ssf, RNG_SETS[:5])
        assert ssf.search_overlap(frozenset()).candidates == []


class TestDelete:
    def test_deleted_entries_filtered_from_results(self):
        ssf, _ = make_ssf()
        oids = load(ssf, [{1, 2}, {1, 3}])
        ssf.delete(frozenset({1, 2}), oids[0])
        result = ssf.search_superset(frozenset({1}))
        assert oids[0] not in result.candidates
        assert oids[1] in result.candidates

    def test_drop_counts_include_stale_signature(self):
        """The stale signature still drops; the tombstone filters it."""
        ssf, _ = make_ssf()
        oids = load(ssf, [{1, 2}])
        ssf.delete(frozenset({1, 2}), oids[0])
        result = ssf.search_superset(frozenset({1, 2}))
        assert result.detail["drops"] >= 1
        assert result.detail["live_drops"] == 0


class TestStorage:
    def test_storage_pages_breakdown(self):
        ssf, _ = make_ssf(F=500)
        load(ssf, [{i} for i in range(100)])
        pages = ssf.storage_pages()
        assert pages["signature"] == 2
        assert pages["oid"] == 1
        assert ssf.total_storage_pages() == 3

    def test_verify_detects_nothing_on_fresh_file(self):
        ssf, _ = make_ssf()
        ssf.verify()
        load(ssf, RNG_SETS[:5])
        ssf.verify()


@settings(max_examples=25, deadline=None)
@given(
    sets=st.lists(
        st.frozensets(st.integers(0, 30), max_size=6), min_size=1, max_size=25
    ),
    query=st.frozensets(st.integers(0, 30), max_size=6),
)
def test_property_search_equals_brute_force_after_resolution(sets, query):
    """Candidates, filtered by the exact predicate, must equal brute force."""
    ssf, _ = make_ssf(F=128, m=3)
    oids = load(ssf, sets)
    by_oid = dict(zip(oids, sets))

    if query:
        sup = {
            oid for oid in ssf.search_superset(query).candidates
            if by_oid[oid] >= query
        }
        assert sup == {oid for oid, s in by_oid.items() if s >= query}

    sub = {
        oid for oid in ssf.search_subset(query).candidates
        if by_oid[oid] <= query
    }
    assert sub == {oid for oid, s in by_oid.items() if s <= query}
