"""Tests for the paged B+-tree (keys → OID lists)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.nix.btree import BPlusTree
from repro.access.nix.keycodec import encode_key
from repro.errors import AccessFacilityError
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


def make_tree(page_size=256):
    """Tiny pages force frequent splits, exercising the structure hard."""
    manager = StorageManager(page_size=page_size, pool_capacity=0)
    return BPlusTree(manager.create_file("btree")), manager


def k(value) -> bytes:
    return encode_key(value)


class TestBasics:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert tree.lookup(k("missing")) == []
        assert tree.height == 0
        assert tree.key_count() == 0
        tree.verify()

    def test_single_insert_lookup(self):
        tree, _ = make_tree()
        tree.insert(k("Baseball"), OID(1, 5))
        assert tree.lookup(k("Baseball")) == [OID(1, 5)]
        assert tree.contains_key(k("Baseball"))
        assert not tree.contains_key(k("Fishing"))

    def test_posting_list_accumulates_sorted(self):
        tree, _ = make_tree()
        for serial in (5, 1, 3):
            tree.insert(k("x"), OID(1, serial))
        assert tree.lookup(k("x")) == [OID(1, 1), OID(1, 3), OID(1, 5)]

    def test_duplicate_insert_ignored(self):
        tree, _ = make_tree()
        assert tree.insert(k("x"), OID(1, 1))
        assert not tree.insert(k("x"), OID(1, 1))
        assert tree.lookup(k("x")) == [OID(1, 1)]

    def test_lookup_cost_is_height_plus_one(self):
        tree, manager = make_tree()
        for i in range(200):
            tree.insert(k(i), OID(1, i))
        before = manager.snapshot()
        tree.lookup(k(77))
        delta = manager.snapshot() - before
        assert delta.for_file("btree").logical_reads == tree.height + 1


class TestSplits:
    def test_leaf_split_grows_height(self):
        tree, _ = make_tree()
        i = 0
        while tree.height == 0:
            tree.insert(k(i), OID(1, i))
            i += 1
            assert i < 1000, "tree never split"
        tree.verify()
        for j in range(i):
            assert tree.lookup(k(j)) == [OID(1, j)]

    def test_multi_level_growth(self):
        tree, _ = make_tree(page_size=128)
        n = 600
        for i in range(n):
            tree.insert(k(i), OID(1, i))
        assert tree.height >= 2
        tree.verify()
        for i in range(0, n, 17):
            assert tree.lookup(k(i)) == [OID(1, i)]

    def test_random_insert_order(self):
        tree, _ = make_tree(page_size=128)
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for i in keys:
            tree.insert(k(i), OID(1, i))
        tree.verify()
        assert tree.key_count() == 500

    def test_root_page_number_stable_across_splits(self):
        tree, _ = make_tree()
        root_before = tree.root_page
        for i in range(300):
            tree.insert(k(i), OID(1, i))
        assert tree.root_page == root_before

    def test_wide_posting_lists_split_leaves(self):
        tree, _ = make_tree(page_size=256)
        for key_index in range(20):
            for serial in range(10):
                tree.insert(k(key_index), OID(1, key_index * 100 + serial))
        tree.verify()
        for key_index in range(20):
            assert len(tree.lookup(k(key_index))) == 10

    def test_posting_list_page_overflow_rejected(self):
        tree, _ = make_tree(page_size=256)
        with pytest.raises(AccessFacilityError):
            for serial in range(100):  # 256-byte page caps the list well below
                tree.insert(k("hot"), OID(1, serial))


class TestDelete:
    def test_delete_oid_from_list(self):
        tree, _ = make_tree()
        tree.insert(k("x"), OID(1, 1))
        tree.insert(k("x"), OID(1, 2))
        assert tree.delete(k("x"), OID(1, 1))
        assert tree.lookup(k("x")) == [OID(1, 2)]

    def test_delete_last_oid_removes_entry(self):
        tree, _ = make_tree()
        tree.insert(k("x"), OID(1, 1))
        tree.delete(k("x"), OID(1, 1))
        assert not tree.contains_key(k("x"))
        tree.verify()

    def test_delete_missing_returns_false(self):
        tree, _ = make_tree()
        tree.insert(k("x"), OID(1, 1))
        assert not tree.delete(k("x"), OID(1, 9))
        assert not tree.delete(k("y"), OID(1, 1))

    def test_delete_in_deep_tree(self):
        tree, _ = make_tree(page_size=128)
        for i in range(400):
            tree.insert(k(i), OID(1, i))
        for i in range(0, 400, 2):
            assert tree.delete(k(i), OID(1, i))
        tree.verify()
        assert tree.key_count() == 200
        assert tree.lookup(k(0)) == []
        assert tree.lookup(k(1)) == [OID(1, 1)]


class TestScans:
    def test_iterate_entries_in_key_order(self):
        tree, _ = make_tree()
        values = [30, 10, 20, 5, 25]
        for v in values:
            tree.insert(k(v), OID(1, v))
        keys = [key for key, _ in tree.iterate_entries()]
        assert keys == sorted(k(v) for v in values)

    def test_range_lookup(self):
        tree, _ = make_tree(page_size=128)
        for i in range(100):
            tree.insert(k(i), OID(1, i))
        window = list(tree.range_lookup(k(10), k(20)))
        assert [key for key, _ in window] == [k(i) for i in range(10, 20)]

    def test_range_lookup_open_ended(self):
        tree, _ = make_tree()
        for i in range(10):
            tree.insert(k(i), OID(1, i))
        assert len(list(tree.range_lookup(None, None))) == 10
        assert len(list(tree.range_lookup(k(5), None))) == 5
        assert len(list(tree.range_lookup(None, k(5)))) == 5


class TestPageAccounting:
    def test_leaf_and_nonleaf_pages(self):
        tree, _ = make_tree(page_size=128)
        for i in range(500):
            tree.insert(k(i), OID(1, i))
        leaves, internals = tree.leaf_and_nonleaf_pages()
        assert leaves >= 2
        assert internals >= 1
        assert leaves + internals <= tree.num_pages


@settings(max_examples=20, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(0, 30),
            st.integers(0, 8),
        ),
        max_size=120,
    )
)
def test_property_tree_matches_dict_model(operations):
    """The tree must behave exactly like a dict of sorted OID sets."""
    tree, _ = make_tree(page_size=128)
    model = {}
    for op, key_val, serial in operations:
        key, oid = k(key_val), OID(1, serial)
        if op == "insert":
            tree.insert(key, oid)
            model.setdefault(key, set()).add(oid)
        else:
            tree.delete(key, oid)
            if key in model:
                model[key].discard(oid)
                if not model[key]:
                    del model[key]
    tree.verify()
    for key, oids in model.items():
        assert tree.lookup(key) == sorted(oids)
    assert tree.key_count() == len(model)
