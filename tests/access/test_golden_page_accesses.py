"""Golden regression: logical page-access counts are frozen.

The constants below were captured from the pre-kernel (seed) implementation
on a fixed-seed workload. The paper's evaluation metric is logical page
accesses, so any implementation change — kernels, decode caches, buffer
pools — must reproduce these numbers exactly, for an uncached pool
(capacity 0, the paper's cost model) and a cached one (capacity 64), on a
cold and a warm decode cache alike. Each entry is
``[logical_reads, logical_writes, candidates, drops]`` for one search.
"""

import pytest

from repro.access.bssf import BitSlicedSignatureFile
from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SignatureScheme
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager
from repro.workloads.generator import SetWorkloadGenerator, WorkloadSpec

N = 512
F = 192
M = 2
SEED = 1234

# Captured from the seed implementation (identical for pool capacity 0 and
# 64 — logical counts are independent of buffer residency by construction).
GOLDEN = {
    "bssf:superset:dq2": [5, 0, 3, 3],
    "bssf:superset:dq5": [3, 0, 0, 0],
    "bssf:superset:dq20": [4, 0, 0, 0],
    "bssf:subset:dq2": [48, 0, 0, 0],
    "bssf:subset:dq5": [49, 0, 0, 0],
    "bssf:subset:dq20": [56, 0, 0, 0],
    "bssf:overlap:dq2": [5, 0, 304, 304],
    "bssf:overlap:dq5": [11, 0, 331, 331],
    "bssf:overlap:dq20": [37, 0, 510, 510],
    "bssf:superset_smart": [3, 0, 38, 38],
    "bssf:subset_smart": [18, 0, 140, 140],
    "ssf:superset:dq2": [4, 0, 0, 0],
    "ssf:superset:dq5": [4, 0, 0, 0],
    "ssf:superset:dq20": [4, 0, 0, 0],
    "ssf:subset:dq2": [4, 0, 0, 0],
    "ssf:subset:dq5": [4, 0, 0, 0],
    "ssf:subset:dq20": [4, 0, 0, 0],
    "ssf:overlap:dq2": [5, 0, 200, 200],
    "ssf:overlap:dq5": [5, 0, 326, 326],
    "ssf:overlap:dq20": [5, 0, 510, 510],
    "ssf:superset_smart": [5, 0, 41, 41],
    "ssf:subset_smart": [5, 0, 156, 156],
}


def build(pool_capacity, use_kernels):
    manager = StorageManager(page_size=4096, pool_capacity=pool_capacity)
    scheme = SignatureScheme(F, M, seed=SEED)
    ssf = SequentialSignatureFile(
        manager, scheme, file_prefix="ssf", use_kernels=use_kernels
    )
    bssf = BitSlicedSignatureFile(
        manager, scheme, file_prefix="bssf", use_kernels=use_kernels
    )
    gen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=N, domain_cardinality=208, target_cardinality=10, seed=SEED
        )
    )
    pairs = [(s, OID(1, i)) for i, s in enumerate(gen.target_sets())]
    ssf.bulk_load(pairs)
    bssf.bulk_load(list(pairs))
    qgen = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=0, domain_cardinality=208, target_cardinality=10, seed=SEED + 1
        )
    )
    return manager, ssf, bssf, qgen


def meter(manager, op):
    """Run the search twice — cold then warm decode cache — and demand
    the logical delta be identical both times before returning it."""
    runs = []
    for _ in range(2):
        before = manager.snapshot()
        result = op()
        delta = (manager.snapshot() - before).total()
        runs.append(
            [
                delta.logical_reads,
                delta.logical_writes,
                len(result.candidates),
                result.detail.get("drops"),
            ]
        )
    assert runs[0] == runs[1], "decode-cache hit changed logical accounting"
    return runs[0]


@pytest.mark.parametrize("use_kernels", [True, False], ids=["kernels", "naive"])
@pytest.mark.parametrize("pool_capacity", [0, 64], ids=["uncached", "cached"])
def test_logical_page_accesses_match_golden(pool_capacity, use_kernels):
    manager, ssf, bssf, qgen = build(pool_capacity, use_kernels)
    observed = {}
    for label, facility in (("ssf", ssf), ("bssf", bssf)):
        for mode in ("superset", "subset", "overlap"):
            for dq in (2, 5, 20):
                query = qgen.random_query_set(dq)
                search = getattr(facility, f"search_{mode}")
                observed[f"{label}:{mode}:dq{dq}"] = meter(
                    manager, lambda: search(query)
                )
        observed[f"{label}:superset_smart"] = meter(
            manager,
            lambda q=qgen.random_query_set(5): facility.search_superset(
                q, use_elements=1
            ),
        )
        observed[f"{label}:subset_smart"] = meter(
            manager,
            lambda q=qgen.random_query_set(40): facility.search_subset(
                q, slices_to_examine=17
            ),
        )
    assert observed == GOLDEN
