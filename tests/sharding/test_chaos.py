"""Chaos drills: a live TCP shard fleet with a shard killed mid-flight.

The acceptance bar from the sharding work:

* healthy fleet — merged rows bit-identical to the unsharded answer, and
  the aggregated object-file page counts equal too;
* one shard killed — strict mode raises a typed
  ``ShardUnavailableError`` naming the lost shard; degraded mode returns
  ``partial=True`` answers that are an exact *subset* of the complete
  ones; nothing crashes, nothing hangs, and every sub-request stays
  inside the deadline budget.
"""

from __future__ import annotations

import contextlib
import time

import pytest

from repro.errors import ShardUnavailableError
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.server.net import TcpQueryServer
from repro.serving import connect
from repro.sharding import ShardRouter, partition_database
from repro.storage.faults import RetryPolicy
from repro.wire import encode_error, decode_error
from tests.conftest import populate_students

QUERIES = [
    'select Student where hobbies has-subset ("Chess")',
    'select Student where hobbies overlaps ("Golf", "Tennis")',
]

FAST_RETRY = RetryPolicy(
    max_attempts=2, backoff_seconds=0.01, multiplier=1.0, jitter_seconds=0.0
)
FAST_CLIENT_RETRY = RetryPolicy(
    max_attempts=2, backoff_seconds=0.01, multiplier=1.0, jitter_seconds=0.0
)


def _build_db(count: int = 90) -> Database:
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index("Student", "hobbies", 128, 2)
    populate_students(db, count=count)
    return db


@pytest.fixture()
def fleet():
    """Golden db, three TCP shard servers, and their connect spec."""
    db = _build_db()
    shards = partition_database(db, 3)
    with contextlib.ExitStack() as stack:
        servers = [
            stack.enter_context(
                TcpQueryServer(
                    shard, max_workers=2, shard_info={"index": i, "count": 3}
                )
            )
            for i, shard in enumerate(shards)
        ]
        yield db, servers, ";".join(server.url for server in servers)


def _connect(spec: str, **kwargs) -> ShardRouter:
    return connect(
        spec,
        shard_retry_policy=FAST_RETRY,
        retry_policy=FAST_CLIENT_RETRY,
        connect_timeout_seconds=1.0,
        **kwargs,
    )


class TestHealthyFleet:
    def test_bit_identical_answers_and_page_counts(self, fleet):
        db, _servers, spec = fleet
        executor = QueryExecutor(db)
        with _connect(spec) as router:
            for text in QUERIES:
                merged = router.execute(text)
                golden = executor.execute_text(text)
                assert merged.oids() == golden.oids()
                assert not merged.partial
                assert merged.statistics.candidates == golden.statistics.candidates
                assert merged.statistics.io.for_file(
                    "objects:Student"
                ) == golden.statistics.io.for_file("objects:Student")

    def test_pong_announces_the_shard_map(self, fleet):
        _db, servers, _spec = fleet
        client = connect(servers[1].url)
        try:
            status = client.status()
            assert status["shard"] == {"index": 1, "count": 3}
        finally:
            client.close()


class TestShardKilled:
    def test_strict_mode_raises_typed_error(self, fleet):
        _db, servers, spec = fleet
        with _connect(spec, deadline_ms=5_000) as router:
            router.execute(QUERIES[0])  # warm and healthy first
            lost = servers[1]
            lost.stop(drain=False)
            started = time.monotonic()
            with pytest.raises(ShardUnavailableError) as excinfo:
                router.execute(QUERIES[0])
            assert time.monotonic() - started < 10.0  # bounded, no hang
        assert excinfo.value.missing_shards == [lost.url]
        assert excinfo.value.code == "shard-unavailable"
        # The typed error survives a wire round trip (a routed server
        # forwards it to its own clients).
        revived = decode_error(encode_error(excinfo.value))
        assert isinstance(revived, ShardUnavailableError)
        assert revived.missing_shards == [lost.url]

    def test_degraded_mode_returns_exact_subset(self, fleet):
        db, servers, spec = fleet
        executor = QueryExecutor(db)
        with _connect(
            spec, partial_results="degraded", deadline_ms=5_000
        ) as router:
            healthy = {
                text: router.execute(text).oids() for text in QUERIES
            }
            lost = servers[2]
            lost.stop(drain=False)
            for text in QUERIES:
                golden = set(
                    oid.to_int() for oid in executor.execute_text(text).oids()
                )
                assert {o.to_int() for o in healthy[text]} == golden
                degraded = router.execute(text)
                assert degraded.partial
                assert degraded.missing_shards == [lost.url]
                answered = {oid.to_int() for oid in degraded.oids()}
                # Monotone under-reporting: a subset, never an invention.
                assert answered <= golden
                assert answered  # the two surviving slices still answer

    def test_killed_shard_recovers_after_restart(self, fleet):
        db, servers, spec = fleet
        shard_db = servers[0].service.database
        with _connect(
            spec, partial_results="degraded", deadline_ms=5_000
        ) as router:
            golden = router.execute(QUERIES[0]).oids()
            host, port = servers[0].address
            servers[0].stop(drain=False)
            assert router.execute(QUERIES[0]).partial
            replacement = TcpQueryServer(
                shard_db, host=host, port=port, max_workers=2
            )
            try:
                replacement.start()
            except OSError:
                pytest.skip("shard port was reclaimed by the OS")
            try:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    merged = router.execute(QUERIES[0])
                    if not merged.partial:
                        break
                    time.sleep(0.05)
                assert not merged.partial
                assert merged.oids() == golden
            finally:
                replacement.stop(drain=False)

    def test_every_subrequest_is_deadline_bounded(self, fleet):
        _db, servers, spec = fleet
        with _connect(
            spec, partial_results="degraded", deadline_ms=800
        ) as router:
            servers[0].stop(drain=False)
            started = time.monotonic()
            merged = router.execute(QUERIES[0])
            elapsed = time.monotonic() - started
        assert merged.partial
        # Budget 800ms; allow scheduling slack but nothing unbounded.
        assert elapsed < 5.0

    def test_batches_degrade_too(self, fleet):
        db, servers, spec = fleet
        executor = QueryExecutor(db)
        with _connect(
            spec, partial_results="degraded", deadline_ms=5_000
        ) as router:
            servers[1].stop(drain=False)
            results = router.execute_many(QUERIES)
            assert len(results) == len(QUERIES)
            for text, merged in zip(QUERIES, results):
                assert merged.partial
                golden = {o.to_int() for o in executor.execute_text(text).oids()}
                assert {o.to_int() for o in merged.oids()} <= golden


class TestDeadlineOverTheWire:
    def test_expired_budget_is_rejected_with_the_stable_code(self, fleet):
        from repro.errors import DeadlineExceededError

        _db, servers, _spec = fleet
        client = connect(servers[0].url)
        try:
            with pytest.raises(DeadlineExceededError) as excinfo:
                client.execute(
                    QUERIES[0], ExecutionOptions(deadline_ms=-1.0)
                )
            assert excinfo.value.code == "deadline-exceeded"
        finally:
            client.close()

    def test_live_budget_executes_normally(self, fleet):
        db, servers, _spec = fleet
        client = connect(servers[0].url)
        try:
            result = client.execute(
                QUERIES[0], ExecutionOptions(deadline_ms=30_000)
            )
            assert result.statistics.results == len(result.rows)
        finally:
            client.close()
