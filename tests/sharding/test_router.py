"""ShardRouter robustness: retries, deadlines, breakers, hedging, merging.

Scripted in-process shard backends make every failure mode deterministic;
the real-network chaos drill lives in ``test_chaos.py``.
"""

from __future__ import annotations

import time
from concurrent.futures import Future

import pytest

from repro.errors import (
    ConfigurationError,
    ConnectionLostError,
    ParseError,
    ShardUnavailableError,
)
from repro.obs.metrics import REGISTRY
from repro.objects.oid import OID
from repro.query.executor import QueryResult, QueryStatistics
from repro.query.options import ExecutionOptions
from repro.sharding import ShardRouter, merge_results
from repro.storage.faults import RetryPolicy
from repro.storage.stats import FileIOCounts, IOSnapshot

FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.001, multiplier=1.0, jitter_seconds=0.0
)


def _result(*serials: int, candidates: int = 0, plan: str = "bssf") -> QueryResult:
    rows = [
        (OID.from_int(serial), {"name": f"s{serial}"}) for serial in serials
    ]
    io = IOSnapshot(
        {"objects:Student": FileIOCounts(logical_reads=len(rows))}
    )
    return QueryResult(
        rows=rows,
        statistics=QueryStatistics(
            plan=plan,
            candidates=candidates or len(rows),
            false_drops=0,
            results=len(rows),
            io=io,
        ),
    )


class ScriptedShard:
    """Plays back a script: each entry is a result, an exception, or a
    ``(delay_seconds, result_or_exception)`` pair. The last entry repeats."""

    def __init__(self, *script):
        self.script = list(script)
        self.calls = 0
        self.closed = False
        self.seen_options = []

    def _step(self):
        step = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        return step

    def _play(self, step):
        if isinstance(step, tuple):
            delay, step = step
            time.sleep(delay)
        if isinstance(step, BaseException):
            raise step
        return step

    def execute(self, text, options=None):
        self.seen_options.append(options)
        return self._play(self._step())

    def execute_many(self, queries, options=None):
        self.seen_options.append(options)
        step = self._play(self._step())
        return [step] * len(queries)

    def submit(self, text, options=None):
        future = Future()
        future.set_result(self.execute(text, options))
        return future

    def close(self):
        self.closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


def _counter(name: str) -> int:
    return REGISTRY.counter(name).value


class TestMergeResults:
    def test_rows_merge_in_oid_order(self):
        merged = merge_results([_result(5, 9), _result(2, 7)])
        assert [oid.to_int() for oid in merged.oids()] == [2, 5, 7, 9]
        assert not merged.partial

    def test_counters_and_io_sum(self):
        merged = merge_results(
            [_result(1, candidates=4), _result(2, 3, candidates=5)]
        )
        assert merged.statistics.candidates == 9
        assert merged.statistics.results == 3
        assert (
            merged.statistics.io.for_file("objects:Student").logical_reads == 3
        )

    def test_mixed_plans_are_labelled(self):
        merged = merge_results([_result(1, plan="bssf"), _result(2, plan="scan")])
        assert merged.statistics.plan == "mixed(bssf, scan)"

    def test_missing_marks_partial(self):
        merged = merge_results([_result(1)], missing=["shard-1"])
        assert merged.partial
        assert merged.missing_shards == ["shard-1"]
        assert merged.statistics.detail["sharding"]["missing"] == ["shard-1"]


class TestScatterGather:
    def test_execute_merges_all_shards(self):
        with ShardRouter(
            [ScriptedShard(_result(1)), ScriptedShard(_result(2))],
            retry_policy=FAST_RETRY,
        ) as router:
            merged = router.execute("q")
            assert [oid.to_int() for oid in merged.oids()] == [1, 2]

    def test_execute_many_merges_per_index(self):
        with ShardRouter(
            [ScriptedShard(_result(1)), ScriptedShard(_result(2))],
            retry_policy=FAST_RETRY,
        ) as router:
            results = router.execute_many(["a", "b"])
            assert len(results) == 2
            for merged in results:
                assert [oid.to_int() for oid in merged.oids()] == [1, 2]

    def test_submit_resolves_off_thread(self):
        with ShardRouter(
            [ScriptedShard(_result(3))], retry_policy=FAST_RETRY
        ) as router:
            future = router.submit("q")
            assert [oid.to_int() for oid in future.result(timeout=10).oids()] == [3]

    def test_query_errors_propagate_without_retry(self):
        shard = ScriptedShard(ParseError("expected 'select'"))
        with ShardRouter(
            [shard, ScriptedShard(_result(1))], retry_policy=FAST_RETRY
        ) as router:
            with pytest.raises(ParseError):
                router.execute("selectt nonsense")
        assert shard.calls == 1  # semantics, not shard health: no retry

    def test_close_is_idempotent_and_closes_owned_shards(self):
        shard = ScriptedShard(_result(1))
        router = ShardRouter([shard], retry_policy=FAST_RETRY)
        router.close()
        router.close()
        assert shard.closed

    def test_owns_shards_false_leaves_backends_open(self):
        shard = ScriptedShard(_result(1))
        ShardRouter([shard], owns_shards=False).close()
        assert not shard.closed


class TestRetries:
    def test_transport_fault_retries_then_succeeds(self):
        shard = ScriptedShard(ConnectionLostError("blip"), _result(1))
        before = _counter("router.retries")
        with ShardRouter([shard], retry_policy=FAST_RETRY) as router:
            merged = router.execute("q")
        assert [oid.to_int() for oid in merged.oids()] == [1]
        assert shard.calls == 2
        assert _counter("router.retries") == before + 1

    def test_exhausted_retries_raise_strict(self):
        shard = ScriptedShard(ConnectionLostError("down"))
        with ShardRouter(
            [shard, ScriptedShard(_result(2))],
            retry_policy=FAST_RETRY,
        ) as router:
            with pytest.raises(ShardUnavailableError) as excinfo:
                router.execute("q")
        assert shard.calls == FAST_RETRY.max_attempts
        assert excinfo.value.missing_shards == ["shard-0"]
        assert excinfo.value.code == "shard-unavailable"

    def test_exhausted_retries_degrade_to_partial(self):
        before = _counter("router.partial_results")
        with ShardRouter(
            [ScriptedShard(ConnectionLostError("down")), ScriptedShard(_result(2))],
            partial_results="degraded",
            retry_policy=FAST_RETRY,
        ) as router:
            merged = router.execute("q")
        assert merged.partial
        assert merged.missing_shards == ["shard-0"]
        assert [oid.to_int() for oid in merged.oids()] == [2]
        assert _counter("router.partial_results") == before + 1


class TestDeadlines:
    def test_slow_shard_misses_the_deadline_strict(self):
        slow = ScriptedShard((0.5, _result(1)))
        with ShardRouter(
            [slow], deadline_ms=50, retry_policy=FAST_RETRY
        ) as router:
            started = time.monotonic()
            with pytest.raises(ShardUnavailableError):
                router.execute("q")
            assert time.monotonic() - started < 5.0  # bounded, not hung

    def test_slow_shard_degrades_to_partial(self):
        slow = ScriptedShard((0.5, _result(1)))
        with ShardRouter(
            [slow, ScriptedShard(_result(2))],
            partial_results="degraded",
            deadline_ms=100,
            retry_policy=FAST_RETRY,
        ) as router:
            merged = router.execute("q")
        assert merged.partial
        assert [oid.to_int() for oid in merged.oids()] == [2]

    def test_sub_requests_carry_the_shrinking_budget(self):
        shard = ScriptedShard(_result(1))
        with ShardRouter(
            [shard], deadline_ms=10_000, retry_policy=FAST_RETRY
        ) as router:
            router.execute("q")
        (options,) = shard.seen_options
        assert options is not None
        assert options.deadline_ms is not None
        assert 0 < options.deadline_ms <= 10_000

    def test_options_deadline_overrides_router_default(self):
        shard = ScriptedShard(_result(1))
        with ShardRouter(
            [shard], deadline_ms=10_000, retry_policy=FAST_RETRY
        ) as router:
            router.execute("q", ExecutionOptions(deadline_ms=2_000))
        (options,) = shard.seen_options
        assert options.deadline_ms <= 2_000


class TestCircuitBreaker:
    def test_degraded_mode_skips_an_open_breaker(self):
        shard = ScriptedShard(ConnectionLostError("down"))
        before = _counter("router.breaker_skips")
        with ShardRouter(
            [shard, ScriptedShard(_result(2))],
            partial_results="degraded",
            retry_policy=FAST_RETRY,
            failure_threshold=2,
            breaker_cooldown_seconds=30.0,
        ) as router:
            router.execute("q")  # trips the breaker (3 failed attempts)
            calls_after_trip = shard.calls
            merged = router.execute("q")  # breaker open: not even probed
        assert shard.calls == calls_after_trip
        assert merged.partial
        assert _counter("router.breaker_skips") == before + 1

    def test_strict_mode_probes_anyway(self):
        shard = ScriptedShard(ConnectionLostError("down"))
        with ShardRouter(
            [shard],
            retry_policy=FAST_RETRY,
            failure_threshold=1,
            breaker_cooldown_seconds=30.0,
        ) as router:
            with pytest.raises(ShardUnavailableError):
                router.execute("q")
            calls_after_trip = shard.calls
            with pytest.raises(ShardUnavailableError):
                router.execute("q")
        assert shard.calls > calls_after_trip

    def test_breaker_closes_again_after_success(self):
        shard = ScriptedShard(
            ConnectionLostError("down"), _result(1), _result(1)
        )
        with ShardRouter(
            [shard],
            partial_results="degraded",
            retry_policy=FAST_RETRY,
            failure_threshold=10,  # never trips
        ) as router:
            router.execute("q")
            status = router.status()[0]
        assert status["consecutive_failures"] == 0
        assert not status["breaker_open"]


class TestHedging:
    def test_backup_request_wins_a_slow_primary(self):
        # First call crawls, second answers instantly: the hedge fires at
        # 50ms and its answer is merged exactly once.
        shard = ScriptedShard((1.0, _result(1)), _result(1))
        before = _counter("router.hedge_wins")
        with ShardRouter(
            [shard],
            retry_policy=FAST_RETRY,
            hedge_delay_seconds=0.05,
        ) as router:
            started = time.monotonic()
            merged = router.execute("q")
            elapsed = time.monotonic() - started
        assert [oid.to_int() for oid in merged.oids()] == [1]
        assert merged.statistics.results == 1  # winner only: no double count
        assert elapsed < 0.9
        assert shard.calls == 2
        assert _counter("router.hedge_wins") == before + 1

    def test_fast_primary_never_hedges(self):
        shard = ScriptedShard(_result(1))
        before = _counter("router.hedges")
        with ShardRouter(
            [shard],
            retry_policy=FAST_RETRY,
            hedge_delay_seconds=5.0,
        ) as router:
            router.execute("q")
        assert shard.calls == 1
        assert _counter("router.hedges") == before

    def test_p99_mode_needs_history_first(self):
        shard = ScriptedShard(_result(1))
        with ShardRouter(
            [shard],
            retry_policy=FAST_RETRY,
            hedge_delay_seconds="p99",
        ) as router:
            router.execute("q")
        assert shard.calls == 1  # no latency window yet: no hedge


class TestConfiguration:
    def test_rejects_empty_shard_list(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ShardRouter([])

    def test_rejects_unknown_partial_mode(self):
        with pytest.raises(ConfigurationError, match="partial_results"):
            ShardRouter([ScriptedShard(_result(1))], partial_results="maybe")

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ConfigurationError, match="deadline_ms"):
            ShardRouter([ScriptedShard(_result(1))], deadline_ms=0)

    def test_rejects_unknown_hedge_string(self):
        with pytest.raises(ConfigurationError, match="hedge"):
            ShardRouter(
                [ScriptedShard(_result(1))], hedge_delay_seconds="p50"
            )

    def test_status_reports_per_shard_health(self):
        with ShardRouter(
            [ScriptedShard(_result(1)), ScriptedShard(_result(2))],
            retry_policy=FAST_RETRY,
        ) as router:
            router.execute("q")
            status = router.status()
        assert [entry["shard"] for entry in status] == [0, 1]
        assert all(entry["requests"] == 1 for entry in status)
        assert all(not entry["breaker_open"] for entry in status)


class TestTracing:
    def test_router_span_records_shard_outcomes(self):
        with ShardRouter(
            [ScriptedShard(ConnectionLostError("down")), ScriptedShard(_result(2))],
            partial_results="degraded",
            retry_policy=FAST_RETRY,
        ) as router:
            merged = router.execute("q", ExecutionOptions(trace=True))
        span = merged.trace
        assert span is not None
        assert span.name == "router.execute"
        assert span.attributes["mode"] == "degraded"
        assert span.attributes["missing"] == ["shard-0"]
        assert span.attributes["answered"] == [1]
