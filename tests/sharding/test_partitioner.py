"""Hash partitioning: stable placement and loss-free database splitting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.sharding import HashPartitioner, partition_database
from tests.conftest import populate_students

QUERY = 'select Student where hobbies has-subset ("Chess")'


def _build_db(count: int = 80) -> Database:
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index("Student", "hobbies", 128, 2)
    populate_students(db, count=count)
    return db


class TestHashPartitioner:
    def test_placement_is_stable_and_in_range(self):
        db = _build_db(count=40)
        partitioner = HashPartitioner(4)
        for oid, _values in db.objects.scan("Student"):
            owner = partitioner.shard_of("Student", oid)
            assert 0 <= owner < 4
            assert owner == partitioner.shard_of("Student", oid)

    def test_spreads_over_every_shard(self):
        db = _build_db(count=80)
        partitioner = HashPartitioner(4)
        owners = {
            partitioner.shard_of("Student", oid)
            for oid, _values in db.objects.scan("Student")
        }
        assert owners == {0, 1, 2, 3}

    def test_class_name_feeds_the_hash(self):
        # Same OID, different class: placement may differ (and must be
        # deterministic either way). Exercise the key construction.
        db = _build_db(count=10)
        partitioner = HashPartitioner(16)
        oid = next(iter(db.objects.scan("Student")))[0]
        assert partitioner.shard_of("Student", oid) == partitioner.shard_of(
            "Student", oid
        )

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ConfigurationError, match="num_shards"):
            HashPartitioner(0)


class TestPartitionDatabase:
    def test_objects_land_on_their_owner_under_original_oid(self):
        db = _build_db()
        partitioner = HashPartitioner(3)
        shards = partition_database(db, 3, partitioner=partitioner)
        placed = 0
        for index, shard in enumerate(shards):
            for oid, values in shard.objects.scan("Student"):
                assert partitioner.shard_of("Student", oid) == index
                assert db.objects.fetch(oid) == values
                placed += 1
        assert placed == db.count("Student")

    def test_schema_and_facilities_replicate(self):
        db = _build_db()
        shards = partition_database(db, 2)
        for shard in shards:
            assert shard.objects.class_ids() == db.objects.class_ids()
            assert shard.indexed_paths() == db.indexed_paths()
            original = db.indexes_on("Student", "hobbies")["bssf"]
            mirrored = shard.indexes_on("Student", "hobbies")["bssf"]
            assert mirrored.scheme.signature_bits == original.scheme.signature_bits
            assert (
                mirrored.scheme.bits_per_element
                == original.scheme.bits_per_element
            )
            assert mirrored.scheme.seed == original.scheme.seed

    def test_union_of_shard_answers_is_the_unsharded_answer(self):
        db = _build_db()
        golden = QueryExecutor(db).execute_text(QUERY).oids()
        shards = partition_database(db, 3)
        merged = []
        for shard in shards:
            merged.extend(QueryExecutor(shard).execute_text(QUERY).oids())
        assert sorted(merged, key=lambda o: o.to_int()) == golden

    def test_mismatched_partitioner_rejected(self):
        with pytest.raises(ConfigurationError, match="shard"):
            partition_database(_build_db(20), 3, partitioner=HashPartitioner(2))

    def test_shard_factory_controls_shard_construction(self):
        db = _build_db(count=20)
        built = []

        def factory(index: int) -> Database:
            shard = Database(page_size=4096, durability="none")
            built.append(index)
            return shard

        shards = partition_database(db, 2, shard_factory=factory)
        assert built == [0, 1]
        assert sum(s.count("Student") for s in shards) == 20
