"""End-to-end integration story: build → index → query → snapshot → verify.

Exercises the whole public surface in one realistic flow, the way a
downstream user would drive the library.
"""

import pytest

from repro import (
    CostContext,
    ExecutionOptions,
    QueryExecutor,
    load_database,
    save_database,
)
from repro.workloads.generator import (
    EVAL_ATTRIBUTE,
    EVAL_CLASS,
    WorkloadSpec,
    load_workload,
)
from repro.workloads.university import build_university


class TestUniversityStory:
    @pytest.fixture(scope="class")
    def campus(self):
        built = build_university(num_students=150, seed=31)
        db = built.database
        db.create_nested_index("Student", "courses")
        db.create_bssf_index("Student", "courses", 64, 3)
        db.create_ssf_index("Student", "hobbies", 128, 2)
        return built

    def test_full_flow(self, campus, tmp_path):
        db = campus.database
        executor = QueryExecutor(db)
        context = CostContext(
            num_objects=150, domain_cardinality=10, target_cardinality=4
        )

        # declarative two-step query
        all_db = executor.execute_text(
            'select Student where courses has-subset '
            '(select Course where category = "DB")',
            ExecutionOptions(context=context),
        )
        manual = [
            oid for oid, v in db.scan("Student")
            if set(campus.course_oids("DB")) <= set(v["courses"])
        ]
        assert sorted(all_db.oids()) == sorted(manual)

        # plan introspection
        explanation = executor.explain(
            'select Student where hobbies has-subset ("Baseball")',
            ExecutionOptions(context=CostContext(150, 18, 3)),
        )
        assert "ssf" in explanation

        # mutate, stay consistent
        victim = manual[0] if manual else campus.students[0]
        db.delete(victim)
        db.check_consistency(sample=25)

        # snapshot, reload, same answers
        path = tmp_path / "campus.sigdb"
        save_database(db, path)
        loaded = load_database(path)
        replay = QueryExecutor(loaded).execute_text(
            'select Student where courses has-subset '
            '(select Course where category = "DB")',
            ExecutionOptions(context=context),
        )
        assert sorted(replay.oids()) == sorted(
            oid for oid in manual if oid != victim
        )
        loaded.check_consistency(sample=25)


class TestSyntheticWorkloadStory:
    def test_bulk_indexes_and_strategies_agree(self):
        from repro.objects.database import Database

        db = Database()
        spec = WorkloadSpec(
            num_objects=800, domain_cardinality=320, target_cardinality=10,
            seed=77,
        )
        load_workload(db, spec)
        # created after load → bulk-built
        db.create_ssf_index(EVAL_CLASS, EVAL_ATTRIBUTE, 250, 2)
        db.create_bssf_index(EVAL_CLASS, EVAL_ATTRIBUTE, 250, 2)
        db.create_nested_index(EVAL_CLASS, EVAL_ATTRIBUTE)
        db.check_consistency(sample=30)

        executor = QueryExecutor(db)
        context = CostContext(800, 320, 10)
        text = "select EvalObject where elements in-subset (" + ", ".join(
            str(v) for v in range(40)
        ) + ")"
        answers = set()
        for prefer in ("ssf", "bssf", "nix"):
            for smart in (True, False):
                result = executor.execute_text(
                    text, ExecutionOptions(context=context, prefer_facility=prefer, smart=smart)
                )
                answers.add(tuple(sorted(result.oids())))
        assert len(answers) == 1, "every facility/strategy must agree"

    def test_variable_cardinality_workload_round_trip(self):
        from repro.objects.database import Database

        db = Database()
        spec = WorkloadSpec(
            num_objects=300, domain_cardinality=200, target_cardinality=6,
            seed=9, variable_cardinality=True,
        )
        load_workload(db, spec)
        db.create_bssf_index(EVAL_CLASS, EVAL_ATTRIBUTE, 128, 2)
        sizes = {len(v[EVAL_ATTRIBUTE]) for _, v in db.scan(EVAL_CLASS)}
        assert len(sizes) > 2  # genuinely variable
        db.check_consistency(sample=20)
