"""Replica lifecycle: catch-up byte-equivalence, read-only serving,
restart recovery, local checkpoints, and promotion."""

from __future__ import annotations

import pytest

from repro.errors import ReadOnlyReplicaError, ReplicationError
from repro.objects.database import Database
from repro.obs.metrics import REGISTRY
from repro.replication import ReplicaDatabase
from repro.server.service import QueryService
from tests.wal.conftest import apply_ops, fingerprint, workload_ops

QUERY = 'select Student where hobbies has-subset ("Chess")'


def _caught_up(primary_db, replica, timeout=10.0):
    assert replica.wait_for_lsn(primary_db.wal.end_lsn, timeout=timeout), (
        f"replica stalled at {replica.watermark} < {primary_db.wal.end_lsn}"
        f" (last_error={replica.last_error!r})"
    )


class TestTailCatchUp:
    def test_replayed_state_is_byte_identical(self, primary, make_replica):
        db, server = primary
        apply_ops(db, workload_ops(inserts=10))
        replica = make_replica(server.url)
        _caught_up(db, replica)
        assert fingerprint(replica.database) == fingerprint(db)
        assert REGISTRY.counter("replication.applied_records").value > 0

    def test_tails_writes_arriving_after_subscribe(self, primary, make_replica):
        db, server = primary
        ops = workload_ops(inserts=9)
        apply_ops(db, ops[:3])
        replica = make_replica(server.url)
        _caught_up(db, replica)
        apply_ops(db, ops[3:])  # lands while the subscriber is streaming
        _caught_up(db, replica)
        assert fingerprint(replica.database) == fingerprint(db)

    def test_watermark_and_lag_track_the_primary(self, primary, make_replica):
        db, server = primary
        apply_ops(db, workload_ops(inserts=8))
        replica = make_replica(server.url)
        _caught_up(db, replica)
        assert replica.watermark == db.wal.end_lsn
        assert replica.lag_bytes == 0


class TestReadOnlyServing:
    def test_direct_writes_are_rejected(self, primary, make_replica):
        db, server = primary
        apply_ops(db, workload_ops(inserts=8))
        replica = make_replica(server.url)
        _caught_up(db, replica)
        with pytest.raises(ReadOnlyReplicaError):
            replica.database.insert(
                "Student", {"name": "nope", "hobbies": {"Chess"}}
            )
        from repro.objects.oid import OID

        with pytest.raises(ReadOnlyReplicaError):
            replica.database.delete(OID(1, 1))

    def test_query_stats_match_local_execution(self, primary, make_replica):
        """Per-query I/O accounting on a replica is bit-identical to a
        local database that applied the same logical operations."""
        db, server = primary
        ops = workload_ops(inserts=12)
        apply_ops(db, ops)
        replica = make_replica(server.url)
        _caught_up(db, replica)

        local = Database(page_size=4096, pool_capacity=0)
        apply_ops(local, ops)

        remote_service = QueryService(replica.database, max_workers=1)
        local_service = QueryService(local, max_workers=1)
        try:
            remote = remote_service.execute(QUERY)
            baseline = local_service.execute(QUERY)
        finally:
            remote_service.shutdown()
            local_service.shutdown()
        assert remote.rows == baseline.rows
        for field in ("plan", "candidates", "false_drops", "results", "io"):
            assert getattr(remote.statistics, field) == getattr(
                baseline.statistics, field
            ), field


class TestRestart:
    def test_restarted_replica_recovers_and_resubscribes(
        self, primary, tmp_path
    ):
        db, server = primary
        ops = workload_ops(inserts=10)
        apply_ops(db, ops[:8])
        wal_dir = str(tmp_path / "restartable")
        replica = ReplicaDatabase(
            server.url, wal_dir, name="restartable", stall_timeout_seconds=3.0
        )
        try:
            _caught_up(db, replica)
        finally:
            replica.close()

        apply_ops(db, ops[8:])  # missed while the replica was down
        reopened = ReplicaDatabase(
            server.url, wal_dir, name="restartable", stall_timeout_seconds=3.0
        )
        try:
            assert reopened.watermark > 0  # recovered local state first
            _caught_up(db, reopened)
            assert fingerprint(reopened.database) == fingerprint(db)
        finally:
            reopened.close()


class TestReplicaCheckpoint:
    def test_checkpoint_truncates_to_watermark(self, primary, make_replica):
        db, server = primary
        apply_ops(db, workload_ops(inserts=8))
        replica = make_replica(server.url)
        _caught_up(db, replica)
        replica.checkpoint()
        # No marker records: the local log is truncated exactly to the
        # watermark and holds nothing the primary's log does not.
        assert replica.wal.base_lsn == replica.watermark
        assert list(replica.wal.records()) == []

    def test_tail_survives_a_local_checkpoint(self, primary, make_replica):
        db, server = primary
        ops = workload_ops(inserts=9)
        apply_ops(db, ops[:6])
        replica = make_replica(server.url)
        _caught_up(db, replica)
        replica.checkpoint()
        apply_ops(db, ops[6:])
        _caught_up(db, replica)
        assert fingerprint(replica.database) == fingerprint(db)
        assert REGISTRY.counter("replication.resyncs").value == 0

    def test_restart_recovers_from_checkpoint_plus_tail(
        self, primary, tmp_path
    ):
        db, server = primary
        ops = workload_ops(inserts=10)
        apply_ops(db, ops[:7])
        wal_dir = str(tmp_path / "ckpt-restart")
        replica = ReplicaDatabase(
            server.url, wal_dir, name="ckpt-restart", stall_timeout_seconds=3.0
        )
        try:
            _caught_up(db, replica)
            replica.checkpoint()
        finally:
            replica.close()
        apply_ops(db, ops[7:])
        reopened = ReplicaDatabase(
            server.url, wal_dir, name="ckpt-restart", stall_timeout_seconds=3.0
        )
        try:
            _caught_up(db, reopened)
            assert fingerprint(reopened.database) == fingerprint(db)
        finally:
            reopened.close()


class TestPromote:
    def test_promote_yields_a_writable_wal_primary(self, primary, make_replica):
        db, server = primary
        apply_ops(db, workload_ops(inserts=8))
        replica = make_replica(server.url)
        _caught_up(db, replica)
        before = fingerprint(db)

        promoted = replica.promote()
        assert replica.promoted
        assert fingerprint(promoted) == before
        assert promoted.wal is replica.wal  # the local log attached

        oid = promoted.insert(
            "Student", {"name": "post-promotion", "hobbies": {"Chess"}}
        )
        assert promoted.get(oid)["name"] == "post-promotion"
        assert REGISTRY.counter("replication.promotions").value == 1

    def test_promoted_replica_cannot_resubscribe(self, primary, make_replica):
        db, server = primary
        apply_ops(db, workload_ops(inserts=8))
        replica = make_replica(server.url)
        _caught_up(db, replica)
        replica.promote()
        with pytest.raises(ReplicationError):
            replica.start()


class TestWaitForLsn:
    def test_unreachable_lsn_times_out_false(self, primary, make_replica):
        db, server = primary
        apply_ops(db, workload_ops(inserts=8))
        replica = make_replica(server.url)
        _caught_up(db, replica)
        assert replica.wait_for_lsn(db.wal.end_lsn + 4096, timeout=0.2) is False
