"""Unit tests for the merkle anti-entropy digests and diff walk."""

from __future__ import annotations

import random

from repro.replication.merkle import (
    MerkleTree,
    chunk_digests,
    chunk_ranges,
    decode_tree,
    diff_chunks,
    encode_tree,
    store_trees,
)


def _checksums(pages: int, seed: int = 7) -> list:
    rng = random.Random(seed)
    return [rng.getrandbits(32) for _ in range(pages)]


class TestDigests:
    def test_one_digest_per_chunk(self):
        digests = chunk_digests(_checksums(17), chunk_pages=4)
        assert len(digests) == 5  # 4+4+4+4+1

    def test_digest_depends_on_every_checksum(self):
        base = _checksums(8)
        for position in range(8):
            bumped = list(base)
            bumped[position] ^= 1
            assert chunk_digests(bumped, 8) != chunk_digests(base, 8)

    def test_partial_final_chunk_digest_differs_from_full(self):
        # A 9-page file and an 8-page file agree on chunk 0 but the 9-page
        # file has a second (partial) chunk the other lacks.
        nine, eight = chunk_digests(_checksums(9), 8), chunk_digests(_checksums(9)[:8], 8)
        assert nine[0] == eight[0]
        assert len(nine) == 2 and len(eight) == 1


class TestTree:
    def test_root_stable_and_sensitive(self):
        checksums = _checksums(100)
        a = MerkleTree.from_checksums(checksums, chunk_pages=4, fanout=4)
        b = MerkleTree.from_checksums(checksums, chunk_pages=4, fanout=4)
        assert a.root == b.root
        checksums[57] ^= 1
        c = MerkleTree.from_checksums(checksums, chunk_pages=4, fanout=4)
        assert c.root != a.root

    def test_empty_file_has_canonical_root(self):
        a = MerkleTree.from_checksums([], chunk_pages=4)
        b = MerkleTree.from_checksums([], chunk_pages=8)
        assert a.root == b.root
        assert a.chunk_count == 0

    def test_levels_shrink_to_single_root(self):
        tree = MerkleTree.from_checksums(_checksums(300), chunk_pages=2, fanout=4)
        assert len(tree.levels[-1]) == 1
        for lower, upper in zip(tree.levels, tree.levels[1:]):
            assert len(upper) < len(lower) or len(lower) == 1


class TestDiff:
    def test_identical_trees_diff_empty(self):
        checksums = _checksums(64)
        mine = MerkleTree.from_checksums(checksums, chunk_pages=4, fanout=4)
        theirs = MerkleTree.from_checksums(checksums, chunk_pages=4, fanout=4)
        assert diff_chunks(mine, theirs) == []

    def test_single_page_change_isolates_one_chunk(self):
        checksums = _checksums(64)
        theirs = MerkleTree.from_checksums(checksums, chunk_pages=4, fanout=4)
        checksums[30] ^= 1  # page 30 lives in chunk 7
        mine = MerkleTree.from_checksums(checksums, chunk_pages=4, fanout=4)
        assert diff_chunks(mine, theirs) == [30 // 4]

    def test_grown_file_ships_new_chunks(self):
        old = _checksums(16)
        theirs = MerkleTree.from_checksums(old, chunk_pages=4, fanout=4)
        mine = MerkleTree.from_checksums(old + _checksums(9, seed=9), 4, fanout=4)
        differing = diff_chunks(mine, theirs)
        # chunks 0-3 unchanged; chunks 4.. are new
        assert differing == [4, 5, 6]

    def test_shrunk_file_ships_nothing_extra(self):
        old = _checksums(32)
        theirs = MerkleTree.from_checksums(old, chunk_pages=4, fanout=4)
        mine = MerkleTree.from_checksums(old[:16], chunk_pages=4, fanout=4)
        differing = diff_chunks(mine, theirs)
        assert all(index < mine.chunk_count for index in differing)

    def test_shape_mismatch_falls_back_to_full_ship(self):
        checksums = _checksums(32)
        mine = MerkleTree.from_checksums(checksums, chunk_pages=4)
        theirs = MerkleTree.from_checksums(checksums, chunk_pages=8)
        assert diff_chunks(mine, theirs) == list(range(mine.chunk_count))

    def test_diff_never_misses_a_real_difference(self):
        """Randomized cross-check against brute-force leaf comparison."""
        rng = random.Random(11)
        for _ in range(25):
            pages = rng.randint(0, 120)
            base = [rng.getrandbits(32) for _ in range(pages)]
            mutated = list(base)
            for _ in range(rng.randint(0, 6)):
                if mutated and rng.random() < 0.7:
                    mutated[rng.randrange(len(mutated))] ^= rng.getrandbits(32) or 1
                elif rng.random() < 0.5:
                    mutated.append(rng.getrandbits(32))
                elif mutated:
                    mutated.pop()
            mine = MerkleTree.from_checksums(mutated, chunk_pages=4, fanout=4)
            theirs = MerkleTree.from_checksums(base, chunk_pages=4, fanout=4)
            expected = [
                index
                for index in range(mine.chunk_count)
                if index >= theirs.chunk_count
                or mine.leaves[index] != theirs.leaves[index]
            ]
            assert diff_chunks(mine, theirs) == expected


class TestRanges:
    def test_adjacent_chunks_merge(self):
        assert chunk_ranges([0, 1, 3], chunk_pages=4, pages=16) == [
            (0, 8),
            (12, 4),
        ]

    def test_final_partial_chunk_clamped_to_file_size(self):
        assert chunk_ranges([2], chunk_pages=4, pages=10) == [(8, 2)]

    def test_duplicates_and_order_are_normalized(self):
        assert chunk_ranges([3, 1, 1, 2], 4, 16) == [(4, 12)]


class TestWireCodec:
    def test_round_trip_preserves_root_and_diff(self):
        checksums = _checksums(50)
        tree = MerkleTree.from_checksums(checksums, chunk_pages=4, fanout=4)
        decoded = decode_tree(encode_tree(tree))
        assert decoded.root == tree.root
        assert diff_chunks(tree, decoded) == []

    def test_store_trees_covers_every_file(self, tmp_path):
        from repro.objects.database import Database
        from repro.objects.schema import ClassSchema

        db = Database(page_size=4096, pool_capacity=0)
        db.define_class(
            ClassSchema.build("Student", name="scalar", hobbies="set")
        )
        for i in range(30):
            db.insert("Student", {"name": f"s{i}", "hobbies": {"Chess"}})
        db.storage.flush()
        store = db.storage.store
        trees = store_trees(store, chunk_pages=4)
        assert set(trees) == set(store.file_names())
        for name, tree in trees.items():
            assert tree.pages == store.num_pages(name)
