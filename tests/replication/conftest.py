"""Fixtures for the replication suite: loopback primaries and replicas.

Everything runs over real loopback sockets with fast heartbeats and short
stall timeouts so failure-path tests (reconnects, stale subscribers) stay
sub-second. Byte-equivalence leans on the WAL suite's :func:`fingerprint`
— replication's core guarantee is exactly the recovery suite's, extended
across a network hop.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import REGISTRY
from repro.objects.database import Database
from repro.replication import ReplicaDatabase
from repro.server.net import TcpQueryServer


@pytest.fixture(autouse=True)
def _reset_registry():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


@pytest.fixture
def primary(tmp_path):
    """A WAL-mode primary served over loopback: ``(db, server)``."""
    db = Database(wal_dir=str(tmp_path / "primary"))
    server = TcpQueryServer(db, heartbeat_seconds=0.1)
    server.start()
    yield db, server
    server.stop(drain=False)
    db.wal.close()


@pytest.fixture
def make_replica(tmp_path):
    """Factory for tailing replicas; each gets its own wal dir + cleanup."""
    created = []
    counter = [0]

    def build(url: str, **kwargs) -> ReplicaDatabase:
        counter[0] += 1
        kwargs.setdefault("name", f"replica-{counter[0]}")
        kwargs.setdefault("stall_timeout_seconds", 3.0)
        replica = ReplicaDatabase(
            url, str(tmp_path / f"replica-{counter[0]}"), **kwargs
        )
        created.append(replica)
        return replica

    yield build
    for replica in created:
        replica.close()
