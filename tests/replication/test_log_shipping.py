"""Primary-side shipping: cursor validation, batching, byte-identity."""

from __future__ import annotations

import base64
import threading

import pytest

from repro.errors import ReplicationError, StaleSubscriberError, WalError
from repro.objects.database import Database
from repro.replication.primary import ReplicationSource
from repro.wal.log import WriteAheadLog
from tests.wal.conftest import apply_ops, workload_ops


def _primary(tmp_path, small=False):
    db = Database(wal_dir=str(tmp_path / "p"))
    if small:
        from repro.objects.schema import ClassSchema

        db.define_class(
            ClassSchema.build("Student", name="scalar", hobbies="set")
        )
        db.insert("Student", {"name": "a", "hobbies": {"Chess"}})
    else:
        apply_ops(db, workload_ops(inserts=8))
    return db


class TestSubscribe:
    def test_needs_a_wal_mode_database(self):
        with pytest.raises(ReplicationError):
            ReplicationSource(Database())

    def test_subscribe_at_any_record_boundary(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        boundaries = [record.lsn for record in db.wal.records()]
        boundaries.append(db.wal.end_lsn)
        for lsn in boundaries:
            cursor_id, cursor = source.subscribe(lsn)
            assert cursor.shipped_lsn == lsn
            source.unsubscribe(cursor_id)

    def test_watermark_below_base_is_stale(self, tmp_path):
        db = _primary(tmp_path)
        db.checkpoint()  # truncates: base moves past 0
        source = ReplicationSource(db)
        with pytest.raises(StaleSubscriberError) as excinfo:
            source.subscribe(0)
        assert excinfo.value.base_lsn == db.wal.base_lsn
        assert excinfo.value.code == "stale-subscriber"

    def test_watermark_past_end_is_divergence(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        with pytest.raises(ReplicationError):
            source.subscribe(db.wal.end_lsn + 64)

    def test_non_boundary_watermark_rejected(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        first = next(iter(db.wal.records()))
        with pytest.raises(ReplicationError):
            source.subscribe(first.lsn + 1)


class TestRecordsSince:
    def test_batches_whole_log_in_order(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        shipped, at = [], db.wal.base_lsn
        while at < db.wal.end_lsn:
            batch, at = source.records_since(at, max_bytes=256)
            assert batch
            shipped.extend(batch)
        expected = [record.lsn for record in db.wal.records()]
        assert [lsn for lsn, _payload in shipped] == expected

    def test_budget_always_admits_one_record(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        batch, end = source.records_since(db.wal.base_lsn, max_bytes=1)
        assert len(batch) == 1
        assert end > db.wal.base_lsn

    def test_payloads_are_the_exact_logged_bytes(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        batch, _end = source.records_since(db.wal.base_lsn, max_bytes=1 << 20)
        mirror = WriteAheadLog(str(tmp_path / "mirror"))
        for lsn, encoded in batch:
            assert lsn == mirror.end_lsn
            mirror.append_payload(base64.b64decode(encoded))
        source_log = (tmp_path / "p" / "wal.log").read_bytes()
        mirror_log = (tmp_path / "mirror" / "wal.log").read_bytes()
        assert mirror_log == source_log
        mirror.close()

    def test_truncated_watermark_goes_stale_mid_stream(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        db.checkpoint()
        with pytest.raises(StaleSubscriberError):
            source.records_since(0, max_bytes=1024)


class TestStreamingPrimitives:
    def test_wait_for_append_wakes_on_append(self, tmp_path):
        db = _primary(tmp_path, small=True)
        lsn = db.wal.end_lsn
        woke = []

        def waiter():
            woke.append(db.wal.wait_for_append(lsn, timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        db.insert("Student", {"name": "late", "hobbies": {"Chess"}})
        thread.join(timeout=5)
        assert woke == [True]

    def test_wait_for_append_times_out(self, tmp_path):
        db = _primary(tmp_path, small=True)
        assert db.wal.wait_for_append(db.wal.end_lsn, timeout=0.05) is False

    def test_payloads_from_rejects_non_boundary(self, tmp_path):
        db = _primary(tmp_path, small=True)
        first = next(iter(db.wal.records()))
        with pytest.raises(WalError):
            db.wal.payloads_from(first.lsn + 3)

    def test_reset_moves_base_and_empties(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "w"))
        log.append(["insert", "x"])
        log.reset(4096)
        assert log.base_lsn == 4096
        assert log.end_lsn == 4096
        assert list(log.records()) == []
        lsn = log.append_payload(b"\x01\x02")
        assert lsn == 4096
        log.close()


class TestSyncResponse:
    def test_empty_diff_is_one_final_frame_listing_every_file(self, tmp_path):
        from repro.replication.merkle import encode_tree, store_trees

        db = _primary(tmp_path)
        source = ReplicationSource(db)
        db.storage.flush()
        trees = store_trees(db.storage.store, chunk_pages=2)
        frames = source.sync_response(
            {
                "chunk_pages": 2,
                "files": {name: encode_tree(t) for name, t in trees.items()},
            }
        )
        (frame,) = frames
        assert frame["more"] is False
        assert "catalog" in frame
        # Unchanged files still ship their metadata entry (the subscriber
        # keeps its local pages for every listed file), just no ranges.
        assert {e["name"] for e in frame["files"]} == set(trees)
        assert all(entry["ranges"] == [] for entry in frame["files"])

    def test_large_diff_splits_into_budgeted_frames(self, tmp_path):
        import json

        db = _primary(tmp_path)
        source = ReplicationSource(db)
        budget = 16384
        # An empty digest set claims nothing: every page differs.
        frames = source.sync_response(
            {"chunk_pages": 2, "files": {}}, max_bytes=budget
        )
        assert len(frames) > 1
        assert all(frame["more"] is True for frame in frames[:-1])
        assert frames[-1]["more"] is False
        assert "catalog" in frames[0]
        assert all("catalog" not in frame for frame in frames[1:])
        assert len({frame["lsn"] for frame in frames}) == 1  # one cut
        for frame in frames:
            body = json.dumps(frame, separators=(",", ":"))
            assert len(body) <= budget + 4096, (
                f"frame of {len(body)} bytes blows the {budget} budget"
            )

    def test_split_frames_cover_every_page_exactly_once(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        frames = source.sync_response(
            {"chunk_pages": 2, "files": {}}, max_bytes=8192
        )
        shipped = {}
        for frame in frames:
            for entry in frame["files"]:
                per_file = shipped.setdefault(entry["name"], {})
                for start, images in entry["ranges"]:
                    for offset, encoded in enumerate(images):
                        page_no = start + offset
                        assert page_no not in per_file, (
                            f"page {page_no} of {entry['name']} shipped twice"
                        )
                        per_file[page_no] = base64.b64decode(encoded)
        store = db.storage.store
        for name in store.file_names():
            pages = store.num_pages(name)
            assert set(shipped.get(name, ())) == set(range(pages))
            for page_no in range(pages):
                assert shipped[name][page_no] == store.page_image(
                    name, page_no
                )

    def test_tiny_budget_still_makes_progress(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        # Below one page's base64 cost: degrade to one page per frame,
        # never to an unshippable frame or an empty one.
        frames = source.sync_response(
            {"chunk_pages": 2, "files": {}}, max_bytes=1
        )
        pages_per_frame = [
            sum(
                len(images)
                for entry in frame["files"]
                for _start, images in entry["ranges"]
            )
            for frame in frames
        ]
        assert all(count == 1 for count in pages_per_frame[:-1])
        assert sum(pages_per_frame) > 1


class TestLagAccounting:
    def test_status_tracks_ship_and_ack(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        cursor_id, cursor = source.subscribe(db.wal.base_lsn, name="r1")
        batch, end = source.records_since(cursor.shipped_lsn, max_bytes=1 << 20)
        cursor.shipped_lsn = end
        source.note_shipped(cursor, len(batch), end - db.wal.base_lsn)
        (entry,) = source.status()
        assert entry["name"] == "r1"
        assert entry["lag_bytes"] == end - db.wal.base_lsn
        source.note_ack(cursor, end)
        (entry,) = source.status()
        assert entry["lag_bytes"] == 0
        source.unsubscribe(cursor_id)
        assert source.status() == []

    def test_acks_are_monotone(self, tmp_path):
        db = _primary(tmp_path)
        source = ReplicationSource(db)
        _id, cursor = source.subscribe(db.wal.base_lsn)
        source.note_ack(cursor, 500)
        source.note_ack(cursor, 100)  # late, out-of-order ack
        assert cursor.acked_lsn == 500
