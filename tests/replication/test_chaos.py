"""Chaos matrix: hard kills, torn frames, restarts, checkpoint races.

Each scenario ends in the same gate the recovery suite uses — byte
equivalence via :func:`tests.wal.conftest.fingerprint` — because the
replication guarantee *is* the recovery guarantee stretched over a wire:
whatever survives, the replica's state must equal a deterministic replay
of the primary's durable prefix up to the replica's watermark.
"""

from __future__ import annotations

import contextlib
import socket
import threading

from repro import wire
from repro.errors import StaleSubscriberError
from repro.objects.database import Database
from repro.obs.metrics import REGISTRY
from repro.replication import ReplicaDatabase
from repro.replication.merkle import store_trees
from repro.server.net import TcpQueryServer
from repro.wal.replay import replay_records
from tests.wal.conftest import apply_ops, fingerprint, workload_ops


def _caught_up(primary_db, replica, timeout=10.0):
    assert replica.wait_for_lsn(primary_db.wal.end_lsn, timeout=timeout), (
        f"replica stalled at {replica.watermark} < {primary_db.wal.end_lsn}"
        f" (last_error={replica.last_error!r})"
    )


class TestPrimaryKillMidStream:
    def test_promoted_state_equals_durable_prefix(self, primary, make_replica):
        """Kill the primary server mid-stream; the promoted replica must be
        byte-identical to a fresh replay of every primary log record whose
        frame it had fully received."""
        db, server = primary
        apply_ops(db, workload_ops(inserts=60))
        replica = make_replica(server.url)
        # Kill as soon as *something* arrived — wherever the stream was.
        assert replica.wait_for_lsn(1, timeout=10)
        server.stop(drain=False)
        replica.stop()

        promoted = replica.promote()
        watermark = promoted.wal_applied_lsn

        expected = Database(page_size=4096, pool_capacity=0)
        prefix = [r for r in db.wal.records() if r.next_lsn <= watermark]
        replay_records(expected, prefix)
        assert fingerprint(promoted) == fingerprint(expected)
        # The promoted log holds exactly the shipped prefix, byte for byte.
        assert promoted.wal.end_lsn == watermark


class _TearingProxy:
    """Loopback TCP proxy that cuts the *first* connection mid-frame.

    Forwards bytes both ways; once the primary→replica direction of the
    first proxied connection has relayed ``tear_after`` bytes it closes
    both sockets abruptly — the replica observes a frame torn partway
    through its body. Later connections pass through untouched.
    """

    def __init__(self, target_host: str, target_port: int, tear_after: int):
        self.target = (target_host, target_port)
        self.tear_after = tear_after
        self._torn_once = False
        self._stop = threading.Event()
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self.url = f"sigfile://127.0.0.1:{self.port}"
        self._threads = [threading.Thread(target=self._accept_loop, daemon=True)]
        self._threads[0].start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                downstream, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.target, timeout=2.0)
            except OSError:
                downstream.close()
                continue
            tear = None
            if not self._torn_once:
                self._torn_once = True
                tear = self.tear_after
            for src, dst, limit in (
                (downstream, upstream, None),
                (upstream, downstream, tear),
            ):
                thread = threading.Thread(
                    target=self._pump, args=(src, dst, limit), daemon=True
                )
                thread.start()
                self._threads.append(thread)

    def _pump(self, src, dst, tear_limit) -> None:
        forwarded = 0
        try:
            while not self._stop.is_set():
                data = src.recv(4096)
                if not data:
                    break
                if tear_limit is not None and forwarded + len(data) >= tear_limit:
                    dst.sendall(data[: tear_limit - forwarded])
                    break  # tear: close both mid-frame
                dst.sendall(data)
                forwarded += len(data)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                with contextlib.suppress(OSError):
                    sock.close()

    def close(self) -> None:
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()


class TestTornFrame:
    def test_replica_recovers_from_a_frame_cut_midway(
        self, primary, make_replica
    ):
        db, server = primary
        # 701 bytes lands inside some WAL_RECORDS frame body (frames here
        # are hundreds of bytes; any non-boundary offset works).
        proxy = _TearingProxy(server.host, server.port, tear_after=701)
        try:
            apply_ops(db, workload_ops(inserts=12))
            replica = make_replica(proxy.url)
            _caught_up(db, replica)
            assert fingerprint(replica.database) == fingerprint(db)
            # Recovery path was reconnect + retransmit, never anti-entropy:
            # a torn frame is a transport fault, not divergence.
            assert REGISTRY.counter("replication.reconnects").value >= 1
            assert REGISTRY.counter("replication.resyncs").value == 0
        finally:
            proxy.close()


class TestReplicaRestartMidStream:
    def test_reopened_replica_resumes_from_its_watermark(
        self, primary, tmp_path
    ):
        from repro.replication import ReplicaDatabase

        db, server = primary
        apply_ops(db, workload_ops(inserts=40))
        wal_dir = str(tmp_path / "mid-restart")
        replica = ReplicaDatabase(
            server.url, wal_dir, name="mid-restart", stall_timeout_seconds=3.0
        )
        try:
            # Stop somewhere mid-stream — whatever had been applied stays.
            assert replica.wait_for_lsn(1, timeout=10)
        finally:
            replica.close()

        reopened = ReplicaDatabase(
            server.url, wal_dir, name="mid-restart", stall_timeout_seconds=3.0
        )
        try:
            resumed_from = reopened.watermark
            _caught_up(db, reopened)
            assert fingerprint(reopened.database) == fingerprint(db)
            assert reopened.watermark >= resumed_from
        finally:
            reopened.close()


class TestCheckpointWhileTailing:
    def test_caught_up_subscriber_rides_through_truncation(
        self, primary, make_replica
    ):
        db, server = primary
        ops = workload_ops(inserts=10)
        apply_ops(db, ops[:8])
        replica = make_replica(server.url)
        _caught_up(db, replica)
        db.checkpoint()  # truncates the primary log under the subscriber
        apply_ops(db, ops[8:])
        _caught_up(db, replica)
        assert fingerprint(replica.database) == fingerprint(db)
        assert REGISTRY.counter("replication.resyncs").value == 0


def _force_stale_once(server, db):
    """Patch the server's source so its *next* ship attempt goes stale.

    This is the exact window a checkpoint-truncation race puts a lagging
    subscriber in: the streamer's mid-stream ``records_since`` raises
    ``StaleSubscriberError``. Returns an event set when it fired; later
    calls pass through untouched.
    """
    source = server.replication_source()
    real = source.records_since
    fired = threading.Event()

    def stale_once(lsn, max_bytes):
        if not fired.is_set():
            fired.set()
            raise StaleSubscriberError(
                "forced: checkpoint truncated past this subscriber",
                base_lsn=db.wal.base_lsn,
            )
        return real(lsn, max_bytes)

    source.records_since = stale_once
    return fired


class TestStaleMidStream:
    def test_tail_survives_mid_stream_truncation(self, primary, make_replica):
        """A mid-stream stale-subscriber error must not kill the tail
        thread: the replica runs anti-entropy and keeps replicating."""
        db, server = primary
        apply_ops(db, workload_ops(inserts=20))
        replica = make_replica(server.url, chunk_pages=2)
        _caught_up(db, replica)

        fired = _force_stale_once(server, db)
        assert fired.wait(timeout=5)

        db.insert("Student", {"name": "after-stale", "hobbies": {"Chess"}})
        _caught_up(db, replica)
        # A second round after the recovery completed: this write can only
        # arrive through a stream the recovered tail re-established, so a
        # thread that died (or stopped subscribing) fails here.
        db.insert("Student", {"name": "after-resync", "hobbies": {"Chess"}})
        _caught_up(db, replica)
        assert fingerprint(replica.database) == fingerprint(db)
        assert replica._thread is not None and replica._thread.is_alive()
        assert REGISTRY.counter("replication.resyncs").value == 1

    def test_in_band_sync_and_resubscribe_on_one_socket(self, primary):
        """After a mid-stream stale error the primary must accept the
        subscriber's SYNC and a fresh WAL_SUBSCRIBE on the *same* socket
        (it drops the dead cursor before the error frame goes out)."""
        db, server = primary
        apply_ops(db, workload_ops(inserts=12))
        sock = socket.create_connection((server.host, server.port), timeout=5)
        sock.settimeout(5.0)
        try:
            wire.write_frame(
                sock,
                wire.HELLO,
                {"protocol": wire.PROTOCOL_VERSION, "token": None},
            )
            kind, _payload = wire.read_frame(sock)
            assert kind == wire.OK
            wire.write_frame(
                sock,
                wire.WAL_SUBSCRIBE,
                {"from_lsn": db.wal.base_lsn, "name": "raw-subscriber"},
            )
            watermark = db.wal.base_lsn
            while watermark < db.wal.end_lsn:
                kind, payload = wire.read_frame(sock)
                if kind == wire.WAL_RECORDS:
                    watermark = payload["end_lsn"]
                    wire.write_frame(sock, wire.WAL_ACK, {"lsn": watermark})
                else:
                    assert kind == wire.HEARTBEAT

            fired = _force_stale_once(server, db)
            assert fired.wait(timeout=5)
            kind, payload = wire.read_frame(sock)
            while kind == wire.HEARTBEAT:
                kind, payload = wire.read_frame(sock)
            assert kind == wire.ERROR
            assert payload["code"] == "stale-subscriber"

            # Same socket: anti-entropy (claiming no pages ships them all,
            # possibly across several budgeted frames) ...
            wire.write_frame(
                sock,
                wire.SYNC,
                {"name": "raw-subscriber", "chunk_pages": 2, "files": {}},
            )
            lsn, more = None, True
            while more:
                kind, payload = wire.read_frame(sock)
                assert kind == wire.SYNC_PAGES
                lsn = payload["lsn"]
                more = bool(payload.get("more", False))

            # ... then an in-band re-subscribe that must be accepted and
            # must stream subsequent writes.
            wire.write_frame(
                sock,
                wire.WAL_SUBSCRIBE,
                {"from_lsn": lsn, "name": "raw-subscriber"},
            )
            db.insert("Student", {"name": "resumed", "hobbies": {"Chess"}})
            while True:
                kind, payload = wire.read_frame(sock)
                assert kind in (wire.WAL_RECORDS, wire.HEARTBEAT)
                if kind == wire.WAL_RECORDS:
                    break
        finally:
            sock.close()


class TestMerkleResync:
    def test_resync_ships_only_differing_ranges(self, primary, make_replica):
        db, server = primary
        apply_ops(db, workload_ops(inserts=40))
        replica = make_replica(server.url, chunk_pages=2)
        _caught_up(db, replica)
        replica.stop()

        # While the replica is down: new writes, then a checkpoint that
        # truncates history the replica never saw -> its watermark is
        # below the primary's base and tailing alone cannot catch up.
        for i in range(6):
            db.insert("Student", {"name": f"gap{i}", "hobbies": {"Chess"}})
        db.checkpoint()
        assert replica.watermark < db.wal.base_lsn

        replica.start()
        _caught_up(db, replica)
        assert fingerprint(replica.database) == fingerprint(db)
        assert REGISTRY.counter("replication.resyncs").value == 1

        db.storage.flush()
        total_chunks = sum(
            tree.chunk_count
            for tree in store_trees(db.storage.store, chunk_pages=2).values()
        )
        shipped = REGISTRY.counter("replication.sync_chunks_shipped").value
        assert 0 < shipped < total_chunks, (
            f"anti-entropy shipped {shipped} of {total_chunks} chunks — "
            "expected a strict subset (only the differing ranges)"
        )

    def test_resync_larger_than_one_frame_completes(self, tmp_path):
        """A diff bigger than the wire's frame cap must still sync: the
        primary splits SYNC_PAGES into budgeted frames instead of tripping
        the frame limit and retrying forever."""
        db = Database(wal_dir=str(tmp_path / "small-frame-primary"))
        # 16 KiB cap -> an 8 KiB sync budget that one base64'd 4 KiB page
        # (~5.5 KiB) nearly fills; any multi-page diff needs several frames.
        server = TcpQueryServer(
            db, heartbeat_seconds=0.1, max_frame_bytes=16384
        ).start()
        replica = None
        try:
            apply_ops(db, workload_ops(inserts=40))
            replica = ReplicaDatabase(
                server.url,
                str(tmp_path / "small-frame-replica"),
                name="small-frame",
                chunk_pages=2,
                stall_timeout_seconds=3.0,
                max_frame_bytes=16384,
            )
            _caught_up(db, replica)
            replica.stop()
            for i in range(8):
                db.insert("Student", {"name": f"gap{i}", "hobbies": {"Chess"}})
            db.checkpoint()
            assert replica.watermark < db.wal.base_lsn

            replica.start()
            _caught_up(db, replica)
            assert fingerprint(replica.database) == fingerprint(db)
            assert REGISTRY.counter("replication.resyncs").value == 1
            # Enough chunks travelled that one frame cannot have held them.
            assert (
                REGISTRY.counter("replication.sync_chunks_shipped").value >= 2
            )
        finally:
            if replica is not None:
                replica.close()
            server.stop(drain=False)
            db.wal.close()
