"""FailoverClient: routing, read-your-writes, circuit breaking, failover."""

from __future__ import annotations

import socket
import time

import pytest

from repro.client import RemoteClient
from repro.client.failover import FailoverClient
from repro.obs.metrics import REGISTRY
from repro.serving import QueryBackend, connect
from repro.server.net import TcpQueryServer
from repro.server.service import QueryService
from repro.storage.faults import RetryPolicy
from tests.wal.conftest import apply_ops, workload_ops

QUERY = 'select Student where hobbies has-subset ("Chess")'


def _dead_url() -> str:
    """A loopback URL nothing listens on."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"sigfile://127.0.0.1:{port}"


@pytest.fixture
def fleet(primary, make_replica):
    """Primary + one served replica: ``(db, primary_server, replica,
    replica_server)`` with the replica fully caught up."""
    db, server = primary
    apply_ops(db, workload_ops(inserts=10))
    replica = make_replica(server.url)
    assert replica.wait_for_lsn(db.wal.end_lsn, timeout=10)
    replica_server = TcpQueryServer(
        service=QueryService(replica.database, max_workers=2),
        heartbeat_seconds=0.1,
    ).start()
    yield db, server, replica, replica_server
    replica_server.stop(drain=False)


class TestConnectFactory:
    def test_url_list_opens_a_failover_client(self, fleet):
        db, server, replica, replica_server = fleet
        with connect([server.url, replica_server.url]) as client:
            assert isinstance(client, FailoverClient)
            assert isinstance(client, QueryBackend)

    def test_comma_string_opens_a_failover_client(self, fleet):
        db, server, replica, replica_server = fleet
        with connect(f"{server.url},{replica_server.url}") as client:
            assert isinstance(client, FailoverClient)
            assert client.url == f"{server.url},{replica_server.url}"

    def test_single_url_opens_a_remote_client(self, fleet):
        db, server, _replica, _replica_server = fleet
        with connect(server.url) as client:
            assert isinstance(client, RemoteClient)


class TestRouting:
    def test_plain_reads_prefer_replicas(self, fleet):
        db, server, replica, replica_server = fleet
        with FailoverClient([server.url, replica_server.url]) as client:
            result = client.execute(QUERY)
        local = QueryService(db, max_workers=1)
        try:
            baseline = local.execute(QUERY)
        finally:
            local.shutdown()
        assert result.rows == baseline.rows
        assert REGISTRY.counter("client.replica_reads").value >= 1
        assert REGISTRY.counter("client.primary_reads").value == 0

    def test_prefer_replicas_false_reads_from_primary(self, fleet):
        db, server, replica, replica_server = fleet
        client = FailoverClient(
            [server.url, replica_server.url], prefer_replicas=False
        )
        with client:
            client.execute(QUERY)
        assert REGISTRY.counter("client.primary_reads").value >= 1
        assert REGISTRY.counter("client.replica_reads").value == 0

    def test_prefer_replicas_false_pins_reads_despite_fleet_order(self, fleet):
        """Replicas are failover spares, never read targets — even when a
        replica is listed before the primary."""
        db, server, replica, replica_server = fleet
        client = FailoverClient(
            [replica_server.url, server.url], prefer_replicas=False
        )
        with client:
            client.execute(QUERY)
            client.execute(QUERY)
        assert REGISTRY.counter("client.primary_reads").value >= 2
        assert REGISTRY.counter("client.replica_reads").value == 0

    def test_writes_pin_to_the_primary(self, fleet):
        db, server, replica, replica_server = fleet
        with FailoverClient([server.url, replica_server.url]) as client:
            result = client.execute(QUERY, write=True)
        assert result.rows is not None

    def test_status_reports_both_roles(self, fleet):
        db, server, replica, replica_server = fleet
        with FailoverClient([server.url, replica_server.url]) as client:
            entries = {e["url"]: e for e in client.status()}
        assert entries[server.url]["role"] == "primary"
        assert entries[replica_server.url]["role"] == "replica"
        assert all(e["alive"] for e in entries.values())


class TestReadYourWrites:
    def test_token_read_observes_the_write(self, fleet):
        db, server, replica, replica_server = fleet
        with FailoverClient([server.url, replica_server.url]) as client:
            before = len(client.execute(QUERY).rows)
            db.insert("Student", {"name": "fresh", "hobbies": {"Chess"}})
            token = client.lsn_token()
            assert token == db.wal.end_lsn
            after = client.execute(QUERY, min_lsn=token)
        assert len(after.rows) == before + 1

    def test_stale_replica_falls_back_to_primary(self, primary, make_replica):
        """A token no replica has reached routes the read to the primary."""
        db, server = primary
        apply_ops(db, workload_ops(inserts=8))
        replica = make_replica(server.url)
        assert replica.wait_for_lsn(db.wal.end_lsn, timeout=10)
        replica.stop()  # freeze the watermark
        replica_server = TcpQueryServer(
            service=QueryService(replica.database, max_workers=1),
            heartbeat_seconds=0.1,
        ).start()
        try:
            client = FailoverClient(
                [server.url, replica_server.url],
                read_your_writes_timeout_seconds=0.3,
            )
            with client:
                db.insert("Student", {"name": "unseen", "hobbies": {"Chess"}})
                token = client.lsn_token()
                result = client.execute(QUERY, min_lsn=token)
            # The frozen replica cannot satisfy the token; the primary did.
            assert any("unseen" in str(row) for row in result.rows)
            assert REGISTRY.counter("client.primary_reads").value >= 1
        finally:
            replica_server.stop(drain=False)

    def test_stale_replica_listed_first_never_serves_a_token_read(
        self, primary, make_replica
    ):
        """Fleet order must not matter: with the below-token replica listed
        before the primary, the fallback still excludes it — a min_lsn read
        may never land on a replica known to be behind the token."""
        db, server = primary
        apply_ops(db, workload_ops(inserts=8))
        replica = make_replica(server.url)
        assert replica.wait_for_lsn(db.wal.end_lsn, timeout=10)
        replica.stop()  # freeze the watermark
        replica_server = TcpQueryServer(
            service=QueryService(replica.database, max_workers=1),
            heartbeat_seconds=0.1,
        ).start()
        try:
            client = FailoverClient(
                [replica_server.url, server.url],
                read_your_writes_timeout_seconds=0.3,
            )
            with client:
                db.insert("Student", {"name": "unseen", "hobbies": {"Chess"}})
                token = client.lsn_token()
                result = client.execute(QUERY, min_lsn=token)
            assert any("unseen" in str(row) for row in result.rows)
            assert REGISTRY.counter("client.replica_reads").value == 0
        finally:
            replica_server.stop(drain=False)


class TestCircuitBreaker:
    def test_dead_endpoint_trips_and_is_skipped(self, fleet):
        db, server, replica, replica_server = fleet
        dead = _dead_url()
        client = FailoverClient(
            [dead, server.url, replica_server.url],
            failure_threshold=1,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.01),
            connect_timeout_seconds=0.5,
        )
        with client:
            result = client.execute(QUERY)
            assert result.rows is not None
            (dead_ep,) = [e for e in client._endpoints if e.url == dead]
            assert dead_ep.consecutive_failures >= 1
            assert dead_ep.open_until > time.monotonic()
            # With the circuit open, requests keep succeeding (the dead
            # endpoint is excluded from routing while it cools down).
            client.execute(QUERY)
            assert dead_ep.open_until > time.monotonic()

    def test_all_endpoints_dead_raises_cleanly(self):
        from repro.errors import ConnectionLostError

        client = FailoverClient(
            [_dead_url(), _dead_url()],
            failure_threshold=1,
            retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
            connect_timeout_seconds=0.3,
        )
        with client:
            with pytest.raises(ConnectionLostError):
                client.execute(QUERY)


class TestFailover:
    def test_batch_survives_primary_kill_and_promotion(self, fleet):
        db, server, replica, replica_server = fleet
        client = FailoverClient(
            [server.url, replica_server.url],
            retry_policy=RetryPolicy(
                max_attempts=6, backoff_seconds=0.05, multiplier=2.0
            ),
        )
        with client:
            baseline = client.execute(QUERY, write=True)

            server.stop(drain=False)  # hard kill, no drain
            replica.stop()
            replica.promote()

            # Same client object, zero transport errors surfaced: the
            # batch must discover the promoted primary and complete.
            results = client.execute_many([QUERY] * 3)
            assert len(results) == 3
            for result in results:
                assert len(result.rows) == len(baseline.rows)
            assert REGISTRY.counter("client.failovers").value >= 1

            # Writes follow the promotion too.
            promoted_write = client.execute(QUERY, write=True)
            assert len(promoted_write.rows) == len(baseline.rows)
