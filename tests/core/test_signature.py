"""Tests for superimposed-coding set signatures and drop conditions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bits import BitVector
from repro.core.signature import SetPredicateKind, SignatureScheme
from repro.errors import ConfigurationError


@pytest.fixture
def scheme() -> SignatureScheme:
    return SignatureScheme(signature_bits=64, bits_per_element=3, seed=11)


class TestConstruction:
    def test_set_signature_is_or_of_elements(self, scheme):
        elements = ["Baseball", "Golf", "Fishing"]
        expected = BitVector(64)
        for element in elements:
            expected.or_with(scheme.element_signature(element))
        assert scheme.set_signature(elements) == expected

    def test_empty_set_signature_is_zero(self, scheme):
        assert scheme.set_signature([]).is_zero()

    def test_order_independent(self, scheme):
        assert scheme.set_signature(["a", "b"]) == scheme.set_signature(["b", "a"])

    def test_duplicates_ignored(self, scheme):
        assert scheme.set_signature(["a", "a"]) == scheme.set_signature(["a"])

    def test_query_signature_alias(self, scheme):
        assert scheme.query_signature(["x"]) == scheme.set_signature(["x"])

    def test_partial_query_signature(self, scheme):
        elements = ["a", "b", "c"]
        partial = scheme.partial_query_signature(elements, 2)
        assert partial == scheme.set_signature(elements[:2])

    def test_partial_query_signature_needs_elements(self, scheme):
        with pytest.raises(ConfigurationError):
            scheme.partial_query_signature([], 1)

    def test_scheme_equality(self):
        assert SignatureScheme(64, 2, seed=1) == SignatureScheme(64, 2, seed=1)
        assert SignatureScheme(64, 2) != SignatureScheme(64, 3)
        assert SignatureScheme(64, 2) != SignatureScheme(128, 2)

    def test_repr(self, scheme):
        assert "F=64" in repr(scheme)


class TestDropConditions:
    """No-false-dismissal guarantees, including the paper's Figure 1/2."""

    def test_superset_actual_drop(self, scheme):
        # target ⊇ query  =>  target signature covers query signature
        target = scheme.set_signature(["Baseball", "Golf", "Fishing"])
        query = scheme.query_signature(["Baseball", "Fishing"])
        assert scheme.is_drop_superset(target, query)

    def test_subset_actual_drop(self, scheme):
        target = scheme.set_signature(["Baseball", "Football"])
        query = scheme.query_signature(["Baseball", "Football", "Tennis"])
        assert scheme.is_drop_subset(target, query)

    def test_width_mismatch_raises(self, scheme):
        other = SignatureScheme(128, 3)
        with pytest.raises(ConfigurationError):
            scheme.is_drop_superset(other.set_signature(["a"]), scheme.set_signature(["a"]))

    def test_is_drop_dispatch_contains(self, scheme):
        target = scheme.set_signature(["a", "b"])
        query = scheme.query_signature(["a"])
        assert scheme.is_drop(SetPredicateKind.CONTAINS, target, query)
        assert scheme.is_drop(SetPredicateKind.HAS_SUBSET, target, query)

    def test_is_drop_equals(self, scheme):
        sig = scheme.set_signature(["a", "b"])
        assert scheme.is_drop(SetPredicateKind.EQUALS, sig, sig.copy())
        assert not scheme.is_drop(
            SetPredicateKind.EQUALS, sig, scheme.set_signature(["a"])
        )

    def test_is_drop_overlap(self, scheme):
        a = scheme.set_signature(["a", "b"])
        b = scheme.set_signature(["b", "c"])
        assert scheme.is_drop(SetPredicateKind.OVERLAPS, a, b)

    def test_overlap_with_empty_never_drops(self, scheme):
        empty = scheme.set_signature([])
        full = scheme.set_signature(["x"])
        assert not scheme.is_drop(SetPredicateKind.OVERLAPS, empty, full)
        assert not scheme.is_drop(SetPredicateKind.OVERLAPS, full, empty)

    def test_empty_query_superset_always_drops(self, scheme):
        target = scheme.set_signature(["a"])
        assert scheme.is_drop_superset(target, scheme.query_signature([]))

    def test_empty_target_subset_always_drops(self, scheme):
        query = scheme.query_signature(["a", "b"])
        assert scheme.is_drop_subset(scheme.set_signature([]), query)


class TestFigureScenarios:
    """The worked examples of the paper's Figures 1 and 2 with a tiny F.

    We rebuild the figures' spirit with our hash function: construct sets
    whose relationships force actual and false drops.
    """

    def test_false_drops_occur_for_superset(self):
        # With F=8 and m=2 collisions are plentiful: hunt a false drop.
        scheme = SignatureScheme(8, 2, seed=3)
        query = ["q0", "q1"]
        query_sig = scheme.query_signature(query)
        found_false = False
        for i in range(300):
            target = [f"t{i}a", f"t{i}b", f"t{i}c"]
            if scheme.is_drop_superset(scheme.set_signature(target), query_sig):
                assert not set(query) <= set(target)
                found_false = True
                break
        assert found_false, "tiny signatures must produce false drops"

    def test_false_drops_occur_for_subset(self):
        scheme = SignatureScheme(8, 2, seed=3)
        query = [f"q{i}" for i in range(5)]
        query_sig = scheme.query_signature(query)
        found_false = False
        for i in range(300):
            target = [f"t{i}a", f"t{i}b"]
            if scheme.is_drop_subset(scheme.set_signature(target), query_sig):
                assert not set(target) <= set(query)
                found_false = True
                break
        assert found_false


class TestPredicateKindEvaluate:
    def test_has_subset(self):
        assert SetPredicateKind.HAS_SUBSET.evaluate(
            frozenset("abc"), frozenset("ab")
        )
        assert not SetPredicateKind.HAS_SUBSET.evaluate(
            frozenset("ab"), frozenset("abc")
        )

    def test_in_subset(self):
        assert SetPredicateKind.IN_SUBSET.evaluate(
            frozenset("ab"), frozenset("abc")
        )
        assert not SetPredicateKind.IN_SUBSET.evaluate(
            frozenset("abd"), frozenset("abc")
        )

    def test_contains(self):
        assert SetPredicateKind.CONTAINS.evaluate(frozenset("ab"), frozenset("a"))

    def test_equals(self):
        assert SetPredicateKind.EQUALS.evaluate(frozenset("ab"), frozenset("ba"))
        assert not SetPredicateKind.EQUALS.evaluate(frozenset("a"), frozenset("ab"))

    def test_overlaps(self):
        assert SetPredicateKind.OVERLAPS.evaluate(frozenset("ab"), frozenset("bc"))
        assert not SetPredicateKind.OVERLAPS.evaluate(frozenset("a"), frozenset("b"))


_element = st.one_of(st.text(max_size=8), st.integers(-100, 100))


@settings(max_examples=100)
@given(
    target=st.frozensets(_element, max_size=10),
    query=st.frozensets(_element, max_size=10),
    seed=st.integers(0, 5),
)
def test_property_no_false_dismissals(target, query, seed):
    """If the sets satisfy the predicate, the signature test must drop."""
    scheme = SignatureScheme(96, 3, seed=seed)
    target_sig = scheme.set_signature(target)
    query_sig = scheme.query_signature(query)
    if target >= query:
        assert scheme.is_drop_superset(target_sig, query_sig)
    if target <= query:
        assert scheme.is_drop_subset(target_sig, query_sig)
    if target == query:
        assert scheme.is_drop(SetPredicateKind.EQUALS, target_sig, query_sig)
    if target & query:
        assert scheme.is_drop(SetPredicateKind.OVERLAPS, target_sig, query_sig)
