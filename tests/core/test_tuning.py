"""Tests for design-parameter tuning (§5, Appendix C)."""

import math

import pytest

from repro.core.tuning import (
    best_m_for_retrieval,
    dq_opt,
    optimal_query_elements,
    optimal_zero_slices,
)
from repro.errors import ConfigurationError


def _subset_rc(F, m, Dt, S, C, dq):
    """The Appendix C approximate cost RC(Dq) used for brute-force checks."""
    x = math.exp(-m * dq / F)
    return S * F * x + (1 - x) ** (m * Dt) * C


class TestDqOpt:
    def test_matches_brute_force_minimum(self):
        F, m, Dt, S = 500, 2, 10, 1
        C = 63 + 32_000  # SC_OID + Pu·N, the paper's resolution ceiling
        analytic = dq_opt(F, m, Dt, S, C)
        grid = min(range(1, 3000), key=lambda dq: _subset_rc(F, m, Dt, S, C, dq))
        assert abs(analytic - grid) <= 2.0

    def test_paper_scale_value_near_300(self):
        """§5.2.2 reads the minimum of the Dt=10, F=500, m=2 curve at
        Dq ≈ 300."""
        value = dq_opt(500, 2, 10, 1, 63 + 32_000)
        assert 200 <= value <= 420

    def test_larger_resolution_cost_pushes_dq_opt_down(self):
        cheap = dq_opt(500, 2, 10, 1, 1_000)
        pricey = dq_opt(500, 2, 10, 1, 100_000)
        assert pricey < cheap

    def test_degenerate_ratio_returns_infinity(self):
        # Slices cost more than resolving everything: never filter.
        assert math.isinf(dq_opt(500, 2, 1, 1_000, 1.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dq_opt(0, 2, 10, 1, 100)
        with pytest.raises(ConfigurationError):
            dq_opt(500, 0, 10, 1, 100)
        with pytest.raises(ConfigurationError):
            dq_opt(500, 2, 0, 1, 100)
        with pytest.raises(ConfigurationError):
            dq_opt(500, 2, 10, 0, 100)
        with pytest.raises(ConfigurationError):
            dq_opt(500, 1, 1, 1, 100)  # m·Dt must exceed 1


class TestOptimalZeroSlices:
    def test_equals_slices_at_dq_opt(self):
        F, m, Dt, S = 500, 2, 10, 1
        C = 63 + 32_000
        d_opt = dq_opt(F, m, Dt, S, C)
        k = optimal_zero_slices(F, m, Dt, S, C)
        assert k == round(F * math.exp(-m * d_opt / F))

    def test_within_bounds(self):
        k = optimal_zero_slices(500, 2, 10, 1, 63 + 32_000)
        assert 0 < k < 500

    def test_degenerate_returns_zero(self):
        assert optimal_zero_slices(500, 2, 1, 1_000, 1.0) == 0


class TestOptimalQueryElements:
    def test_picks_global_minimum(self):
        costs = {1: 10.0, 2: 4.0, 3: 6.0, 4: 9.0}
        assert optimal_query_elements(costs.__getitem__, 4) == 2

    def test_ties_prefer_fewer(self):
        costs = {1: 5.0, 2: 5.0, 3: 5.0}
        assert optimal_query_elements(costs.__getitem__, 3) == 1

    def test_single_element(self):
        assert optimal_query_elements(lambda k: 1.0, 1) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_query_elements(lambda k: 1.0, 0)


class TestBestMForRetrieval:
    def test_finds_minimum(self):
        costs = {1: 30.0, 2: 4.0, 3: 7.0, 4: 9.0, 5: 20.0}
        assert best_m_for_retrieval(costs.__getitem__, 5) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            best_m_for_retrieval(lambda m: 1.0, 0)
