"""Tests for the false-drop probability theory (paper §3.2, Appendix A)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.false_drop import (
    expected_weight,
    false_drop_partial_query,
    false_drop_partial_zero_slices,
    false_drop_subset,
    false_drop_superset,
    false_drop_superset_optimal,
    one_bit_probability,
    optimal_m_subset,
    optimal_m_superset,
    rounded_optimal_m,
)
from repro.core.signature import SignatureScheme
from repro.errors import ConfigurationError


class TestExpectedWeight:
    def test_exact_form(self):
        # F(1 - (1-m/F)^D) exactly
        assert expected_weight(100, 10, 1, exact=True) == pytest.approx(10.0)
        assert expected_weight(100, 10, 2, exact=True) == pytest.approx(19.0)

    def test_approximation_close_for_small_m_over_f(self):
        exact = expected_weight(500, 2, 10, exact=True)
        approx = expected_weight(500, 2, 10)
        assert abs(exact - approx) / exact < 0.01

    def test_zero_cardinality(self):
        assert expected_weight(100, 5, 0) == 0.0

    def test_monotone_in_cardinality(self):
        weights = [expected_weight(500, 2, d) for d in range(0, 50)]
        assert all(a < b for a, b in zip(weights, weights[1:]))

    def test_bounded_by_f(self):
        assert expected_weight(100, 10, 10_000) <= 100.0

    def test_one_bit_probability(self):
        assert one_bit_probability(100, 10, 1, exact=True) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_weight(0, 1, 1)
        with pytest.raises(ConfigurationError):
            expected_weight(10, 0, 1)
        with pytest.raises(ConfigurationError):
            expected_weight(10, 11, 1)
        with pytest.raises(ConfigurationError):
            expected_weight(10, 1, -1)


class TestSupersetFalseDrop:
    def test_equation_2_formula(self):
        F, m, Dt, Dq = 500, 2, 10, 3
        expected = (1 - math.exp(-m * Dt / F)) ** (m * Dq)
        assert false_drop_superset(F, m, Dt, Dq) == pytest.approx(expected)

    def test_probability_range(self):
        for Dq in range(0, 20):
            fd = false_drop_superset(250, 2, 10, Dq)
            assert 0.0 <= fd <= 1.0

    def test_decreasing_in_dq(self):
        values = [false_drop_superset(500, 2, 10, dq) for dq in range(1, 10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_increasing_in_dt(self):
        values = [false_drop_superset(500, 2, dt, 3) for dt in range(1, 30)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_empty_query_drops_everything(self):
        assert false_drop_superset(500, 2, 10, 0) == 1.0

    def test_equation_4_at_m_opt(self):
        F, Dt, Dq = 500, 10, 3
        m_opt = F * math.log(2) / Dt
        direct = false_drop_superset_optimal(F, Dt, Dq)
        assert direct == pytest.approx(0.5 ** (m_opt * Dq))

    def test_m_opt_minimizes_continuousized(self):
        """Integer m near m_opt must beat integers further away."""
        F, Dt, Dq = 500, 10, 2
        m_opt = optimal_m_superset(F, Dt)
        at_opt = false_drop_superset(F, round(m_opt), Dt, Dq)
        assert at_opt < false_drop_superset(F, max(1, round(m_opt) - 15), Dt, Dq)
        assert at_opt < false_drop_superset(F, round(m_opt) + 15, Dt, Dq)

    def test_negative_cardinality_raises(self):
        with pytest.raises(ConfigurationError):
            false_drop_superset(100, 2, -1, 1)


class TestSubsetFalseDrop:
    def test_equation_6_formula(self):
        F, m, Dt, Dq = 500, 2, 10, 100
        expected = (1 - math.exp(-m * Dq / F)) ** (m * Dt)
        assert false_drop_subset(F, m, Dt, Dq) == pytest.approx(expected)

    def test_symmetry_with_superset(self):
        """Eq. (6) is eq. (2) with Dt and Dq exchanged."""
        assert false_drop_subset(500, 2, 10, 100) == pytest.approx(
            false_drop_superset(500, 2, 100, 10)
        )

    def test_increasing_in_dq(self):
        values = [false_drop_subset(500, 2, 10, dq) for dq in (10, 50, 100, 500)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_approaches_one_for_huge_queries(self):
        assert false_drop_subset(500, 2, 10, 10_000) > 0.99

    def test_empty_target_drops_everything(self):
        assert false_drop_subset(500, 2, 0, 10) == 1.0

    def test_optimal_m_subset(self):
        assert optimal_m_subset(500, 100) == pytest.approx(
            500 * math.log(2) / 100
        )


class TestPartialForms:
    def test_partial_zero_slices_appendix_a(self):
        F, m, Dt, k = 500, 2, 10, 100
        assert false_drop_partial_zero_slices(F, m, Dt, k) == pytest.approx(
            (1 - k / F) ** (m * Dt)
        )

    def test_partial_zero_slices_extremes(self):
        assert false_drop_partial_zero_slices(500, 2, 10, 0) == 1.0
        assert false_drop_partial_zero_slices(500, 2, 10, 500) == 0.0

    def test_partial_zero_slices_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            false_drop_partial_zero_slices(500, 2, 10, 501)
        with pytest.raises(ConfigurationError):
            false_drop_partial_zero_slices(500, 2, 10, -1)

    def test_partial_zero_slices_empty_target(self):
        assert false_drop_partial_zero_slices(500, 2, 0, 10) == 1.0

    def test_partial_query_equals_smaller_dq(self):
        assert false_drop_partial_query(500, 2, 10, 2) == pytest.approx(
            false_drop_superset(500, 2, 10, 2)
        )


class TestRoundedOptimalM:
    def test_paper_design_points(self):
        assert rounded_optimal_m(250, 10) == 17
        assert rounded_optimal_m(500, 10) == 35
        assert rounded_optimal_m(1000, 100) == 7
        assert rounded_optimal_m(2500, 100) == 17

    def test_floor_at_minimum(self):
        assert rounded_optimal_m(10, 1000) == 1
        assert rounded_optimal_m(10, 1000, minimum=2) == 2

    def test_cap_at_f(self):
        assert rounded_optimal_m(4, 1) <= 4


class TestMonteCarloAgreement:
    """The formulas must predict the measured false-drop rate of the real
    hashing scheme within sampling error."""

    def _measure_superset(self, F, m, Dt, Dq, trials=3000, seed=1):
        scheme = SignatureScheme(F, m, seed=seed)
        rng = random.Random(seed)
        domain = range(100_000)
        query = rng.sample(domain, Dq)
        query_sig = scheme.query_signature(query)
        drops = 0
        for _ in range(trials):
            target = rng.sample(domain, Dt)
            if set(query) <= set(target):
                continue  # actual drop, excluded by Fd's definition
            if scheme.is_drop_superset(scheme.set_signature(target), query_sig):
                drops += 1
        return drops / trials

    def test_superset_rate_matches_formula(self):
        F, m, Dt, Dq = 64, 2, 10, 2
        predicted = false_drop_superset(F, m, Dt, Dq, exact=True)
        measured = self._measure_superset(F, m, Dt, Dq)
        sigma = math.sqrt(predicted * (1 - predicted) / 3000)
        assert abs(measured - predicted) < max(5 * sigma, 0.25 * predicted)

    def test_subset_rate_matches_formula(self):
        F, m, Dt, Dq, trials = 64, 2, 4, 30, 3000
        scheme = SignatureScheme(F, m, seed=2)
        rng = random.Random(2)
        domain = range(100_000)
        query = rng.sample(domain, Dq)
        query_sig = scheme.query_signature(query)
        drops = 0
        for _ in range(trials):
            target = rng.sample(domain, Dt)
            if set(target) <= set(query):
                continue
            if scheme.is_drop_subset(scheme.set_signature(target), query_sig):
                drops += 1
        predicted = false_drop_subset(F, m, Dt, Dq, exact=True)
        measured = drops / trials
        sigma = math.sqrt(predicted * (1 - predicted) / trials)
        assert abs(measured - predicted) < max(5 * sigma, 0.25 * predicted)


@settings(max_examples=100)
@given(
    F=st.integers(min_value=8, max_value=2500),
    m=st.integers(min_value=1, max_value=8),
    Dt=st.integers(min_value=0, max_value=200),
    Dq=st.integers(min_value=0, max_value=200),
)
def test_property_probabilities_in_range(F, m, Dt, Dq):
    for exact in (False, True):
        assert 0.0 <= false_drop_superset(F, m, Dt, Dq, exact=exact) <= 1.0
        assert 0.0 <= false_drop_subset(F, m, Dt, Dq, exact=exact) <= 1.0
    assert 0.0 <= expected_weight(F, m, Dt) <= F
