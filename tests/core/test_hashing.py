"""Tests for element-signature hashing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import ElementHasher, stable_element_key
from repro.errors import ConfigurationError


class TestStableElementKey:
    def test_type_tags_prevent_collisions(self):
        # "1", 1, 1.0, True and b"1" must all encode differently.
        keys = {
            stable_element_key("1"),
            stable_element_key(1),
            stable_element_key(1.0),
            stable_element_key(True),
            stable_element_key(b"1"),
        }
        assert len(keys) == 5

    def test_deterministic(self):
        assert stable_element_key("Baseball") == stable_element_key("Baseball")

    def test_tuple_encoding_nested(self):
        a = stable_element_key(("a", 1))
        b = stable_element_key(("a", 2))
        assert a != b

    def test_tuple_structure_matters(self):
        assert stable_element_key(("ab",)) != stable_element_key(("a", "b"))

    def test_unsupported_type_raises(self):
        with pytest.raises(ConfigurationError):
            stable_element_key([1, 2])

    def test_oid_elements_supported(self):
        """OID sets are the paper's primary use case (Student.courses)."""
        from repro.objects.oid import OID

        a = stable_element_key(OID(2, 1))
        b = stable_element_key(OID(2, 2))
        assert a != b
        assert a == stable_element_key(OID(2, 1))

    def test_bool_distinct_from_int(self):
        assert stable_element_key(True) != stable_element_key(1)
        assert stable_element_key(False) != stable_element_key(0)


class TestElementHasher:
    def test_exactly_m_distinct_positions(self):
        hasher = ElementHasher(64, 4)
        for element in ("Baseball", "Fishing", 42, 3.5, b"x"):
            positions = hasher.positions(element)
            assert len(positions) == 4
            assert len(set(positions)) == 4
            assert all(0 <= p < 64 for p in positions)
            assert positions == sorted(positions)

    def test_deterministic_across_instances(self):
        a = ElementHasher(500, 2, seed=9)
        b = ElementHasher(500, 2, seed=9)
        assert a.positions("Tennis") == b.positions("Tennis")

    def test_seed_changes_positions(self):
        base = ElementHasher(500, 3, seed=0)
        other = ElementHasher(500, 3, seed=1)
        differing = sum(
            base.positions(f"e{i}") != other.positions(f"e{i}") for i in range(50)
        )
        assert differing > 40  # overwhelming majority must differ

    def test_signature_weight(self):
        hasher = ElementHasher(128, 5)
        sig = hasher.element_signature("anything")
        assert sig.popcount() == 5
        assert sig.nbits == 128

    def test_m_equal_f_sets_every_bit(self):
        hasher = ElementHasher(7, 7)
        assert hasher.element_signature("x").popcount() == 7

    def test_m_one(self):
        hasher = ElementHasher(500, 1)
        assert len(hasher.positions("y")) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ElementHasher(0, 1)
        with pytest.raises(ConfigurationError):
            ElementHasher(10, 0)
        with pytest.raises(ConfigurationError):
            ElementHasher(10, 11)

    def test_uniformity_rough(self):
        """1s should be roughly uniform over positions (paper's assumption)."""
        F, m, n = 100, 2, 3000
        hasher = ElementHasher(F, m)
        counts = [0] * F
        for i in range(n):
            for pos in hasher.positions(i):
                counts[pos] += 1
        expected = n * m / F
        # Each count is Binomial(n, m/F); allow 5 sigma.
        sigma = math.sqrt(n * (m / F) * (1 - m / F))
        assert all(abs(c - expected) < 5 * sigma for c in counts)

    def test_repr(self):
        assert "F=64" in repr(ElementHasher(64, 2))


@settings(max_examples=80)
@given(
    F=st.integers(min_value=1, max_value=600),
    data=st.data(),
    element=st.one_of(
        st.text(max_size=20),
        st.integers(),
        st.binary(max_size=12),
        st.floats(allow_nan=False),
    ),
)
def test_property_positions_valid(F, data, element):
    m = data.draw(st.integers(min_value=1, max_value=F))
    hasher = ElementHasher(F, m)
    positions = hasher.positions(element)
    assert len(positions) == m == len(set(positions))
    assert all(0 <= p < F for p in positions)
    # determinism
    assert hasher.positions(element) == positions
