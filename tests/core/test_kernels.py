"""Unit tests for the packed-word batch kernels."""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.bits import BitVector


def pack_bits(bits):
    """Pack a python 0/1 list into uint64 words (reference layout)."""
    arr = np.packbits(np.array(bits, dtype=np.uint8), bitorder="little")
    nwords = kernels.words_for_bits(len(bits))
    padded = np.zeros(nwords * 8, dtype=np.uint8)
    padded[: len(arr)] = arr
    return padded.view(np.uint64).copy()


class TestMasks:
    @pytest.mark.parametrize("nbits", [0, 1, 63, 64, 65, 100, 128, 500])
    def test_ones_mask_sets_exactly_nbits(self, nbits):
        nwords = max(kernels.words_for_bits(nbits), 2)
        mask = kernels.ones_mask(nbits, nwords)
        assert list(kernels.set_bit_indices(mask, nwords * 64)) == list(range(nbits))

    def test_ones_mask_clamped_to_nwords(self):
        mask = kernels.ones_mask(500, 2)  # 500 bits don't fit 2 words
        assert mask.tolist() == [2**64 - 1] * 2


class TestAccumulate:
    def test_and_or_match_boolean_semantics(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 2, size=200)
        b = rng.integers(0, 2, size=200)
        pa, pb = pack_bits(a), pack_bits(b)
        acc = pa.copy()
        kernels.and_into(acc, pb)
        assert list(kernels.set_bit_indices(acc, 200)) == list(
            np.nonzero(a & b)[0]
        )
        acc = pa.copy()
        kernels.or_into(acc, pb)
        assert list(kernels.set_bit_indices(acc, 200)) == list(
            np.nonzero(a | b)[0]
        )

    def test_any_bit_and_covers_all(self):
        zero = np.zeros(3, dtype=np.uint64)
        assert not kernels.any_bit(zero)
        mask = kernels.ones_mask(130, 3)
        assert kernels.any_bit(mask)
        assert kernels.covers_all(mask, mask)
        partial = mask.copy()
        partial[0] = np.uint64(1)
        assert not kernels.covers_all(partial, mask)
        # extra bits beyond the mask don't matter
        extra = mask.copy()
        extra[2] |= np.uint64(1 << 10)
        assert kernels.covers_all(extra, mask)

    def test_empty_arrays(self):
        empty = np.zeros(0, dtype=np.uint64)
        assert not kernels.any_bit(empty)
        assert kernels.covers_all(empty, empty)
        assert kernels.set_bit_indices(empty, 0).size == 0
        assert kernels.cleared_bit_indices(empty, 0).size == 0


class TestIndexExtraction:
    @pytest.mark.parametrize("nbits", [1, 64, 65, 127, 500])
    def test_set_and_cleared_partition_range(self, nbits):
        rng = np.random.default_rng(nbits)
        bits = rng.integers(0, 2, size=nbits)
        words = pack_bits(bits)
        ones = list(kernels.set_bit_indices(words, nbits))
        zeros = list(kernels.cleared_bit_indices(words, nbits))
        assert ones == list(np.nonzero(bits)[0])
        assert sorted(ones + zeros) == list(range(nbits))

    def test_truncates_to_nbits(self):
        words = np.array([2**64 - 1], dtype=np.uint64)
        assert list(kernels.set_bit_indices(words, 5)) == [0, 1, 2, 3, 4]


class TestRowKernels:
    @pytest.mark.parametrize("nbits", [60, 64, 130, 500])
    def test_pack_unpack_roundtrip(self, nbits):
        rng = np.random.default_rng(nbits)
        rows = rng.integers(0, 2, size=(17, nbits)).astype(np.uint8)
        packed = kernels.pack_rows(rows)
        assert packed.shape == (17, kernels.words_for_bits(nbits))
        assert np.array_equal(kernels.unpack_rows(packed, nbits), rows)

    def test_row_predicates_match_bitvector(self):
        rng = np.random.default_rng(3)
        nbits = 170
        rows = rng.integers(0, 2, size=(40, nbits)).astype(np.uint8)
        qbits = rng.integers(0, 2, size=nbits).astype(np.uint8)
        matrix = kernels.pack_rows(rows)
        query = BitVector.from_positions(nbits, np.nonzero(qbits)[0])
        zero_mask = pack_bits(1 - qbits)
        targets = [
            BitVector.from_positions(nbits, np.nonzero(r)[0]) for r in rows
        ]
        covering = kernels.rows_covering(matrix, query.words)
        disjoint = kernels.rows_disjoint_from(matrix, zero_mask)
        intersecting = kernels.rows_intersecting(matrix, query.words)
        for i, target in enumerate(targets):
            assert covering[i] == target.covers(query)
            assert disjoint[i] == query.covers(target)
            assert intersecting[i] == target.intersects(query)

    def test_empty_matrix(self):
        matrix = np.zeros((0, 3), dtype=np.uint64)
        q = np.zeros(3, dtype=np.uint64)
        assert kernels.rows_covering(matrix, q).shape == (0,)
        assert kernels.rows_disjoint_from(matrix, q).shape == (0,)
        assert kernels.rows_intersecting(matrix, q).shape == (0,)
