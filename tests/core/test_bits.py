"""Tests for the packed bit-vector primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bits import (
    BitVector,
    popcount_words,
    rows_covered_by,
    rows_covering,
    stack_vectors,
    words_for_bits,
)
from repro.errors import ConfigurationError


class TestWordsForBits:
    def test_exact_multiple(self):
        assert words_for_bits(128) == 2

    def test_rounds_up(self):
        assert words_for_bits(65) == 2

    def test_one_bit(self):
        assert words_for_bits(1) == 1

    def test_zero_bits(self):
        assert words_for_bits(0) == 0

    def test_negative_raises(self):
        with pytest.raises(ConfigurationError):
            words_for_bits(-1)


class TestConstruction:
    def test_new_vector_is_zero(self):
        vec = BitVector(100)
        assert vec.popcount() == 0
        assert vec.is_zero()

    def test_zero_length_raises(self):
        with pytest.raises(ConfigurationError):
            BitVector(0)

    def test_from_positions(self):
        vec = BitVector.from_positions(10, [0, 3, 9])
        assert vec.set_positions() == [0, 3, 9]

    def test_from_bitstring_matches_paper_notation(self):
        # "01000100" is the Baseball element signature of Figure 1.
        vec = BitVector.from_bitstring("01000100")
        assert vec.set_positions() == [1, 5]
        assert vec.to_bitstring() == "01000100"

    def test_from_bitstring_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            BitVector.from_bitstring("01x0")

    def test_from_bitstring_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BitVector.from_bitstring("")

    def test_backing_array_shape_enforced(self):
        with pytest.raises(ConfigurationError):
            BitVector(100, np.zeros(1, dtype=np.uint64))

    def test_backing_array_dtype_enforced(self):
        with pytest.raises(ConfigurationError):
            BitVector(64, np.zeros(1, dtype=np.int64))

    def test_copy_is_independent(self):
        vec = BitVector.from_positions(70, [68])
        clone = vec.copy()
        clone.set_bit(1)
        assert not vec.get_bit(1)
        assert clone.get_bit(68)


class TestBitAccess:
    def test_set_get_clear(self):
        vec = BitVector(130)
        vec.set_bit(129)
        assert vec.get_bit(129)
        vec.clear_bit(129)
        assert not vec.get_bit(129)

    def test_getitem(self):
        vec = BitVector.from_positions(8, [2])
        assert vec[2] and not vec[3]

    def test_out_of_range_raises(self):
        vec = BitVector(8)
        for pos in (-1, 8, 100):
            with pytest.raises(IndexError):
                vec.set_bit(pos)
            with pytest.raises(IndexError):
                vec.get_bit(pos)

    def test_zero_positions_complement(self):
        vec = BitVector.from_positions(10, [1, 5])
        assert vec.zero_positions() == [0, 2, 3, 4, 6, 7, 8, 9]

    def test_iter_bits(self):
        vec = BitVector.from_bitstring("0110")
        assert list(vec.iter_bits()) == [False, True, True, False]


class TestBulkOperations:
    def test_or_is_superimposition(self):
        a = BitVector.from_bitstring("01000100")
        b = BitVector.from_bitstring("00010100")
        assert (a | b).to_bitstring() == "01010100"  # Figure 1 query sig

    def test_or_with_mutates(self):
        a = BitVector.from_positions(16, [0])
        a.or_with(BitVector.from_positions(16, [15]))
        assert a.set_positions() == [0, 15]

    def test_and(self):
        a = BitVector.from_bitstring("1100")
        b = BitVector.from_bitstring("0110")
        assert (a & b).to_bitstring() == "0100"

    def test_invert_respects_tail(self):
        vec = BitVector(70)
        inverted = ~vec
        assert inverted.popcount() == 70
        inverted.check_invariants()

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            BitVector(8) | BitVector(9)
        with pytest.raises(ConfigurationError):
            BitVector(8).covers(BitVector(16))

    def test_covers_reflexive(self):
        vec = BitVector.from_positions(32, [1, 17, 31])
        assert vec.covers(vec)

    def test_covers_superset(self):
        big = BitVector.from_positions(32, [1, 2, 3])
        small = BitVector.from_positions(32, [2])
        assert big.covers(small)
        assert not small.covers(big)

    def test_everything_covers_zero(self):
        assert BitVector(16).covers(BitVector(16))
        assert BitVector.from_positions(16, [3]).covers(BitVector(16))

    def test_intersects(self):
        a = BitVector.from_positions(64, [10])
        b = BitVector.from_positions(64, [10, 20])
        c = BitVector.from_positions(64, [20])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_popcount_across_words(self):
        vec = BitVector.from_positions(200, [0, 63, 64, 127, 128, 199])
        assert vec.popcount() == 6

    def test_popcount_words_helper(self):
        words = np.array([0xFF, 0x1], dtype=np.uint64)
        assert popcount_words(words) == 9


class TestSerialization:
    def test_bytes_roundtrip(self):
        vec = BitVector.from_positions(100, [0, 50, 99])
        again = BitVector.from_bytes(100, vec.to_bytes())
        assert again == vec

    def test_from_bytes_length_checked(self):
        with pytest.raises(ConfigurationError):
            BitVector.from_bytes(100, b"\x00" * 3)

    def test_from_bytes_masks_tail(self):
        # All-ones input: tail bits beyond nbits must be cleared.
        vec = BitVector.from_bytes(70, b"\xff" * 16)
        assert vec.popcount() == 70
        vec.check_invariants()

    def test_equality_and_hash(self):
        a = BitVector.from_positions(64, [1, 2])
        b = BitVector.from_positions(64, [1, 2])
        assert a == b and hash(a) == hash(b)
        assert a != BitVector.from_positions(64, [1, 3])
        assert a != "not a vector"

    def test_repr_small_and_large(self):
        assert "0100" in repr(BitVector.from_bitstring("0100"))
        assert "weight=2" in repr(BitVector.from_positions(100, [1, 2]))


class TestMatrixHelpers:
    def _matrix(self):
        vectors = [
            BitVector.from_bitstring("1100"),
            BitVector.from_bitstring("0110"),
            BitVector.from_bitstring("1111"),
        ]
        return stack_vectors(vectors)

    def test_stack_empty(self):
        assert stack_vectors([]).shape == (0, 0)

    def test_stack_mismatched_raises(self):
        with pytest.raises(ConfigurationError):
            stack_vectors([BitVector(8), BitVector(9)])

    def test_rows_covering(self):
        query = BitVector.from_bitstring("0100")
        assert rows_covering(self._matrix(), query).tolist() == [0, 1, 2]
        query2 = BitVector.from_bitstring("1100")
        assert rows_covering(self._matrix(), query2).tolist() == [0, 2]

    def test_rows_covered_by(self):
        query = BitVector.from_bitstring("1110")
        assert rows_covered_by(self._matrix(), query).tolist() == [0, 1]

    def test_rows_empty_matrix(self):
        empty = np.zeros((0, 1), dtype=np.uint64)
        assert rows_covering(empty, BitVector(4)).size == 0
        assert rows_covered_by(empty, BitVector(4)).size == 0


@settings(max_examples=60)
@given(
    nbits=st.integers(min_value=1, max_value=300),
    data=st.data(),
)
def test_property_roundtrip_and_popcount(nbits, data):
    positions = data.draw(
        st.sets(st.integers(min_value=0, max_value=nbits - 1), max_size=nbits)
    )
    vec = BitVector.from_positions(nbits, positions)
    assert vec.popcount() == len(positions)
    assert vec.set_positions() == sorted(positions)
    assert BitVector.from_bytes(nbits, vec.to_bytes()) == vec
    assert BitVector.from_bitstring(vec.to_bitstring()) == vec
    vec.check_invariants()


@settings(max_examples=60)
@given(
    nbits=st.integers(min_value=1, max_value=200),
    data=st.data(),
)
def test_property_cover_matches_set_inclusion(nbits, data):
    a_positions = data.draw(st.sets(st.integers(0, nbits - 1)))
    b_positions = data.draw(st.sets(st.integers(0, nbits - 1)))
    a = BitVector.from_positions(nbits, a_positions)
    b = BitVector.from_positions(nbits, b_positions)
    assert a.covers(b) == (set(b_positions) <= set(a_positions))
    assert a.intersects(b) == bool(set(a_positions) & set(b_positions))
    assert (a | b).set_positions() == sorted(set(a_positions) | set(b_positions))
    assert (a & b).set_positions() == sorted(set(a_positions) & set(b_positions))
