"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.objects.database import Database
from repro.objects.schema import ClassSchema


@pytest.fixture
def database() -> Database:
    """Empty unbuffered database (paper's no-cache cost model)."""
    return Database(page_size=4096, pool_capacity=0)


@pytest.fixture
def student_db(database: Database) -> Database:
    """Database with the Student class defined (no data, no indexes)."""
    database.define_class(
        ClassSchema.build("Student", name="scalar", hobbies="set")
    )
    return database


HOBBIES = [
    "Baseball", "Fishing", "Tennis", "Football", "Golf", "Chess",
    "Photography", "Climbing", "Cycling", "Painting", "Cooking", "Sailing",
]


def populate_students(db: Database, count: int = 120, per_student: int = 3,
                      seed: int = 5) -> list:
    """Insert ``count`` students with random hobby sets; returns OIDs."""
    rng = random.Random(seed)
    oids = []
    for i in range(count):
        hobbies = set(rng.sample(HOBBIES, per_student))
        oids.append(
            db.insert("Student", {"name": f"s{i:03d}", "hobbies": hobbies})
        )
    return oids


@pytest.fixture
def populated_db(student_db: Database) -> Database:
    populate_students(student_db)
    return student_db
