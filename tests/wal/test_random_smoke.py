"""Randomized WAL smoke: seeded chaos at the log layer, exact recovery.

CI runs this with a fresh ``FAULTS_RANDOM_SEED`` each time (printed by
``tools/check.sh``); set the variable to replay a failure exactly. Without
it a fixed default keeps local runs deterministic.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import SimulatedCrashError
from repro.objects.database import Database
from repro.obs.metrics import REGISTRY
from repro.recovery import run_fsck
from repro.storage import FaultRule, RetryPolicy
from repro.storage.faults import with_retries
from repro.wal.log import WAL_FILE_NAME, scan_wal
from tests.wal.conftest import (
    apply_ops,
    baseline_fingerprints,
    fingerprint,
    workload_ops,
)

SEED = int(os.environ.get("FAULTS_RANDOM_SEED", "1993"))

RETRIES = RetryPolicy(max_attempts=6)


def test_random_crash_points_recover_exactly(tmp_path_factory):
    """Random clean/torn crashes at random appends: durable prefix, always."""
    rng = random.Random(SEED)
    ops = workload_ops()
    base = baseline_fingerprints(ops)
    for round_no in range(4):
        kind = rng.choice(["crash", "torn"])
        at_call = rng.randrange(1, len(ops) + 1)
        wal_dir = str(tmp_path_factory.mktemp(f"round{round_no}"))
        db = Database(wal_dir=wal_dir)
        db.attach_fault_injector(
            rules=[FaultRule("wal-append", kind, at_call=at_call)]
        )
        with pytest.raises(SimulatedCrashError):
            apply_ops(db, ops)
        db.detach_fault_injector()
        db.close()

        durable = len(scan_wal(os.path.join(wal_dir, WAL_FILE_NAME)).records)
        recovered = Database.open(wal_dir)
        assert fingerprint(recovered) == base[durable], (
            f"seed {SEED}: round {round_no} ({kind} @{at_call}) lost state"
        )
        assert run_fsck(recovered, deep=True).ok, f"seed {SEED}: fsck dirty"
        recovered.close()


def test_random_transient_wal_faults_are_retryable(tmp_path):
    """Transient append faults happen before any byte is written: retry-safe."""
    rng = random.Random(SEED)
    ops = workload_ops()
    fault_at = sorted(rng.sample(range(1, len(ops) + 1), 3))
    db = Database(wal_dir=str(tmp_path))
    db.attach_fault_injector(
        rules=[
            FaultRule("wal-append", "transient", at_call=at) for at in fault_at
        ]
    )
    for _, op in ops:
        with_retries(lambda: op(db), RETRIES)
    db.detach_fault_injector()
    assert REGISTRY.counter("storage.retries").value == len(fault_at)
    expected = fingerprint(db)
    assert expected == baseline_fingerprints(ops)[len(ops)], (
        f"seed {SEED}: retried workload diverged from baseline"
    )
    db.close()
    recovered = Database.open(str(tmp_path))
    assert fingerprint(recovered) == expected, f"seed {SEED}: recovery diverged"
    recovered.close()
