"""CLI surface: ``sigfile-repro wal inspect|truncate`` and ``fsck --wal-dir``."""

from __future__ import annotations

import json
import os

from repro.cli import main
from repro.objects.database import Database
from repro.wal.log import WAL_FILE_NAME, scan_wal
from tests.wal.conftest import apply_ops, workload_ops


def make_wal_dir(tmp_path, ops_count: int = 8) -> str:
    wal_dir = str(tmp_path)
    db = Database(wal_dir=wal_dir)
    apply_ops(db, workload_ops()[:ops_count])
    db.close()
    return wal_dir


def corrupt_interior(wal_dir: str, record_index: int) -> int:
    """Flip a payload byte of one interior record; returns its lsn."""
    path = os.path.join(wal_dir, WAL_FILE_NAME)
    victim = scan_wal(path).records[record_index]
    offset = 16 + victim.lsn + 8  # file header + frame header
    with open(path, "r+b") as stream:
        stream.seek(offset)
        byte = stream.read(1)
        stream.seek(offset)
        stream.write(bytes([byte[0] ^ 0xFF]))
    return victim.lsn


class TestWalInspect:
    def test_lists_records(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        assert main(["wal", "inspect", wal_dir]) == 0
        out = capsys.readouterr().out
        assert "8 record(s)" in out
        assert "define_class" in out and "insert" in out

    def test_json_payload(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        assert main(["wal", "inspect", wal_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["base_lsn"] == 0 and payload["torn_bytes"] == 0
        assert len(payload["records"]) == 8
        assert payload["records"][0]["type"] == "define_class"

    def test_corrupt_log_fails_with_repair_hint(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        lsn = corrupt_interior(wal_dir, record_index=4)
        assert main(["wal", "inspect", wal_dir]) == 1
        err = capsys.readouterr().err
        assert f"corrupt at lsn {lsn}" in err
        assert f"wal truncate {wal_dir} --lsn {lsn}" in err

    def test_missing_log_fails(self, tmp_path, capsys):
        assert main(["wal", "inspect", str(tmp_path)]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestWalTruncate:
    def test_cuts_at_boundary(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        lsn = scan_wal(os.path.join(wal_dir, WAL_FILE_NAME)).records[5].lsn
        assert main(["wal", "truncate", wal_dir, "--lsn", str(lsn)]) == 0
        assert "dropped 3 record(s)" in capsys.readouterr().out
        assert len(scan_wal(os.path.join(wal_dir, WAL_FILE_NAME)).records) == 5

    def test_repairs_corrupt_log_end_to_end(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        lsn = corrupt_interior(wal_dir, record_index=4)
        assert main(["wal", "truncate", wal_dir, "--lsn", str(lsn)]) == 0
        assert main(["wal", "inspect", wal_dir]) == 0  # readable again
        db = Database.open(wal_dir)  # and recoverable
        assert db.count("Student") == 0  # the cut dropped every insert
        db.close()

    def test_rejects_non_boundary(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        assert main(["wal", "truncate", wal_dir, "--lsn", "3"]) == 1
        assert "cannot truncate" in capsys.readouterr().err


class TestFsckWalDir:
    def test_healthy_directory(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        assert main(["fsck", "--wal-dir", wal_dir, "--deep"]) == 0
        out = capsys.readouterr().out
        assert "fsck: clean" in out and "wal ok" in out

    def test_corrupt_log_names_lsn(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        lsn = corrupt_interior(wal_dir, record_index=4)
        assert main(["fsck", "--wal-dir", wal_dir]) == 1
        err = capsys.readouterr().err
        assert f"corrupt at lsn {lsn}" in err and "wal truncate" in err

    def test_requires_exactly_one_target(self, tmp_path, capsys):
        assert main(["fsck"]) == 1
        assert "either a snapshot or --wal-dir" in capsys.readouterr().err

    def test_repair_of_clean_directory_is_a_no_op(self, tmp_path, capsys):
        wal_dir = make_wal_dir(tmp_path)
        before = len(scan_wal(os.path.join(wal_dir, WAL_FILE_NAME)).records)
        assert main(["fsck", "--wal-dir", wal_dir, "--repair"]) == 0
        assert "fsck: clean" in capsys.readouterr().out
        # nothing to repair: no checkpoint taken, the log is untouched
        records = scan_wal(os.path.join(wal_dir, WAL_FILE_NAME)).records
        assert len(records) == before
