"""Property test: replaying a WAL tail is idempotent.

Redo records carry absolute state (full object payloads, explicit OIDs), and
:func:`repro.wal.replay.replay_records` skips every record whose LSN is below
the database's applied watermark.  Together those make a second replay of the
same tail a strict no-op: no record applies, no page is touched, and the
durable state fingerprint is unchanged.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.database import Database
from repro.objects.oid import OID
from repro.objects.schema import ClassSchema
from repro.wal.log import WriteAheadLog
from repro.wal.replay import replay_records
from tests.conftest import HOBBIES
from tests.wal.conftest import SSF_PARAMS, STUDENT_CLASS_ID, fingerprint


def _interpret(actions):
    """Turn draw integers into a valid op sequence over live serials."""
    ops = []
    live = []
    next_serial = 0
    rng = random.Random(97)
    for code in actions:
        hobbies = set(rng.sample(HOBBIES, 3))
        kind = code % 3 if live else 0
        if kind == 0:
            serial = next_serial
            next_serial += 1
            live.append(serial)
            ops.append(("insert", serial, hobbies))
        elif kind == 1:
            ops.append(("update", live[code % len(live)], hobbies))
        else:
            serial = live.pop(code % len(live))
            ops.append(("delete", serial, None))
    return ops


def _apply(db, ops):
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_ssf_index("Student", "hobbies", **SSF_PARAMS)
    db.create_nested_index("Student", "hobbies")
    for op in ops:
        kind, serial = op[0], op[1]
        if kind == "insert":
            db.insert("Student", {"name": f"s{serial}", "hobbies": op[2]})
        elif kind == "update":
            db.update(
                OID(STUDENT_CLASS_ID, serial),
                {"name": f"u{serial}", "hobbies": op[2]},
            )
        else:
            db.delete(OID(STUDENT_CLASS_ID, serial))


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=10))
def test_second_replay_of_the_same_tail_is_a_no_op(tmp_path_factory, actions):
    wal_dir = str(tmp_path_factory.mktemp("wal"))
    source = Database(wal_dir=wal_dir)
    _apply(source, _interpret(actions))
    source.close()

    wal = WriteAheadLog(wal_dir)
    records = list(wal.records())
    wal.close()

    target = Database(page_size=4096, pool_capacity=0)
    first = replay_records(target, records)
    assert first == len(records)
    state = fingerprint(target)
    io_before = target.io_snapshot().logical_total

    second = replay_records(target, records)
    assert second == 0
    assert fingerprint(target) == state
    assert target.io_snapshot().logical_total == io_before
