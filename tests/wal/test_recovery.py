"""End-to-end recovery: checkpoint + log tail reproduces the lost state."""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageError, WalCorruptError
from repro.objects.database import CHECKPOINT_FILE_NAME, Database
from repro.objects.oid import OID
from repro.obs.metrics import REGISTRY
from repro.recovery import run_fsck
from repro.wal.log import WAL_FILE_NAME, scan_wal, truncate_wal
from tests.wal.conftest import (
    STUDENT_CLASS_ID,
    apply_ops,
    baseline_fingerprints,
    fingerprint,
    workload_ops,
)


def test_open_of_empty_directory_is_a_fresh_database(tmp_path):
    db = Database.open(str(tmp_path))
    assert list(db.objects.class_names()) == []
    assert db.durability == "wal" and db.wal is not None
    db.close()


def test_recovery_without_checkpoint_replays_the_whole_log(tmp_path):
    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, ops)
    expected = fingerprint(db)
    db.close()  # process dies; only the WAL directory survives

    recovered = Database.open(str(tmp_path))
    assert fingerprint(recovered) == expected
    assert run_fsck(recovered, deep=True).ok
    assert REGISTRY.counter("recovery.wal_replayed_records").value == len(ops)
    recovered.close()


def test_recovery_is_idempotent_across_repeated_opens(tmp_path):
    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, ops)
    expected = fingerprint(db)
    db.close()
    for _ in range(3):
        recovered = Database.open(str(tmp_path))
        assert fingerprint(recovered) == expected
        recovered.close()


def test_checkpoint_truncates_log_and_recovery_uses_it(tmp_path):
    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, ops[:10])
    db.checkpoint()
    assert os.path.exists(os.path.join(str(tmp_path), CHECKPOINT_FILE_NAME))
    # only the checkpoint_end marker survives in the log
    assert [r.type for r in db.wal.records()] == ["checkpoint_end"]
    assert db.wal.base_lsn > 0
    apply_ops(db, ops[10:])
    expected = fingerprint(db)
    db.close()

    REGISTRY.reset()
    recovered = Database.open(str(tmp_path))
    assert fingerprint(recovered) == expected
    # replay covered only the tail: checkpoint_end + the post-checkpoint ops
    assert (
        REGISTRY.counter("recovery.wal_replayed_records").value
        == len(ops) - 10 + 1
    )
    recovered.close()


def test_save_database_elsewhere_still_checkpoints_the_wal_dir(tmp_path):
    from repro.persistence.snapshot import save_database

    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path / "wal"))
    apply_ops(db, ops)
    expected = fingerprint(db)
    target = str(tmp_path / "elsewhere.sigdb")
    save_database(db, target)
    assert os.path.exists(target)
    assert os.path.exists(
        os.path.join(str(tmp_path / "wal"), CHECKPOINT_FILE_NAME)
    )
    assert REGISTRY.counter("wal.checkpoints").value == 1
    db.close()
    recovered = Database.open(str(tmp_path / "wal"))
    assert fingerprint(recovered) == expected
    recovered.close()


def test_fresh_database_refuses_an_occupied_wal_dir(tmp_path):
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, workload_ops()[:5])
    db.close()
    with pytest.raises(StorageError, match="Database.open"):
        Database(wal_dir=str(tmp_path))


def test_torn_tail_from_crash_is_dropped_and_prefix_recovers(tmp_path):
    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, ops)
    db.close()
    baselines = baseline_fingerprints(ops)
    # Tear the final record in half, as a crash mid-append would.
    path = os.path.join(str(tmp_path), WAL_FILE_NAME)
    scan = scan_wal(path)
    last = scan.records[-1]
    frame_bytes = last.next_lsn - last.lsn
    with open(path, "r+b") as stream:
        stream.truncate(os.path.getsize(path) - frame_bytes // 2)
    recovered = Database.open(str(tmp_path))
    assert fingerprint(recovered) == baselines[len(ops) - 1]
    assert REGISTRY.counter("wal.torn_tails_truncated").value == 1
    recovered.close()


def test_interior_corruption_fails_recovery_then_truncate_repairs(tmp_path):
    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, ops)
    db.close()
    baselines = baseline_fingerprints(ops)
    path = os.path.join(str(tmp_path), WAL_FILE_NAME)
    scan = scan_wal(path)
    victim = scan.records[8]  # an interior record
    header = 16  # magic + base_lsn
    with open(path, "r+b") as stream:
        stream.seek(header + victim.lsn + 8)  # first payload byte
        byte = stream.read(1)
        stream.seek(header + victim.lsn + 8)
        stream.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(WalCorruptError) as err:
        Database.open(str(tmp_path))
    assert err.value.lsn == victim.lsn
    # The documented repair: cut at the damaged LSN, lose the tail, recover.
    truncate_wal(path, victim.lsn)
    recovered = Database.open(str(tmp_path))
    assert fingerprint(recovered) == baselines[8]
    recovered.close()


def test_replay_repairs_a_facility_it_cannot_redo_into(tmp_path):
    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, ops)
    # Craft a facility-level record replay cannot apply: deleting an OID
    # the nested index never saw raises AccessFacilityError during redo.
    db.wal.append(
        [
            "facility_delete", "Student", "hobbies", "nix",
            OID(STUDENT_CLASS_ID, 4000).to_int(), frozenset({"Chess"}),
        ]
    )
    db.close()
    recovered = Database.open(str(tmp_path))
    assert REGISTRY.counter("recovery.wal_replay_rebuilds").value == 1
    assert run_fsck(recovered, deep=True).ok
    recovered.close()


def test_facility_records_logged_outside_logical_ops_and_replayed(tmp_path):
    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, ops)
    # A direct facility mutation (outside the Database facade) logs its own
    # facility-level record...
    facility = db.index("Student", "hobbies", "nix")
    extra = OID(STUDENT_CLASS_ID, 4001)
    facility.insert(frozenset({"Chess"}), extra)
    types = [r.type for r in db.wal.records()]
    assert types.count("facility_insert") == 1
    # ...while facade operations suppress facility records entirely.
    assert types.count("insert") == sum(
        1 for label, _ in ops if label.startswith("insert")
    )
    expected = fingerprint(db)
    db.close()
    recovered = Database.open(str(tmp_path))
    assert fingerprint(recovered) == expected
    recovered.close()


def test_rebuild_is_logged_and_replayed(tmp_path):
    ops = workload_ops()
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, ops)
    db.rebuild_facility("Student", "hobbies", "ssf")
    assert [r.type for r in db.wal.records()].count("rebuild") == 1
    expected = fingerprint(db)
    db.close()
    recovered = Database.open(str(tmp_path))
    assert fingerprint(recovered) == expected
    assert run_fsck(recovered, deep=True).ok
    recovered.close()


def test_fsck_reports_wal_health(tmp_path):
    db = Database(wal_dir=str(tmp_path))
    apply_ops(db, workload_ops()[:6])
    report = run_fsck(db)
    assert report.ok
    assert report.wal_records == 6
    assert "wal ok: 6 record(s)" in report.render()
    db.close()


def test_wal_recovery_leaves_logical_read_counts_clean(tmp_path):
    """The WAL lives outside the simulated device: logging adds zero pages."""
    ops = workload_ops()
    plain = Database(page_size=4096, pool_capacity=0)
    apply_ops(plain, ops)
    plain_io = plain.io_snapshot()

    logged = Database(wal_dir=str(tmp_path))
    apply_ops(logged, ops)
    logged_io = logged.io_snapshot()
    assert logged_io.logical_total == plain_io.logical_total
    logged.close()
