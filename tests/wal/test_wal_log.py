"""Unit tests for the WAL file format: framing, scanning, truncation."""

from __future__ import annotations

import os
import struct

import pytest

from repro.errors import WalCorruptError, WalError
from repro.objects.oid import OID
from repro.obs.metrics import REGISTRY
from repro.wal.log import (
    WAL_FILE_NAME,
    WriteAheadLog,
    encode_record,
    scan_wal,
    truncate_wal,
)


def wal_path(directory) -> str:
    return os.path.join(directory, WAL_FILE_NAME)


class TestAppendAndScan:
    def test_records_roundtrip_with_monotonic_lsns(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        lsns = [
            wal.append(["insert", "Student", 7, b"\x01\x02"]),
            wal.append(["delete", 9]),
            wal.append(["checkpoint_begin"]),
        ]
        scan = scan_wal(wal.path)
        assert [r.lsn for r in scan.records] == lsns
        assert lsns == sorted(lsns) and lsns[0] == 0
        assert [r.type for r in scan.records] == [
            "insert", "delete", "checkpoint_begin",
        ]
        assert scan.records[0].fields == ("insert", "Student", 7, b"\x01\x02")
        assert scan.records[0].next_lsn == lsns[1]
        assert scan.end_lsn == wal.end_lsn
        assert scan.torn_bytes == 0
        wal.close()

    def test_payloads_keep_rich_types(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        oid = OID(1, 42)
        wal.append(
            ["facility_insert", "Student", "hobbies", "nix",
             oid.to_int(), frozenset({"Chess", "Golf"})]
        )
        (record,) = wal.records()
        assert record.fields[4] == oid.to_int()
        assert frozenset(record.fields[5]) == frozenset({"Chess", "Golf"})
        wal.close()

    def test_reopen_resumes_lsn_sequence(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        end = wal.end_lsn
        wal.close()
        again = WriteAheadLog(str(tmp_path))
        assert (again.base_lsn, again.end_lsn) == (0, end)
        assert again.append(["delete", 2]) == end
        again.close()

    def test_appends_and_fsyncs_metered(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        wal.append(["delete", 2])
        assert REGISTRY.counter("wal.appends").value == 2
        assert REGISTRY.counter("wal.fsyncs").value == 2
        wal.close()

    def test_fsync_false_skips_the_fsync_meter(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        wal.append(["delete", 1])
        assert REGISTRY.counter("wal.appends").value == 1
        assert REGISTRY.counter("wal.fsyncs").value == 0
        wal.close()


class TestTailHandling:
    def _write_then_tear(self, directory, keep_fraction: float) -> int:
        """Append two records, then chop the final frame; returns lsn 2."""
        wal = WriteAheadLog(str(directory))
        wal.append(["delete", 1])
        second = wal.append(["insert", "Student", 5, b"\x00" * 40])
        wal.close()
        path = wal_path(directory)
        size = os.path.getsize(path)
        frame_len = size - (struct.calcsize("<8sQ") + (second - 0))
        cut = size - frame_len + max(1, int(frame_len * keep_fraction))
        with open(path, "r+b") as stream:
            stream.truncate(cut)
        return second

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        second = self._write_then_tear(tmp_path, keep_fraction=0.5)
        wal = WriteAheadLog(str(tmp_path))
        assert wal.end_lsn == second  # the half-written record is gone
        assert [r.type for r in wal.records()] == ["delete"]
        assert REGISTRY.counter("wal.torn_tails_truncated").value == 1
        wal.close()

    def test_corrupt_final_record_of_full_length_is_torn(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        second = wal.append(["delete", 2])
        wal.close()
        path = wal_path(tmp_path)
        with open(path, "r+b") as stream:
            stream.seek(-1, os.SEEK_END)
            last = stream.read(1)
            stream.seek(-1, os.SEEK_END)
            stream.write(bytes([last[0] ^ 0xFF]))
        scan = scan_wal(path)
        assert [r.lsn for r in scan.records] == [0]
        assert scan.end_lsn == second
        assert scan.torn_bytes > 0

    def test_interior_corruption_raises_naming_the_lsn(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        second = wal.append(["delete", 2])
        wal.append(["delete", 3])
        wal.close()
        path = wal_path(tmp_path)
        header = struct.calcsize("<8sQ")
        frame = struct.calcsize("<II")
        with open(path, "r+b") as stream:
            stream.seek(header + second + frame)  # first payload byte of #2
            byte = stream.read(1)
            stream.seek(header + second + frame)
            stream.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptError) as err:
            scan_wal(path)
        assert err.value.lsn == second
        # opening the log hits the same wall — the log must not be trusted
        with pytest.raises(WalCorruptError):
            WriteAheadLog(str(tmp_path))

    def test_bad_magic_raises_wal_error(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb") as stream:
            stream.write(b"NOTAWAL0" + b"\x00" * 8)
        with pytest.raises(WalError):
            scan_wal(path)


class TestTruncation:
    def test_truncate_until_drops_prefix_and_keeps_lsns(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        second = wal.append(["delete", 2])
        end = wal.end_lsn
        wal.truncate_until(second)
        assert (wal.base_lsn, wal.end_lsn) == (second, end)
        (survivor,) = wal.records()
        assert (survivor.lsn, survivor.fields) == (second, ("delete", 2))
        # appends continue the same sequence
        assert wal.append(["delete", 3]) == end
        wal.close()

    def test_truncate_until_rejects_non_boundary(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        with pytest.raises(WalError):
            wal.truncate_until(3)
        with pytest.raises(WalError):
            wal.truncate_until(wal.end_lsn + 10)
        wal.close()

    def test_truncate_from_drops_the_tail(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        second = wal.append(["delete", 2])
        wal.append(["delete", 3])
        assert wal.truncate_from(second) == 2
        assert wal.end_lsn == second
        assert [r.fields for r in wal.records()] == [("delete", 1)]
        wal.append(["delete", 9])  # stream still usable after truncation
        assert [r.fields[1] for r in wal.records()] == [1, 9]
        wal.close()

    def test_offline_truncate_repairs_interior_corruption(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        second = wal.append(["delete", 2])
        wal.append(["delete", 3])
        wal.close()
        path = wal_path(tmp_path)
        header = struct.calcsize("<8sQ")
        frame = struct.calcsize("<II")
        with open(path, "r+b") as stream:
            stream.seek(header + second + frame)
            byte = stream.read(1)
            stream.seek(header + second + frame)
            stream.write(bytes([byte[0] ^ 0xFF]))
        dropped, end = truncate_wal(path, second)
        assert dropped == 2 and end == second
        scan = scan_wal(path)  # readable again
        assert [r.fields for r in scan.records] == [("delete", 1)]

    def test_offline_truncate_rejects_non_boundary(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(["delete", 1])
        wal.close()
        with pytest.raises(WalError):
            truncate_wal(wal_path(tmp_path), 1)


class TestGating:
    def test_suspended_blocks_all_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.accepts_logical_records and wal.accepts_facility_records
        with wal.suspended():
            assert not wal.accepts_logical_records
            assert not wal.accepts_facility_records
        assert wal.accepts_logical_records
        wal.close()

    def test_logical_op_suppresses_facility_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        with wal.logical_op():
            assert not wal.accepts_facility_records
            assert not wal.accepts_logical_records  # no nested logical records
        assert wal.accepts_facility_records
        wal.close()

    def test_encode_record_is_deterministic(self):
        fields = ["insert", "Student", 3, b"\x00\x01"]
        assert encode_record(fields) == encode_record(list(fields))
