"""Durability mode selection and the no-WAL invariants.

The acceptance bar for the WAL work is that databases which do not opt in
pay nothing: ``durability="snapshot"`` (the default) must leave page-access
counts, tracer output, and metrics exactly as they were before the WAL
subsystem existed.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.objects.database import Database
from repro.obs.metrics import REGISTRY
from repro.obs.tracer import Tracer, activate
from tests.wal.conftest import apply_ops, fingerprint, workload_ops


class TestModeSelection:
    def test_default_is_snapshot(self):
        db = Database()
        assert db.durability == "snapshot"
        assert db.wal is None

    def test_wal_dir_implies_wal_mode(self, tmp_path):
        db = Database(wal_dir=str(tmp_path))
        assert db.durability == "wal"
        assert db.wal is not None
        db.close()

    def test_none_mode_is_accepted(self):
        db = Database(durability="none")
        assert db.durability == "none"
        assert db.wal is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Database(durability="paranoid")

    def test_wal_dir_with_non_wal_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Database(wal_dir=str(tmp_path), durability="snapshot")

    def test_wal_mode_requires_wal_dir(self):
        with pytest.raises(ConfigurationError):
            Database(durability="wal")

    def test_checkpoint_requires_wal_mode(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            Database().checkpoint()


class TestNoWalInvariants:
    def test_snapshot_mode_state_matches_wal_mode(self, tmp_path):
        ops = workload_ops()
        plain = Database(page_size=4096, pool_capacity=0)
        apply_ops(plain, ops)
        logged = Database(wal_dir=str(tmp_path))
        apply_ops(logged, ops)
        assert fingerprint(plain) == fingerprint(logged)
        logged.close()

    def test_snapshot_mode_page_counts_match_wal_mode(self, tmp_path):
        """The WAL is a host file, not simulated pages: identical I/O."""
        ops = workload_ops()
        plain = Database(page_size=4096, pool_capacity=0)
        apply_ops(plain, ops)
        logged = Database(wal_dir=str(tmp_path))
        apply_ops(logged, ops)
        plain_total = plain.io_snapshot().total()
        logged_total = logged.io_snapshot().total()
        assert (plain_total.logical_reads, plain_total.logical_writes) == (
            logged_total.logical_reads,
            logged_total.logical_writes,
        )
        logged.close()

    def test_snapshot_mode_emits_no_wal_metrics(self):
        db = Database()
        apply_ops(db, workload_ops())
        assert REGISTRY.counter("wal.appends").value == 0
        assert REGISTRY.counter("wal.fsyncs").value == 0

    def test_snapshot_mode_traces_no_wal_spans(self):
        tracer = Tracer()
        db = Database()
        with activate(tracer):
            apply_ops(db, workload_ops())
        names = {s.name for root in tracer.roots for s in root.walk()}
        assert "wal-append" not in names and "wal-replay" not in names

    def test_wal_mode_traces_wal_append_spans(self, tmp_path):
        tracer = Tracer()
        db = Database(wal_dir=str(tmp_path))
        with activate(tracer):
            apply_ops(db, workload_ops()[:5])
        names = [s.name for root in tracer.roots for s in root.walk()]
        assert names.count("wal-append") == 5
        db.close()
