"""Fixtures and helpers for the write-ahead-log suite.

The crash and recovery tests all lean on two facts:

* every ``Database``-level operation is deterministic (OID allocation,
  facility maintenance), so a *baseline* database that simply applies the
  first ``p`` workload operations is byte-for-byte the state recovery must
  reproduce when exactly ``p`` logical records survived the crash;
* :func:`fingerprint` captures the complete durable state (every stored
  page image plus the object directory and allocator), so byte-equivalence
  is one dictionary comparison.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, List, Tuple

import pytest

from repro.objects.database import Database
from repro.objects.oid import OID
from repro.objects.schema import ClassSchema
from repro.obs.metrics import REGISTRY
from tests.conftest import HOBBIES

#: small geometry keeps matrices fast (mirrors tests/faults/conftest.py)
SSF_PARAMS = dict(signature_bits=32, bits_per_element=2, seed=3)
BSSF_PARAMS = dict(signature_bits=32, bits_per_element=2, seed=3)

#: the Student class is the first defined class, so its OIDs are (1, serial)
STUDENT_CLASS_ID = 1

WorkloadOp = Tuple[str, Callable[[Database], None]]


@pytest.fixture(autouse=True)
def _reset_registry():
    """Metrics assertions need a clean slate per test."""
    REGISTRY.reset()
    yield
    REGISTRY.reset()


def _op_define(db: Database) -> None:
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))


def _op_insert(i: int, hobbies: List[str]) -> Callable[[Database], None]:
    def run(db: Database) -> None:
        db.insert("Student", {"name": f"s{i:03d}", "hobbies": set(hobbies)})

    return run


def _op_update(serial: int, hobbies: List[str]) -> Callable[[Database], None]:
    def run(db: Database) -> None:
        db.update(
            OID(STUDENT_CLASS_ID, serial),
            {"name": f"u{serial:03d}", "hobbies": set(hobbies)},
        )

    return run


def _op_delete(serial: int) -> Callable[[Database], None]:
    def run(db: Database) -> None:
        db.delete(OID(STUDENT_CLASS_ID, serial))

    return run


def workload_ops(inserts: int = 12, seed: int = 41) -> List[WorkloadOp]:
    """A deterministic schema + DDL + DML mix, one logical record per op."""
    rng = random.Random(seed)
    ops: List[WorkloadOp] = [
        ("define_class", _op_define),
        (
            "create ssf",
            lambda db: db.create_ssf_index("Student", "hobbies", **SSF_PARAMS),
        ),
        (
            "create bssf",
            lambda db: db.create_bssf_index("Student", "hobbies", **BSSF_PARAMS),
        ),
        ("create nix", lambda db: db.create_nested_index("Student", "hobbies")),
    ]
    for i in range(inserts):
        ops.append((f"insert {i}", _op_insert(i, rng.sample(HOBBIES, 3))))
    ops.append(("update 2", _op_update(2, rng.sample(HOBBIES, 3))))
    ops.append(("update 5", _op_update(5, rng.sample(HOBBIES, 2))))
    ops.append(("delete 3", _op_delete(3)))
    ops.append((f"insert {inserts}", _op_insert(inserts, rng.sample(HOBBIES, 3))))
    ops.append(("delete 7", _op_delete(7)))
    return ops


def apply_ops(db: Database, ops: List[WorkloadOp]) -> None:
    for _, op in ops:
        op(db)


def fingerprint(db: Database) -> dict:
    """Complete durable state: page images, directory, allocator."""
    db.storage.flush()
    store = db.storage.store
    files = {}
    for name in sorted(store.file_names()):
        digest = hashlib.sha256()
        pages = store.num_pages(name)
        for page_no in range(pages):
            digest.update(store.page_image(name, page_no))
        files[name] = (pages, digest.hexdigest())
    return {
        "files": files,
        "directory": sorted(
            (oid.to_int(), address.page_no, address.slot)
            for oid, address in db.objects._directory.items()
        ),
        "allocator": dict(db.objects._allocator._next_serial),
        "classes": db.objects.class_names(),
    }


def baseline_fingerprints(ops: List[WorkloadOp]) -> List[dict]:
    """``result[p]`` = state after the first ``p`` ops, WAL-free."""
    db = Database(page_size=4096, pool_capacity=0)
    result = [fingerprint(db)]
    for _, op in ops:
        op(db)
        result.append(fingerprint(db))
    return result
