"""``truncate_until`` boundaries and its race with active tail readers.

A checkpoint truncates the log by atomically replacing the file
(``os.replace``); a shipping reader (``payloads_from``) takes one
consistent read of whichever image it lands on. The contract under the
race is precise:

* a reader positioned at a still-surviving boundary sees the same frame
  bytes before and after truncation (LSNs are preserved);
* a reader whose position fell below the new base gets a clean
  :class:`~repro.errors.WalError` — never garbage, never a partial batch;
* :class:`~repro.errors.WalCorruptError` is impossible: the swap is
  atomic, so no interleaving exposes a half-rewritten file.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import WalCorruptError, WalError
from repro.objects.database import Database
from repro.wal.log import WriteAheadLog
from tests.wal.conftest import apply_ops, workload_ops


def _log_with(tmp_path, count: int, payload: bytes = b"x" * 40):
    log = WriteAheadLog(str(tmp_path / "w"), fsync=False)
    for i in range(count):
        log.append(["noop", i, payload.decode()])
    return log


class TestBoundaries:
    def test_below_base_and_past_end_are_rejected(self, tmp_path):
        log = _log_with(tmp_path, 4)
        mid = log.records()[2].lsn
        log.truncate_until(mid)
        with pytest.raises(WalError):
            log.truncate_until(mid - 1)  # below the new base
        with pytest.raises(WalError):
            log.truncate_until(log.end_lsn + 8)  # past the end
        log.close()

    def test_non_boundary_lsn_is_rejected(self, tmp_path):
        log = _log_with(tmp_path, 4)
        first = log.records()[0]
        with pytest.raises(WalError):
            log.truncate_until(first.lsn + 1)
        log.close()

    def test_truncate_at_base_is_a_no_op(self, tmp_path):
        log = _log_with(tmp_path, 4)
        before = log.records()
        log.truncate_until(log.base_lsn)
        assert [r.lsn for r in log.records()] == [r.lsn for r in before]
        log.close()

    def test_truncate_at_end_empties_but_keeps_the_lsn_line(self, tmp_path):
        log = _log_with(tmp_path, 4)
        end = log.end_lsn
        log.truncate_until(end)
        assert log.base_lsn == end
        assert log.records() == []
        lsn = log.append(["noop", 99, "tail"])
        assert lsn == end  # appends continue the same LSN sequence
        log.close()

    def test_reader_below_new_base_gets_a_clean_error(self, tmp_path):
        log = _log_with(tmp_path, 6)
        mid = log.records()[3].lsn
        log.truncate_until(mid)
        with pytest.raises(WalError):
            log.payloads_from(0)
        with pytest.raises(WalError):
            log.payloads_from(mid - 1)
        log.close()


class TestSurvivorByteIdentity:
    def test_surviving_frames_are_bitwise_unchanged(self, tmp_path):
        log = _log_with(tmp_path, 8)
        mid = log.records()[4].lsn
        before, before_end = log.payloads_from(mid)
        log.truncate_until(mid)
        after, after_end = log.payloads_from(mid)
        assert after == before
        assert after_end == before_end
        assert log.base_lsn == mid


class TestCheckpointRacesTailReader:
    def test_log_level_race_never_corrupts_a_reader(self, tmp_path):
        """Readers tail while the writer appends and truncates: every
        batch must be consistent, every miss a clean WalError."""
        log = _log_with(tmp_path, 1)
        stop = threading.Event()
        problems = []
        seen = {}
        seen_lock = threading.Lock()

        def reader():
            at = log.base_lsn
            while not stop.is_set():
                try:
                    batch, end = log.payloads_from(at, max_bytes=256)
                except WalCorruptError as exc:  # atomic swap forbids this
                    problems.append(f"corruption surfaced: {exc}")
                    return
                except WalError:
                    at = log.base_lsn  # truncation passed us: legal
                    continue
                with seen_lock:
                    for lsn, payload in batch:
                        previous = seen.setdefault(lsn, payload)
                        if previous != payload:
                            problems.append(
                                f"lsn {lsn} read with two different payloads"
                            )
                at = max(at, end)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for i in range(120):
                log.append(["noop", i, "y" * 30])
                if i % 25 == 24:
                    records = log.records()
                    log.truncate_until(records[len(records) // 2].lsn)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert problems == []
        # Whatever survived in the final image matches what readers saw.
        final, _end = log.payloads_from(log.base_lsn)
        for lsn, payload in final:
            assert seen.get(lsn, payload) == payload
        log.close()

    def test_database_checkpoint_races_a_shipping_reader(self, tmp_path):
        """The real checkpoint path (snapshot + truncate) against a tail
        reader using the shipping read, as a replication subscriber does."""
        db = Database(wal_dir=str(tmp_path / "p"))
        stop = threading.Event()
        problems = []

        def reader():
            at = db.wal.base_lsn
            while not stop.is_set():
                try:
                    _batch, end = db.wal.payloads_from(at, max_bytes=512)
                except WalCorruptError as exc:
                    problems.append(f"corruption surfaced: {exc}")
                    return
                except WalError:
                    at = db.wal.base_lsn
                    continue
                at = max(at, end)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            ops = workload_ops(inserts=12)
            apply_ops(db, ops[:8])
            db.checkpoint()
            apply_ops(db, ops[8:])
            db.checkpoint()
        finally:
            stop.set()
            thread.join(timeout=10)
            db.wal.close()
        assert problems == []
