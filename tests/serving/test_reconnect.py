"""Pooled connections go stale when a server restarts; the client must
detect the dead socket, re-dial, and complete the request — without
burning a retry attempt on a connection that was broken before the
request ever reached a server."""

from __future__ import annotations

import pytest

from repro.client import RemoteClient
from repro.errors import ConnectionLostError
from repro.server.net import TcpQueryServer
from repro.storage.faults import RetryPolicy
from tests.serving.test_loopback import _build_db

QUERY = 'select Student where hobbies has-subset ("Chess")'


class TestServerRestart:
    def test_stale_pooled_socket_is_replaced_transparently(self):
        db = _build_db(count=40)
        server = TcpQueryServer(db, max_workers=2).start()
        port = server.port
        client = RemoteClient.from_url(server.url, pool_size=2)
        try:
            baseline = client.execute(QUERY)  # warms the pool
            server.stop(drain=False)
            server = TcpQueryServer(
                db, max_workers=2, host="127.0.0.1", port=port
            ).start()

            # Same client object, same pooled (now dead) socket: the next
            # request must succeed against the restarted server.
            again = client.execute(QUERY)
            assert again.rows == baseline.rows
            assert client._m_stale.value >= 1
        finally:
            client.close()
            server.stop(drain=False)

    def test_stale_detection_does_not_consume_retry_attempts(self):
        """With retries disabled entirely, a stale pooled socket alone
        must not surface as a transport error — only a server that is
        actually unreachable may."""
        db = _build_db(count=20)
        server = TcpQueryServer(db, max_workers=1).start()
        port = server.port
        client = RemoteClient.from_url(
            server.url, pool_size=1,
            retry_policy=RetryPolicy(max_attempts=1, backoff_seconds=0.0),
        )
        try:
            client.execute(QUERY)
            server.stop(drain=False)
            server = TcpQueryServer(
                db, max_workers=1, host="127.0.0.1", port=port
            ).start()
            assert client.execute(QUERY).rows is not None
        finally:
            client.close()
            server.stop(drain=False)

    def test_server_down_for_good_still_fails_cleanly(self):
        db = _build_db(count=20)
        server = TcpQueryServer(db, max_workers=1).start()
        client = RemoteClient.from_url(
            server.url, pool_size=1,
            retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
            connect_timeout_seconds=0.5,
        )
        try:
            client.execute(QUERY)
            server.stop(drain=False)
            with pytest.raises(ConnectionLostError):
                client.execute(QUERY)
        finally:
            client.close()
