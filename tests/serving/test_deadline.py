"""Deadline budgets and bounded drain at the serving layer.

``ExecutionOptions.deadline_ms`` is a *remaining duration*, re-anchored at
each hop — an already-expired budget is rejected with the stable
``deadline-exceeded`` error code before any work is admitted, and a
server shutdown waits for in-flight work only up to ``drain_timeout``.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import DeadlineExceededError
from repro.obs.metrics import REGISTRY
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.options import ExecutionOptions
from repro.server.net import TcpQueryServer
from repro.server.service import QueryService
from repro.serving import connect
from tests.conftest import populate_students

QUERY = 'select Student where hobbies has-subset ("Chess")'


def _build_db() -> Database:
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index("Student", "hobbies", 128, 2)
    populate_students(db, count=30)
    return db


class TestOptionsWire:
    def test_deadline_round_trips_through_dicts(self):
        options = ExecutionOptions(deadline_ms=1500.0)
        assert ExecutionOptions.from_dict(options.to_dict()).deadline_ms == 1500.0

    def test_absent_deadline_stays_none(self):
        options = ExecutionOptions()
        assert ExecutionOptions.from_dict(options.to_dict()).deadline_ms is None


class TestServiceDeadline:
    def test_expired_budget_rejected_before_admission(self):
        before = REGISTRY.counter("server.deadline_rejections").value
        with QueryService(_build_db(), max_workers=2) as service:
            with pytest.raises(DeadlineExceededError) as excinfo:
                service.execute(QUERY, ExecutionOptions(deadline_ms=0))
        assert excinfo.value.code == "deadline-exceeded"
        assert REGISTRY.counter("server.deadline_rejections").value == before + 1

    def test_generous_budget_executes(self):
        with QueryService(_build_db(), max_workers=2) as service:
            result = service.execute(QUERY, ExecutionOptions(deadline_ms=30_000))
            assert result.statistics.results == len(result.rows)


class TestServerDeadline:
    def test_expired_budget_rejected_at_the_edge(self):
        before = REGISTRY.counter("server.net.deadline_rejections").value
        with TcpQueryServer(_build_db(), max_workers=2) as server:
            client = connect(server.url)
            try:
                with pytest.raises(DeadlineExceededError) as excinfo:
                    client.execute(QUERY, ExecutionOptions(deadline_ms=-10))
                assert excinfo.value.code == "deadline-exceeded"
            finally:
                client.close()
        assert (
            REGISTRY.counter("server.net.deadline_rejections").value
            == before + 1
        )


class _WedgedService:
    """A backend whose one query blocks until released — drain-timeout bait."""

    database = None

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def execute(self, text, options=None):
        self.entered.set()
        self.release.wait(timeout=10)
        raise DeadlineExceededError("wedged request abandoned")

    def shutdown(self, wait: bool = True) -> None:
        self.release.set()


class TestBoundedDrain:
    def test_drain_gives_up_after_the_timeout(self):
        service = _WedgedService()
        before = REGISTRY.counter("server.net.drain_timeouts").value
        server = TcpQueryServer(service=service).start()
        client = connect(server.url)
        try:
            worker = threading.Thread(
                target=lambda: _swallow(client.execute, QUERY), daemon=True
            )
            worker.start()
            assert service.entered.wait(timeout=10)
            server.stop(drain=True, timeout=1.0, drain_timeout=0.3)
        finally:
            service.release.set()
            client.close()
        assert REGISTRY.counter("server.net.drain_timeouts").value == before + 1

    def test_clean_drain_does_not_count_a_timeout(self):
        before = REGISTRY.counter("server.net.drain_timeouts").value
        with TcpQueryServer(_build_db(), max_workers=2) as server:
            client = connect(server.url)
            try:
                client.execute(QUERY)
            finally:
                client.close()
        assert REGISTRY.counter("server.net.drain_timeouts").value == before


def _swallow(fn, *args):
    try:
        fn(*args)
    except Exception:
        pass
