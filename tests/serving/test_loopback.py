"""Loopback integration: remote serving equivalent to in-process, plus
edge policies — overload shedding, tenant quotas, auth, disconnects,
malformed frames, and graceful drain."""

from __future__ import annotations

import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import wire
from repro.client import RemoteClient
from repro.errors import (
    AdmissionError,
    AuthenticationError,
    ConfigurationError,
    ConnectionLostError,
    ProtocolError,
    TenantQuotaError,
)
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionMode, ExecutionOptions
from repro.server.net import TcpQueryServer
from repro.server.service import QueryService
from repro.storage.faults import RetryPolicy
from tests.conftest import populate_students

#: client retries that fail fast — edge-policy tests want the first answer
FAIL_FAST = RetryPolicy(max_attempts=1, backoff_seconds=0.0)

#: admission policy that sheds immediately
SHED_FAST = RetryPolicy(max_attempts=1, backoff_seconds=0.0)

QUERY_MIX = [
    'select Student where hobbies has-subset ("Chess")',
    'select Student where hobbies has-subset ("Fishing")',
    'select Student where hobbies overlaps ("Golf", "Tennis")',
    'select Student where hobbies has-subset ("Painting", "Cooking")',
    'select Student where hobbies overlaps ("Sailing")',
    'select Student where hobbies has-subset ("Climbing")',
]


def _build_db(count: int = 80) -> Database:
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index("Student", "hobbies", 128, 2)
    populate_students(db, count=count)
    return db


def _raw_handshake(server) -> socket.socket:
    """Dial the server and complete a HELLO by hand; returns the socket."""
    sock = socket.create_connection(server.address, timeout=5)
    sock.settimeout(5)
    wire.write_frame(sock, wire.HELLO, {"protocol": wire.PROTOCOL_VERSION})
    kind, _payload = wire.read_frame(sock)
    assert kind == wire.OK
    return sock


class TestEquivalence:
    def test_concurrent_remote_clients_match_sequential_run(self):
        """Golden rows, plans, per-query I/O deltas, and merged page totals."""
        served_db = _build_db()
        reference_db = _build_db()
        texts = QUERY_MIX * 4

        executor = QueryExecutor(reference_db)
        before = reference_db.io_snapshot()
        expected = [executor.execute_text(text) for text in texts]
        sequential_delta = reference_db.io_snapshot() - before

        with TcpQueryServer(served_db, max_workers=4) as server:
            before = served_db.io_snapshot()
            clients = [
                RemoteClient(*server.address, pool_size=2) for _ in range(3)
            ]
            try:
                with ThreadPoolExecutor(max_workers=6) as pool:
                    futures = [
                        pool.submit(clients[i % len(clients)].execute, text)
                        for i, text in enumerate(texts)
                    ]
                    results = [f.result(timeout=60) for f in futures]
            finally:
                for client in clients:
                    client.close()
            concurrent_delta = served_db.io_snapshot() - before

        for got, want in zip(results, expected):
            assert got.oids() == want.oids()
            assert got.rows == want.rows
            assert got.statistics.plan == want.statistics.plan
            assert got.statistics.candidates == want.statistics.candidates
            assert got.statistics.false_drops == want.statistics.false_drops
            # The per-query page-access delta crosses the wire bit-identical.
            assert got.statistics.io == want.statistics.io
        # Merged totals across all concurrently served queries match the
        # sequential replay exactly (the I/O-delta merge is commutative).
        assert concurrent_delta == sequential_delta

    def test_batch_round_trip_matches_sequential(self):
        served_db = _build_db()
        executor = QueryExecutor(_build_db())
        expected = [executor.execute_text(text) for text in QUERY_MIX]
        with TcpQueryServer(served_db, max_workers=2) as server:
            with RemoteClient(*server.address) as client:
                results = client.execute_many(QUERY_MIX)
        for got, want in zip(results, expected):
            assert got.oids() == want.oids()
            assert got.statistics.io == want.statistics.io

    def test_remote_execution_mode_routes_through_executor(self):
        """ExecutionMode.REMOTE in plain execute_many goes over the wire."""
        served_db = _build_db()
        local = QueryExecutor(_build_db())
        expected = [local.execute_text(text) for text in QUERY_MIX[:3]]
        with TcpQueryServer(served_db, max_workers=2) as server:
            options = ExecutionOptions(remote_url=server.url)
            assert options.resolved_mode() is ExecutionMode.REMOTE
            results = local.execute_many(QUERY_MIX[:3], options)
        for got, want in zip(results, expected):
            assert got.oids() == want.oids()

    def test_remote_mode_without_url_is_a_configuration_error(self):
        executor = QueryExecutor(_build_db(count=5))
        with pytest.raises(ConfigurationError, match="remote_url"):
            executor.execute_many(
                QUERY_MIX[:1],
                ExecutionOptions(execution_mode=ExecutionMode.REMOTE),
            )

    def test_server_strips_nested_serving_options(self):
        """A remote caller cannot recurse the server into another pool."""
        served_db = _build_db()
        with TcpQueryServer(served_db, max_workers=2) as server:
            with RemoteClient(*server.address) as client:
                result = client.execute(
                    QUERY_MIX[0],
                    ExecutionOptions(
                        max_workers=8,
                        execution_mode=ExecutionMode.PROCESS,
                        remote_url=server.url,
                        trace=True,
                    ),
                )
        assert result.trace is None
        assert result.oids()


class TestOverload:
    def test_saturated_server_sheds_with_admission_error(self):
        db = _build_db(count=60)
        service = QueryService(
            db,
            max_workers=1,
            queue_depth=0,
            admission_policy=SHED_FAST,
            admission_timeout_seconds=0.05,
        )
        db.storage.store.read_latency_seconds = 0.005
        try:
            with TcpQueryServer(service=service) as server:
                with RemoteClient(
                    *server.address, pool_size=2, retry_policy=FAIL_FAST
                ) as client:
                    slow = client.submit(QUERY_MIX[2])
                    time.sleep(0.1)  # let the slow query occupy the one slot
                    with pytest.raises(AdmissionError):
                        client.execute(QUERY_MIX[0])
                    assert slow.result(timeout=30).oids()
        finally:
            db.storage.store.read_latency_seconds = 0.0
            service.shutdown()

    def test_connection_survives_a_shed_request(self):
        """An ERROR frame is an answer, not a disconnect."""
        db = _build_db(count=60)
        service = QueryService(
            db,
            max_workers=1,
            queue_depth=0,
            admission_policy=SHED_FAST,
            admission_timeout_seconds=0.05,
        )
        db.storage.store.read_latency_seconds = 0.005
        try:
            with TcpQueryServer(service=service) as server:
                with RemoteClient(
                    *server.address, pool_size=2, retry_policy=FAIL_FAST
                ) as client:
                    slow = client.submit(QUERY_MIX[2])
                    time.sleep(0.1)
                    with pytest.raises(AdmissionError):
                        client.execute(QUERY_MIX[0])
                    slow.result(timeout=30)
                    # Same pooled sockets, next request succeeds.
                    assert client.execute(QUERY_MIX[0]).oids()
        finally:
            db.storage.store.read_latency_seconds = 0.0
            service.shutdown()


class TestTenants:
    def _server(self, db):
        return TcpQueryServer(
            db,
            max_workers=4,
            auth_tokens={"alice-token": "alice", "bob-token": "bob"},
            tenant_quotas={"alice": 1},
        )

    def test_missing_or_unknown_token_is_rejected(self):
        db = _build_db(count=20)
        with self._server(db) as server:
            with pytest.raises(AuthenticationError):
                with RemoteClient(
                    *server.address, retry_policy=FAIL_FAST
                ) as client:
                    client.ping()
            with pytest.raises(AuthenticationError):
                with RemoteClient(
                    *server.address, token="wrong", retry_policy=FAIL_FAST
                ) as client:
                    client.ping()

    def test_tenant_quota_sheds_before_service_admission(self):
        db = _build_db(count=60)
        db.storage.store.read_latency_seconds = 0.005
        try:
            with self._server(db) as server:
                alice = RemoteClient(
                    *server.address, token="alice-token", pool_size=2,
                    retry_policy=FAIL_FAST,
                )
                bob = RemoteClient(
                    *server.address, token="bob-token", retry_policy=FAIL_FAST
                )
                try:
                    slow = alice.submit(QUERY_MIX[2])
                    time.sleep(0.1)
                    # Alice is at her quota of one in-flight query ...
                    with pytest.raises(TenantQuotaError) as excinfo:
                        alice.execute(QUERY_MIX[0])
                    # ... and the shed is catchable as an AdmissionError.
                    assert isinstance(excinfo.value, AdmissionError)
                    # Bob is unaffected: no quota configured for his tenant.
                    assert bob.execute(QUERY_MIX[0]).oids()
                    assert slow.result(timeout=30).oids()
                    # Alice's slot is free again once her query finishes.
                    assert alice.execute(QUERY_MIX[0]).oids()
                finally:
                    alice.close()
                    bob.close()
        finally:
            db.storage.store.read_latency_seconds = 0.0

    def test_handshake_reports_the_tenant(self):
        db = _build_db(count=20)
        with self._server(db) as server:
            with RemoteClient(*server.address, token="bob-token") as client:
                client.ping()
                assert client.server_info["tenant"] == "bob"


class TestEdgeDiscipline:
    def test_mid_query_disconnect_leaves_server_healthy(self):
        db = _build_db(count=60)
        db.storage.store.read_latency_seconds = 0.002
        try:
            with TcpQueryServer(db, max_workers=2) as server:
                sock = _raw_handshake(server)
                wire.write_frame(
                    sock, wire.QUERY, {"id": 1, "text": QUERY_MIX[2]}
                )
                sock.close()  # vanish while the query is in flight
                time.sleep(0.2)
                with RemoteClient(*server.address) as client:
                    assert client.execute(QUERY_MIX[0]).oids()
        finally:
            db.storage.store.read_latency_seconds = 0.0

    def test_malformed_frame_gets_protocol_error_then_close(self):
        db = _build_db(count=20)
        with TcpQueryServer(db, max_workers=2) as server:
            sock = _raw_handshake(server)
            try:
                sock.sendall(b"GARBAGE-NOT-A-FRAME" * 3)
                kind, payload = wire.read_frame(sock)
                assert kind == wire.ERROR
                assert isinstance(wire.decode_error(payload), ProtocolError)
                # The stream cannot be resynced: the server closes. With
                # unread garbage still buffered server-side the close is
                # an RST, so accept either a clean EOF or a reset.
                try:
                    assert wire.read_frame(sock) is None
                except ConnectionError:
                    pass
            finally:
                sock.close()

    def test_non_hello_first_frame_is_rejected(self):
        db = _build_db(count=20)
        with TcpQueryServer(db, max_workers=2) as server:
            sock = socket.create_connection(server.address, timeout=5)
            sock.settimeout(5)
            try:
                wire.write_frame(sock, wire.PING, {"id": 1})
                kind, payload = wire.read_frame(sock)
                assert kind == wire.ERROR
                assert isinstance(wire.decode_error(payload), ProtocolError)
            finally:
                sock.close()

    def test_oversized_frame_is_rejected_not_read(self):
        db = _build_db(count=20)
        with TcpQueryServer(db, max_workers=2, max_frame_bytes=4096) as server:
            sock = _raw_handshake(server)
            try:
                # Declare a payload far over the server's limit; send only
                # the header — the server must reject on the declaration.
                sock.sendall(
                    struct.pack(
                        ">2sBBI", b"SF", wire.PROTOCOL_VERSION, wire.QUERY,
                        50 * 1024 * 1024,
                    )
                )
                kind, payload = wire.read_frame(sock)
                assert kind == wire.ERROR
                restored = wire.decode_error(payload)
                assert isinstance(restored, ProtocolError)
                assert "frame limit" in str(restored)
            finally:
                sock.close()

    def test_idle_connection_times_out(self):
        db = _build_db(count=20)
        with TcpQueryServer(db, max_workers=1, read_timeout_seconds=0.2) as server:
            sock = _raw_handshake(server)
            try:
                sock.settimeout(5)
                # Server closes the idle connection without an ERROR frame.
                assert wire.read_frame(sock) is None
            finally:
                sock.close()


class TestGracefulShutdown:
    def test_drain_delivers_inflight_response_then_bye(self):
        db = _build_db(count=60)
        db.storage.store.read_latency_seconds = 0.005
        try:
            server = TcpQueryServer(db, max_workers=2).start()
            client = RemoteClient(*server.address, retry_policy=FAIL_FAST)
            expected = QueryExecutor(_build_db(count=60)).execute_text(
                QUERY_MIX[2]
            )
            inflight = client.submit(QUERY_MIX[2])
            time.sleep(0.1)  # the request is on the server's wire
            server.stop(drain=True)
            # The in-flight query completed and its response was delivered
            # before the socket closed.
            result = inflight.result(timeout=30)
            assert result.oids() == expected.oids()
            client.close()
        finally:
            db.storage.store.read_latency_seconds = 0.0

    def test_stopped_server_refuses_new_connections(self):
        db = _build_db(count=20)
        server = TcpQueryServer(db, max_workers=1).start()
        address = server.address
        server.stop()
        with pytest.raises(ConnectionLostError):
            with RemoteClient(*address, retry_policy=FAIL_FAST) as client:
                client.ping()

    def test_goodbye_round_trip(self):
        db = _build_db(count=20)
        with TcpQueryServer(db, max_workers=1) as server:
            sock = _raw_handshake(server)
            try:
                wire.write_frame(sock, wire.GOODBYE, {})
                kind, _payload = wire.read_frame(sock)
                assert kind == wire.BYE
            finally:
                sock.close()
