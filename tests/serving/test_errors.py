"""Error-taxonomy round trips: the same class re-raises across the wire."""

from __future__ import annotations

import json

import pytest

from repro import wire
from repro.errors import (
    AdmissionError,
    AuthenticationError,
    ConfigurationError,
    ConnectionLostError,
    CorruptPageError,
    ParseError,
    ProtocolError,
    QueryError,
    RemoteError,
    ReproError,
    TenantQuotaError,
    WalCorruptError,
    error_class_for_code,
    error_code,
)


def round_trip(exc: BaseException) -> ReproError:
    """Encode, push through JSON (as the socket would), decode."""
    return wire.decode_error(json.loads(json.dumps(wire.encode_error(exc))))


class TestCodes:
    @pytest.mark.parametrize(
        "cls,code",
        [
            (ReproError, "internal"),
            (ConfigurationError, "bad-config"),
            (CorruptPageError, "corrupt-page"),
            (WalCorruptError, "wal-corrupt"),
            (AdmissionError, "admission"),
            (TenantQuotaError, "tenant-quota"),
            (QueryError, "query"),
            (ParseError, "parse"),
            (ProtocolError, "protocol"),
            (AuthenticationError, "auth"),
            (ConnectionLostError, "connection-lost"),
            (RemoteError, "remote"),
        ],
    )
    def test_stable_code_and_registry(self, cls, code):
        assert cls.code == code
        assert error_class_for_code(code) is cls

    def test_every_repro_error_subclass_has_a_registered_code(self):
        def walk(cls):
            yield cls
            for sub in cls.__subclasses__():
                yield from walk(sub)

        for cls in walk(ReproError):
            assert isinstance(cls.code, str) and cls.code
            registered = error_class_for_code(cls.code)
            # First declarer wins; every class's code must resolve to an
            # ancestor-or-self so decoding never *broadens* past the taxonomy.
            assert registered is not None
            assert issubclass(cls, registered) or issubclass(registered, cls)

    def test_error_code_of_instance(self):
        assert error_code(AdmissionError("x")) == "admission"
        assert error_code(ValueError("x")) == "internal"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "exc",
        [
            AdmissionError("query shed: no admission slot"),
            TenantQuotaError("tenant 'a' is at its quota"),
            CorruptPageError("page 7 checksum mismatch"),
            ParseError("unexpected token 'wherre'"),
            AuthenticationError("unknown or missing auth token"),
            ProtocolError("bad frame magic"),
            ConfigurationError("bad knob"),
        ],
    )
    def test_same_class_same_message(self, exc):
        restored = round_trip(exc)
        assert type(restored) is type(exc)
        assert str(restored) == str(exc)

    def test_tenant_quota_is_catchable_as_admission(self):
        restored = round_trip(TenantQuotaError("over quota"))
        assert isinstance(restored, AdmissionError)

    def test_wal_corrupt_preserves_lsn(self):
        restored = round_trip(WalCorruptError("bad record", lsn=42))
        assert type(restored) is WalCorruptError
        assert restored.lsn == 42

    def test_non_repro_exception_degrades_to_internal(self):
        restored = round_trip(ValueError("boom"))
        assert type(restored) is ReproError
        assert "boom" in str(restored)

    def test_unknown_code_becomes_remote_error(self):
        restored = wire.decode_error(
            {"code": "flux-capacitor", "message": "from the future"}
        )
        assert type(restored) is RemoteError
        assert restored.remote_code == "flux-capacitor"
        assert "from the future" in str(restored)

    def test_remote_error_rerelay_keeps_original_code(self):
        """A proxy re-encoding a RemoteError must not launder its code."""
        first = wire.decode_error({"code": "flux-capacitor", "message": "m"})
        assert round_trip(first).remote_code == "flux-capacitor"

    def test_decode_tolerates_missing_fields(self):
        restored = wire.decode_error({})
        assert isinstance(restored, ReproError)
