"""Unit tests for the wire protocol: framing, codecs, options serde."""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

from repro import wire
from repro.errors import ConnectionLostError, ProtocolError
from repro.objects.oid import OID
from repro.query.options import ExecutionMode, ExecutionOptions
from tests.conftest import populate_students


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip_every_kind(self, pair):
        a, b = pair
        kinds = [
            wire.HELLO, wire.QUERY, wire.BATCH, wire.PING, wire.GOODBYE,
            wire.OK, wire.RESULT, wire.RESULTS, wire.ERROR, wire.PONG,
            wire.BYE,
        ]
        for kind in kinds:
            wire.write_frame(a, kind, {"kind": kind, "nested": {"x": [1, 2]}})
            got_kind, payload = wire.read_frame(b)
            assert got_kind == kind
            assert payload == {"kind": kind, "nested": {"x": [1, 2]}}

    def test_clean_eof_between_frames_is_none(self, pair):
        a, b = pair
        a.close()
        assert wire.read_frame(b) is None

    def test_close_mid_frame_raises_connection_lost(self, pair):
        a, b = pair
        # A valid header promising 100 bytes, then nothing.
        a.sendall(struct.pack(">2sBBI", b"SF", wire.PROTOCOL_VERSION, wire.PING, 100))
        a.close()
        with pytest.raises(ConnectionLostError):
            wire.read_frame(b)

    def test_partial_header_raises_connection_lost(self, pair):
        a, b = pair
        a.sendall(b"SF\x01")
        a.close()
        with pytest.raises(ConnectionLostError):
            wire.read_frame(b)

    def test_bad_magic_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">2sBBI", b"XX", wire.PROTOCOL_VERSION, wire.PING, 0))
        with pytest.raises(ProtocolError, match="magic"):
            wire.read_frame(b)

    def test_version_skew_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">2sBBI", b"SF", 99, wire.PING, 0))
        with pytest.raises(ProtocolError, match="version"):
            wire.read_frame(b)

    def test_unknown_kind_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">2sBBI", b"SF", wire.PROTOCOL_VERSION, 200, 2) + b"{}")
        with pytest.raises(ProtocolError, match="kind"):
            wire.read_frame(b)

    def test_oversized_declared_length_rejected_before_read(self, pair):
        a, b = pair
        a.sendall(
            struct.pack(
                ">2sBBI", b"SF", wire.PROTOCOL_VERSION, wire.PING, 1 << 30
            )
        )
        with pytest.raises(ProtocolError, match="frame limit"):
            wire.read_frame(b, max_frame_bytes=4096)

    def test_oversized_outgoing_frame_rejected(self, pair):
        a, _b = pair
        with pytest.raises(ProtocolError, match="frame limit"):
            wire.write_frame(
                a, wire.QUERY, {"text": "x" * 10000}, max_frame_bytes=1024
            )

    def test_non_json_payload_rejected(self, pair):
        a, b = pair
        body = b"\xff\xfe\x00garbage"
        a.sendall(
            struct.pack(
                ">2sBBI", b"SF", wire.PROTOCOL_VERSION, wire.PING, len(body)
            )
            + body
        )
        with pytest.raises(ProtocolError, match="JSON"):
            wire.read_frame(b)

    def test_non_object_payload_rejected(self, pair):
        a, b = pair
        body = json.dumps([1, 2, 3]).encode()
        a.sendall(
            struct.pack(
                ">2sBBI", b"SF", wire.PROTOCOL_VERSION, wire.PING, len(body)
            )
            + body
        )
        with pytest.raises(ProtocolError, match="JSON object"):
            wire.read_frame(b)

    def test_unknown_payload_keys_are_preserved_not_fatal(self, pair):
        """Forward compatibility: a newer peer may add fields freely."""
        a, b = pair
        wire.write_frame(a, wire.PING, {"id": 1, "from_the_future": True})
        _kind, payload = wire.read_frame(b)
        assert payload["id"] == 1

    def test_concurrent_writers_do_not_interleave_frames(self, pair):
        """write_frame sends header+body in one sendall per frame."""
        a, b = pair
        n = 50

        def writer(tag):
            for i in range(n):
                wire.write_frame(a, wire.PING, {"tag": tag, "i": i})

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seen = 0
        b.settimeout(5)
        for _ in range(4 * n):
            kind, payload = wire.read_frame(b)
            assert kind == wire.PING
            assert 0 <= payload["i"] < n
            seen += 1
        assert seen == 4 * n


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            0,
            -17,
            3.25,
            "text",
            [1, "two", None],
            {"plain": {"nested": [1, 2]}},
            (1, 2, "three"),
            {"a", "b", "c"},
            frozenset({1, 2}),
            OID(3, 99),
            {"$looks_like_a_tag": 1},
            {"$oid": "fake"},
            {OID(1, 2): "oid-keyed"},
            {"mixed": [{1, 2}, (3, 4), OID(5, 6)]},
        ],
    )
    def test_round_trip(self, value):
        encoded = wire.encode_value(value)
        json.dumps(encoded)  # must be pure JSON
        decoded = wire.decode_value(encoded)
        if isinstance(value, frozenset):
            assert decoded == set(value)
        else:
            assert decoded == value
            assert type(decoded) is type(value) or isinstance(value, bool)

    def test_unserializable_type_rejected(self):
        with pytest.raises(ProtocolError, match="serialize"):
            wire.encode_value(object())


class TestResultCodec:
    def _result(self, student_db):
        from repro.query.executor import QueryExecutor

        student_db.create_bssf_index("Student", "hobbies", 128, 2)
        populate_students(student_db, count=50)
        return QueryExecutor(student_db).execute_text(
            'select Student where hobbies has-subset ("Chess")'
        )

    def test_round_trip_is_bit_identical(self, student_db):
        result = self._result(student_db)
        decoded = wire.decode_result(
            json.loads(json.dumps(wire.encode_result(result)))
        )
        assert decoded.oids() == result.oids()
        assert decoded.rows == result.rows
        assert decoded.statistics.plan == result.statistics.plan
        assert decoded.statistics.candidates == result.statistics.candidates
        assert decoded.statistics.false_drops == result.statistics.false_drops
        assert decoded.statistics.results == result.statistics.results
        assert decoded.statistics.detail == result.statistics.detail
        # The dense per-file I/O delta survives exactly — including files
        # the query never touched (zero rows), so remote statistics
        # compare equal to a local IOSnapshot subtraction.
        assert decoded.statistics.io == result.statistics.io
        assert decoded.trace is None

    def test_decoder_tolerates_missing_and_unknown_fields(self):
        decoded = wire.decode_result({"future_field": 1})
        assert decoded.rows == []
        assert decoded.statistics.io is None
        assert decoded.statistics.plan == ""


class TestOptionsSerde:
    def test_round_trip(self):
        options = ExecutionOptions(
            prefer_facility="bssf",
            smart=False,
            max_workers=4,
            batch_size=8,
            execution_mode=ExecutionMode.THREAD,
            remote_url="sigfile://h:1",
        )
        restored = ExecutionOptions.from_dict(options.to_dict())
        assert restored.prefer_facility == "bssf"
        assert restored.smart is False
        assert restored.max_workers == 4
        assert restored.batch_size == 8
        assert restored.execution_mode is ExecutionMode.THREAD
        assert restored.remote_url == "sigfile://h:1"

    def test_from_dict_ignores_unknown_fields(self):
        restored = ExecutionOptions.from_dict(
            {"smart": False, "from_the_future": {"x": 1}}
        )
        assert restored.smart is False

    def test_from_dict_tolerates_unknown_execution_mode(self):
        restored = ExecutionOptions.from_dict({"execution_mode": "quantum"})
        assert restored.execution_mode is None

    def test_from_dict_of_none_is_defaults(self):
        restored = ExecutionOptions.from_dict(None)
        assert restored == ExecutionOptions()

    def test_to_dict_is_json_safe_and_excludes_live_objects(self):
        payload = ExecutionOptions(trace=True).to_dict()
        json.dumps(payload)
        assert "tracer" not in payload
        assert "context" not in payload

    def test_remote_url_implies_remote_mode(self):
        options = ExecutionOptions(remote_url="sigfile://h:1")
        assert options.resolved_mode() is ExecutionMode.REMOTE
        # An explicit mode always wins.
        explicit = ExecutionOptions(
            remote_url="sigfile://h:1", execution_mode=ExecutionMode.SERIAL
        )
        assert explicit.resolved_mode() is ExecutionMode.SERIAL
