"""Oversized frames surface as typed ``FrameTooLargeError``s, not as
opaque disconnects — on the server's sending side, on its receiving side,
and on the client's sending side."""

from __future__ import annotations

import socket
import struct

import pytest

from repro import wire
from repro.client import RemoteClient
from repro.errors import FrameTooLargeError
from repro.server.net import TcpQueryServer
from tests.serving.test_loopback import _build_db, _raw_handshake

WIDE_QUERY = (
    'select Student where hobbies overlaps '
    '("Chess", "Fishing", "Golf", "Tennis", "Painting", "Cooking", '
    '"Sailing", "Climbing")'
)
NARROW_QUERY = (
    'select Student where hobbies has-subset '
    '("Chess", "Painting", "Sailing", "Golf")'
)


class TestServerSendingSide:
    def test_oversized_result_is_a_typed_error_not_a_disconnect(self):
        db = _build_db(count=400)
        with TcpQueryServer(db, max_workers=2, max_frame_bytes=4096) as server:
            with RemoteClient.from_url(server.url) as client:
                with pytest.raises(FrameTooLargeError) as excinfo:
                    client.execute(WIDE_QUERY)
                assert excinfo.value.code == "frame-too-large"
                # The connection survived: the same client keeps working.
                assert client.ping() >= 0.0
                small = client.execute(NARROW_QUERY)
                assert small.rows is not None

    def test_oversized_batch_response_is_typed_too(self):
        db = _build_db(count=400)
        with TcpQueryServer(db, max_workers=2, max_frame_bytes=4096) as server:
            with RemoteClient.from_url(server.url) as client:
                with pytest.raises(FrameTooLargeError):
                    client.execute_many([WIDE_QUERY, WIDE_QUERY])
                assert client.execute_many([NARROW_QUERY])


class TestServerReceivingSide:
    def test_oversized_incoming_declaration_gets_typed_error_then_close(self):
        db = _build_db(count=20)
        with TcpQueryServer(db, max_workers=1, max_frame_bytes=4096) as server:
            sock = _raw_handshake(server)
            try:
                sock.sendall(
                    struct.pack(
                        ">2sBBI", b"SF", wire.PROTOCOL_VERSION, wire.BATCH,
                        50 * 1024 * 1024,
                    )
                )
                kind, payload = wire.read_frame(sock)
                assert kind == wire.ERROR
                restored = wire.decode_error(payload)
                assert isinstance(restored, FrameTooLargeError)
                assert restored.code == "frame-too-large"
                # The unread body makes the stream unframeable; the server
                # must close rather than misparse what follows.
                assert wire.read_frame(sock) is None
            finally:
                sock.close()


class TestClientSendingSide:
    def test_client_refuses_to_send_an_oversized_batch(self):
        db = _build_db(count=20)
        with TcpQueryServer(db, max_workers=1) as server:
            client = RemoteClient.from_url(server.url, max_frame_bytes=2048)
            with client:
                with pytest.raises(FrameTooLargeError):
                    client.execute_many([NARROW_QUERY] * 200)
                # Nothing was written to the socket, so the connection is
                # still framed correctly and immediately reusable.
                result = client.execute(NARROW_QUERY)
                assert result.rows is not None
