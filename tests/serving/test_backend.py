"""QueryBackend conformance: one contract, four implementations.

The same behavioural suite runs against ``QueryService`` (serial and
thread modes), ``ProcessQueryService``, and ``RemoteClient`` over a
loopback ``TcpQueryServer`` — all built through the blessed factories —
so the unified serving surface cannot drift apart per backend. A
``ShardRouter`` over each backend kind runs the suite too: scatter-gather
must be answer-for-answer indistinguishable from unsharded serving.
"""

from __future__ import annotations

import contextlib
import warnings
from concurrent.futures import Future

import pytest

from repro.client import RemoteClient
from repro.errors import ConfigurationError, ParseError
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionMode
from repro.server.net import TcpQueryServer
from repro.server.process import ProcessQueryService
from repro.server.service import QueryService
from repro.serving import QueryBackend, connect, make_service
from repro.sharding import ShardRouter, partition_database
from tests.conftest import populate_students

QUERIES = [
    'select Student where hobbies has-subset ("Chess")',
    'select Student where hobbies has-subset ("Fishing")',
    'select Student where hobbies overlaps ("Golf", "Tennis")',
]


def _build_db(*, lsm: bool = False, wal_dir=None) -> Database:
    kwargs = dict(page_size=4096, pool_capacity=0)
    if wal_dir is not None:
        kwargs["wal_dir"] = str(wal_dir)
        kwargs["durability"] = "lsm" if lsm else "wal"
    db = Database(**kwargs)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    if lsm:
        # small threshold so the 60-object load crosses several flushes —
        # served answers must be identical to the in-place golden anyway
        db.create_bssf_index(
            "Student", "hobbies", 128, 2, lsm=True,
            flush_threshold=16, fanout=2,
        )
    else:
        db.create_bssf_index("Student", "hobbies", 128, 2)
    populate_students(db, count=60)
    return db


@pytest.fixture(scope="module")
def golden():
    """Sequential reference answers for the shared query mix."""
    executor = QueryExecutor(_build_db())
    return {text: executor.execute_text(text).oids() for text in QUERIES}


_MODES = {
    "serial": ExecutionMode.SERIAL,
    "thread": ExecutionMode.THREAD,
    "process": ExecutionMode.PROCESS,
}

_SHARDS = 3


@pytest.fixture(
    params=[
        "serial",
        "thread",
        "process",
        "remote",
        "router-serial",
        "router-thread",
        "router-process",
        "router-remote",
        "lsm-serial",
        "lsm-thread",
        "lsm-remote",
        "lsm-router-serial",
        "lsm-replicated",
    ]
)
def backend(request, tmp_path):
    """Every serving backend, plus a ShardRouter over each kind of shard.

    The ``lsm-*`` members run the identical conformance suite against
    databases whose index is an LSM facility (local service, TCP server,
    scatter-gather router over LSM shards, and a failover client over a
    replicated LSM primary) — the serving layer must be unable to tell
    the two write paths apart.
    """
    if request.param == "lsm-replicated":
        from repro.replication import ReplicaDatabase

        db = _build_db(lsm=True, wal_dir=tmp_path / "primary")
        with contextlib.ExitStack() as stack:
            server = stack.enter_context(
                TcpQueryServer(db, max_workers=2, heartbeat_seconds=0.1)
            )
            replica = ReplicaDatabase(
                server.url, str(tmp_path / "replica"),
                stall_timeout_seconds=3.0,
            )
            stack.callback(replica.close)
            replica.wait_for_lsn(db.wal.end_lsn, timeout=10)
            replica_server = stack.enter_context(
                TcpQueryServer(
                    service=QueryService(replica.database, max_workers=2),
                    heartbeat_seconds=0.1,
                )
            )
            with connect([server.url, replica_server.url]) as client:
                yield client
        db.close()
        return
    lsm = request.param.startswith("lsm-")
    mode = request.param.split("-", 1)[1] if lsm else request.param
    db = _build_db(lsm=lsm)
    if mode == "remote":
        with TcpQueryServer(db, max_workers=2) as server:
            with make_service(server.url) as built:
                yield built
        return
    if mode.startswith("router-"):
        kind = mode.split("-", 1)[1]
        shards = partition_database(db, _SHARDS)
        if kind == "remote":
            with contextlib.ExitStack() as stack:
                servers = [
                    stack.enter_context(TcpQueryServer(s, max_workers=2))
                    for s in shards
                ]
                spec = ";".join(server.url for server in servers)
                with connect(spec) as router:
                    yield router
            return
        with make_service(shards, _MODES[kind], max_workers=2) as router:
            yield router
        return
    with make_service(db, _MODES[mode], max_workers=2) as built:
        yield built


def test_lsm_build_is_not_vacuous():
    """Guard: the lsm-* members must serve a multi-run facility."""
    db = _build_db(lsm=True)
    facility = db.index("Student", "hobbies", "bssf")
    assert getattr(facility, "is_lsm", False)
    assert facility.run_count >= 2


class TestConformance:
    def test_satisfies_the_protocol(self, backend):
        assert isinstance(backend, QueryBackend)

    def test_execute(self, backend, golden):
        for text in QUERIES:
            assert backend.execute(text).oids() == golden[text]

    def test_execute_many_preserves_order(self, backend, golden):
        results = backend.execute_many(QUERIES * 2)
        assert len(results) == len(QUERIES) * 2
        for text, result in zip(QUERIES * 2, results):
            assert result.oids() == golden[text]

    def test_execute_many_empty_batch(self, backend):
        assert backend.execute_many([]) == []

    def test_submit_returns_a_future(self, backend, golden):
        future = backend.submit(QUERIES[0])
        assert isinstance(future, Future)
        assert future.result(timeout=30).oids() == golden[QUERIES[0]]

    def test_query_errors_surface_as_the_same_class(self, backend):
        with pytest.raises(ParseError):
            backend.execute("selectt nonsense")

    def test_close_is_idempotent(self, backend):
        backend.close()
        backend.close()


class TestFactories:
    def test_database_defaults_to_thread_service(self):
        with make_service(_build_db()) as service:
            assert isinstance(service, QueryService)
            assert service.max_workers == 4

    def test_serial_mode_is_single_worker(self):
        with make_service(_build_db(), "serial") as service:
            assert isinstance(service, QueryService)
            assert service.max_workers == 1

    def test_mode_accepts_enum_and_string(self):
        with make_service(_build_db(), ExecutionMode.THREAD, max_workers=2) as s:
            assert isinstance(s, QueryService)
            assert s.max_workers == 2

    def test_process_mode(self):
        with make_service(_build_db(), "process", max_workers=2) as service:
            assert isinstance(service, ProcessQueryService)

    def test_unknown_mode_string_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown serving mode"):
            make_service(_build_db(), "quantum")

    def test_url_returns_remote_client(self):
        client = make_service("sigfile://127.0.0.1:7731")
        assert isinstance(client, RemoteClient)
        assert client.url == "sigfile://127.0.0.1:7731"
        client.close()

    def test_url_with_non_remote_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="REMOTE"):
            make_service("sigfile://127.0.0.1:7731", "thread")

    def test_remote_mode_with_database_rejected(self):
        with pytest.raises(ConfigurationError, match="URL"):
            make_service(_build_db(), ExecutionMode.REMOTE)

    def test_connect_parses_url_forms(self):
        for url in ("sigfile://h:9", "tcp://h:9", "h:9"):
            client = connect(url)
            assert (client.host, client.port) == ("h", 9)
            client.close()
        bare = connect("somehost")
        assert (bare.host, bare.port) == ("somehost", 7731)
        bare.close()

    def test_connect_rejects_bad_scheme(self):
        with pytest.raises(ConfigurationError, match="scheme"):
            connect("http://h:9")


class TestShardedEquivalence:
    """Router answers and accounting must match unsharded serving."""

    def test_factory_builds_router_from_shard_list(self):
        shards = partition_database(_build_db(), _SHARDS)
        with make_service(shards, "serial") as router:
            assert isinstance(router, ShardRouter)
            assert router.shard_count == _SHARDS

    def test_connect_semicolon_spec_builds_router(self):
        db = _build_db()
        shards = partition_database(db, 2)
        with contextlib.ExitStack() as stack:
            servers = [
                stack.enter_context(TcpQueryServer(s, max_workers=2))
                for s in shards
            ]
            spec = ";".join(server.url for server in servers)
            with connect(spec) as router:
                assert isinstance(router, ShardRouter)
                assert router.shard_count == 2

    def test_rows_and_io_accounting_match_unsharded(self):
        db = _build_db()
        executor = QueryExecutor(db)
        golden = {text: executor.execute_text(text) for text in QUERIES}
        shards = partition_database(db, _SHARDS)
        with make_service(shards, "serial") as router:
            for text in QUERIES:
                merged = router.execute(text)
                reference = golden[text]
                assert merged.rows == reference.rows
                assert not merged.partial
                stats, ref = merged.statistics, reference.statistics
                assert stats.results == ref.results
                assert stats.candidates == ref.candidates
                assert stats.false_drops == ref.false_drops
                # Candidate fetches decompose exactly — one logical page
                # read per candidate, charged to the owner shard — so the
                # object file's merged counts are bit-identical. (Index
                # page counts are NOT asserted: each shard packs its own
                # slices, so their page counts legitimately differ.)
                assert stats.io.for_file("objects:Student") == ref.io.for_file(
                    "objects:Student"
                )


class TestLegacyShims:
    def test_workers_keyword_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="workers"):
            service = make_service(_build_db(), workers=2)
        with service:
            assert isinstance(service, QueryService)
            assert service.max_workers == 2

    def test_process_workers_keyword_warns_and_implies_process_mode(self):
        with pytest.warns(DeprecationWarning, match="process_workers"):
            service = make_service(_build_db(), process_workers=2)
        with service:
            assert isinstance(service, ProcessQueryService)
            assert service.max_workers == 2

    def test_explicit_arguments_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with make_service(_build_db(), max_workers=2) as service:
                assert service.max_workers == 2
