"""QueryBackend conformance: one contract, four implementations.

The same behavioural suite runs against ``QueryService`` (serial and
thread modes), ``ProcessQueryService``, and ``RemoteClient`` over a
loopback ``TcpQueryServer`` — all built through the blessed factories —
so the unified serving surface cannot drift apart per backend.
"""

from __future__ import annotations

import warnings
from concurrent.futures import Future

import pytest

from repro.client import RemoteClient
from repro.errors import ConfigurationError, ParseError
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionMode
from repro.server.net import TcpQueryServer
from repro.server.process import ProcessQueryService
from repro.server.service import QueryService
from repro.serving import QueryBackend, connect, make_service
from tests.conftest import populate_students

QUERIES = [
    'select Student where hobbies has-subset ("Chess")',
    'select Student where hobbies has-subset ("Fishing")',
    'select Student where hobbies overlaps ("Golf", "Tennis")',
]


def _build_db() -> Database:
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index("Student", "hobbies", 128, 2)
    populate_students(db, count=60)
    return db


@pytest.fixture(scope="module")
def golden():
    """Sequential reference answers for the shared query mix."""
    executor = QueryExecutor(_build_db())
    return {text: executor.execute_text(text).oids() for text in QUERIES}


@pytest.fixture(params=["serial", "thread", "process", "remote"])
def backend(request):
    db = _build_db()
    if request.param == "remote":
        with TcpQueryServer(db, max_workers=2) as server:
            with make_service(server.url) as built:
                yield built
        return
    mode = {
        "serial": ExecutionMode.SERIAL,
        "thread": ExecutionMode.THREAD,
        "process": ExecutionMode.PROCESS,
    }[request.param]
    with make_service(db, mode, max_workers=2) as built:
        yield built


class TestConformance:
    def test_satisfies_the_protocol(self, backend):
        assert isinstance(backend, QueryBackend)

    def test_execute(self, backend, golden):
        for text in QUERIES:
            assert backend.execute(text).oids() == golden[text]

    def test_execute_many_preserves_order(self, backend, golden):
        results = backend.execute_many(QUERIES * 2)
        assert len(results) == len(QUERIES) * 2
        for text, result in zip(QUERIES * 2, results):
            assert result.oids() == golden[text]

    def test_execute_many_empty_batch(self, backend):
        assert backend.execute_many([]) == []

    def test_submit_returns_a_future(self, backend, golden):
        future = backend.submit(QUERIES[0])
        assert isinstance(future, Future)
        assert future.result(timeout=30).oids() == golden[QUERIES[0]]

    def test_query_errors_surface_as_the_same_class(self, backend):
        with pytest.raises(ParseError):
            backend.execute("selectt nonsense")

    def test_close_is_idempotent(self, backend):
        backend.close()
        backend.close()


class TestFactories:
    def test_database_defaults_to_thread_service(self):
        with make_service(_build_db()) as service:
            assert isinstance(service, QueryService)
            assert service.max_workers == 4

    def test_serial_mode_is_single_worker(self):
        with make_service(_build_db(), "serial") as service:
            assert isinstance(service, QueryService)
            assert service.max_workers == 1

    def test_mode_accepts_enum_and_string(self):
        with make_service(_build_db(), ExecutionMode.THREAD, max_workers=2) as s:
            assert isinstance(s, QueryService)
            assert s.max_workers == 2

    def test_process_mode(self):
        with make_service(_build_db(), "process", max_workers=2) as service:
            assert isinstance(service, ProcessQueryService)

    def test_unknown_mode_string_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown serving mode"):
            make_service(_build_db(), "quantum")

    def test_url_returns_remote_client(self):
        client = make_service("sigfile://127.0.0.1:7731")
        assert isinstance(client, RemoteClient)
        assert client.url == "sigfile://127.0.0.1:7731"
        client.close()

    def test_url_with_non_remote_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="REMOTE"):
            make_service("sigfile://127.0.0.1:7731", "thread")

    def test_remote_mode_with_database_rejected(self):
        with pytest.raises(ConfigurationError, match="URL"):
            make_service(_build_db(), ExecutionMode.REMOTE)

    def test_connect_parses_url_forms(self):
        for url in ("sigfile://h:9", "tcp://h:9", "h:9"):
            client = connect(url)
            assert (client.host, client.port) == ("h", 9)
            client.close()
        bare = connect("somehost")
        assert (bare.host, bare.port) == ("somehost", 7731)
        bare.close()

    def test_connect_rejects_bad_scheme(self):
        with pytest.raises(ConfigurationError, match="scheme"):
            connect("http://h:9")


class TestLegacyShims:
    def test_workers_keyword_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="workers"):
            service = make_service(_build_db(), workers=2)
        with service:
            assert isinstance(service, QueryService)
            assert service.max_workers == 2

    def test_process_workers_keyword_warns_and_implies_process_mode(self):
        with pytest.warns(DeprecationWarning, match="process_workers"):
            service = make_service(_build_db(), process_workers=2)
        with service:
            assert isinstance(service, ProcessQueryService)
            assert service.max_workers == 2

    def test_explicit_arguments_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with make_service(_build_db(), max_workers=2) as service:
                assert service.max_workers == 2
