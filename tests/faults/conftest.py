"""Fixtures for the fault-injection / recovery suite."""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.objects.database import Database
from repro.obs.metrics import REGISTRY
from tests.conftest import HOBBIES, populate_students

#: Facility geometry kept small so crash matrices stay fast.
SSF_PARAMS = dict(signature_bits=32, bits_per_element=2, seed=3)
BSSF_PARAMS = dict(signature_bits=32, bits_per_element=2, seed=3)

#: Superset query constants for the fixed-seed correctness sweeps.
QUERY_SETS = [
    frozenset({HOBBIES[0]}),
    frozenset({HOBBIES[5]}),
    frozenset({HOBBIES[0], HOBBIES[1]}),
    frozenset({HOBBIES[2], HOBBIES[7], HOBBIES[11]}),
]


@pytest.fixture(autouse=True)
def _reset_registry():
    """Metrics assertions need a clean slate per test."""
    REGISTRY.reset()
    yield
    REGISTRY.reset()


def build_indexed_db(count: int = 60) -> Database:
    """Student database with all three facility kinds on ``hobbies``."""
    from repro.objects.schema import ClassSchema

    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    populate_students(db, count=count)
    db.create_ssf_index("Student", "hobbies", **SSF_PARAMS)
    db.create_bssf_index("Student", "hobbies", **BSSF_PARAMS)
    db.create_nested_index("Student", "hobbies")
    return db


@pytest.fixture
def indexed_db() -> Database:
    return build_indexed_db()


def scan_ground_truth(db: Database, query_set: frozenset) -> List:
    """OIDs whose hobbies are a superset of ``query_set`` (exact, no index)."""
    return sorted(
        oid
        for oid, values in db.objects.scan("Student")
        if query_set <= values["hobbies"]
    )


def facility_files(db: Database, facility_name: str) -> List[str]:
    """Storage files owned by one facility kind."""
    return [
        name
        for name in db.storage.store.file_names()
        if name.startswith(f"{facility_name}:")
    ]


def corrupt_page(db: Database, file_name: str, page_no: int) -> None:
    """Flip one byte of a stored page image, leaving its checksum stale."""
    store = db.storage.store
    image = bytearray(store.page_image(file_name, page_no))
    image[0] ^= 0xFF
    store._apply_corruption(file_name, page_no, bytes(image))


def superset_results(db: Database, query_set: frozenset, facility: str):
    """Run the superset query through one facility; return (oids, stats)."""
    from repro.query.executor import QueryExecutor
    from repro.query.options import ExecutionOptions
    from repro.query.parser import parse_query

    elements = ", ".join(f'"{e}"' for e in sorted(query_set))
    text = f"select Student where hobbies has-subset ({elements})"
    executor = QueryExecutor(db)
    result = executor.execute(
        parse_query(text), ExecutionOptions(prefer_facility=facility)
    )
    return sorted(result.oids()), result.statistics
