"""WAL crash matrix: byte-equivalence of recovery at every crash point.

The durable-prefix method: the workload's operations map 1:1 onto logical
WAL records, and a WAL-free baseline database applying the first ``p`` ops
yields the exact state ``baselines[p]`` recovery must reproduce whenever
``p`` operation records survive in the log.  After each induced crash we
*count* the surviving records rather than assume them — the write-ahead
invariant (log before mutate, fsync before return) is then checked as a
plain equality:

* a crash **before** the ``k``-th append leaves ``k - 1`` records;
* a **torn** append (half a frame reaches the disk) is silently truncated
  back to the same ``k - 1`` prefix;
* a crash at any **device write** happens *after* the op's record was
  logged, so recovery rolls the in-flight operation forward.

Crash points are enumerated with a never-firing dry run and stride-sampled,
mirroring ``tests/faults/test_crash_matrix.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import SimulatedCrashError
from repro.objects.database import Database
from repro.recovery import run_fsck
from repro.storage import FaultRule
from repro.wal.log import WAL_FILE_NAME, scan_wal
from tests.wal.conftest import (
    apply_ops,
    baseline_fingerprints,
    fingerprint,
    workload_ops,
)

#: keep the matrix fast: test at most this many crash points per dimension
MAX_POINTS = 12

NEVER = 10**9

#: device-write crash dimensions — every facility kind plus the object file
WRITE_PATTERNS = ["ssf:*", "bssf:*", "nix:*", "objects:*"]

_BASELINES = None


def baselines():
    global _BASELINES
    if _BASELINES is None:
        _BASELINES = baseline_fingerprints(workload_ops())
    return _BASELINES


def sampled(total: int) -> list:
    if total <= MAX_POINTS:
        return list(range(1, total + 1))
    stride = total / MAX_POINTS
    points = sorted({round(1 + i * stride) for i in range(MAX_POINTS)} | {total})
    return [p for p in points if 1 <= p <= total]


def durable_ops(wal_dir: str) -> int:
    """Operation records that actually reached the log (checkpoints excluded)."""
    scan = scan_wal(os.path.join(wal_dir, WAL_FILE_NAME))
    return sum(1 for r in scan.records if not r.type.startswith("checkpoint"))


def crash_then_recover(tmp_path, rule: FaultRule, label: str) -> None:
    """Run the workload until ``rule`` kills it, then prove recovery exact."""
    wal_dir = str(tmp_path)
    db = Database(wal_dir=wal_dir)
    db.attach_fault_injector(rules=[rule])
    with pytest.raises(SimulatedCrashError):
        apply_ops(db, workload_ops())
    db.detach_fault_injector()
    db.close()  # drop the dead process's handle; state lives in wal_dir

    p = durable_ops(wal_dir)
    recovered = Database.open(wal_dir)
    assert fingerprint(recovered) == baselines()[p], (
        f"{label}: recovery does not match the {p}-op durable prefix"
    )
    assert run_fsck(recovered, deep=True).ok, f"{label}: fsck dirty"
    recovered.close()


def test_crash_before_every_wal_append(tmp_path_factory):
    """A clean crash at append ``k`` leaves exactly the ``k - 1`` prefix."""
    ops = workload_ops()
    for at_call in sampled(len(ops)):
        tmp = tmp_path_factory.mktemp("crash")
        crash_then_recover(
            tmp,
            FaultRule("wal-append", "crash", at_call=at_call),
            f"wal-append crash @{at_call}",
        )
        # the k-th record never reached the disk
        assert durable_ops(str(tmp)) == at_call - 1


def test_torn_write_inside_every_wal_append(tmp_path_factory):
    """Half a frame on disk is indistinguishable from no frame at all."""
    ops = workload_ops()
    for at_call in sampled(len(ops)):
        tmp = tmp_path_factory.mktemp("torn")
        crash_then_recover(
            tmp,
            FaultRule("wal-append", "torn", at_call=at_call),
            f"wal-append torn @{at_call}",
        )
        assert durable_ops(str(tmp)) == at_call - 1


def device_write_points(pattern: str, tmp_path) -> int:
    db = Database(wal_dir=str(tmp_path))
    injector = db.attach_fault_injector(
        rules=[FaultRule("write", "crash", file=pattern, at_call=NEVER)]
    )
    apply_ops(db, workload_ops())
    total = injector.rule_calls(0)
    db.detach_fault_injector()
    db.close()
    return total


@pytest.mark.parametrize("pattern", WRITE_PATTERNS)
def test_crash_at_every_device_write_point(pattern, tmp_path_factory):
    """Device crashes happen after the op was logged: redo rolls forward."""
    total = device_write_points(pattern, tmp_path_factory.mktemp("dry"))
    assert total > 0, f"workload never wrote to {pattern}"
    for at_call in sampled(total):
        crash_then_recover(
            tmp_path_factory.mktemp("dev"),
            FaultRule("write", "crash", file=pattern, at_call=at_call),
            f"{pattern} write crash @{at_call}",
        )


def test_crash_during_checkpoint_is_recoverable(tmp_path_factory):
    """Dying at either checkpoint append leaves a recoverable directory."""
    ops = workload_ops()
    for at_call in (1, 2):  # 1 = checkpoint_begin, 2 = checkpoint_end
        wal_dir = str(tmp_path_factory.mktemp("ckpt"))
        db = Database(wal_dir=wal_dir)
        apply_ops(db, ops[:10])
        db.attach_fault_injector(
            rules=[FaultRule("wal-append", "crash", at_call=at_call)]
        )
        with pytest.raises(SimulatedCrashError):
            db.checkpoint()
        db.detach_fault_injector()
        db.close()

        recovered = Database.open(wal_dir)
        assert fingerprint(recovered) == baselines()[10], (
            f"checkpoint crash @append {at_call} lost state"
        )
        # the recovered database keeps working: finish the workload
        apply_ops(recovered, ops[10:])
        assert fingerprint(recovered) == baselines()[len(ops)]
        recovered.close()
