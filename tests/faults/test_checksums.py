"""Page-checksum sidecar behaviour, plus version-group drop bookkeeping."""

from __future__ import annotations

import zlib

import pytest

from repro.errors import CorruptPageError, StorageError
from repro.storage import DiskStore, Page


def make_store() -> DiskStore:
    store = DiskStore(page_size=64)
    store.create_file("f")
    store.allocate_page("f")
    store.allocate_page("f")
    return store


class TestChecksumMaintenance:
    def test_fresh_pages_verify(self):
        store = make_store()
        assert store.verify_page("f", 0)
        assert store.corrupt_pages("f") == []
        store.read_page("f", 0)  # no raise

    def test_write_updates_sidecar(self):
        store = make_store()
        page = Page(64)
        page.write_bytes(0, b"payload")
        store.write_page("f", 0, page)
        assert store.page_checksums("f")[0] == zlib.crc32(page.image())
        assert store.verify_page("f", 0)

    def test_corruption_raises_on_read(self):
        store = make_store()
        store._apply_corruption("f", 1, b"\x01" * 64)
        with pytest.raises(CorruptPageError):
            store.read_page("f", 1)
        assert store.corrupt_pages("f") == [1]
        assert store.checksum_report()["f"] == [1]
        # the clean page still reads fine
        store.read_page("f", 0)

    def test_verification_can_be_disabled(self):
        store = make_store()
        store._apply_corruption("f", 0, b"\x01" * 64)
        store.verify_checksums = False
        store.read_page("f", 0)  # escape hatch: no raise

    def test_corruption_bumps_version(self):
        """Decode caches must re-read (and detect) corrupted content."""
        store = make_store()
        before = store.version("f")
        store._apply_corruption("f", 0, b"\x01" * 64)
        assert store.version("f") > before

    def test_offline_checks_touch_no_metrics(self):
        from repro.obs.metrics import REGISTRY

        store = make_store()
        reads_before = REGISTRY.counter("storage.disk.page_reads").value
        store.verify_page("f", 0)
        store.corrupt_pages("f")
        store.checksum_report()
        store.page_image("f", 0)
        assert REGISTRY.counter("storage.disk.page_reads").value == reads_before

    def test_drop_file_clears_sidecar(self):
        store = make_store()
        store.drop_file("f")
        store.create_file("f")
        assert store.page_checksums("f") == []


class TestAdoptPages:
    def test_adopt_recomputes_when_no_checksums_given(self):
        store = DiskStore(page_size=64)
        store.create_file("g")
        store.adopt_pages("g", [b"\x07" * 64])
        assert store.verify_page("g", 0)

    def test_adopt_with_external_checksums_detects_mismatch(self):
        store = DiskStore(page_size=64)
        store.create_file("g")
        good = b"\x07" * 64
        store.adopt_pages("g", [good, b"\x08" * 64],
                          checksums=[zlib.crc32(good), zlib.crc32(good)])
        assert store.corrupt_pages("g") == [1]

    def test_adopt_validates_lengths(self):
        store = DiskStore(page_size=64)
        store.create_file("g")
        with pytest.raises(StorageError):
            store.adopt_pages("g", [b"short"])
        with pytest.raises(StorageError):
            store.adopt_pages("g", [b"\x00" * 64], checksums=[1, 2])


class TestDropFileGroupBookkeeping:
    """Regression: drop_file must remove version-group membership."""

    def test_recreated_file_does_not_rejoin_old_group(self):
        store = DiskStore(page_size=64)
        store.create_file("a")
        store.create_file("b")
        store.register_version_group("grp", ["a", "b"])
        store.drop_file("a")
        after_drop = store.group_version("grp")
        store.create_file("a")  # same name, new incarnation
        store.allocate_page("a")
        store.bump_version("a")
        # the new 'a' is not a member: its bumps leave the group untouched
        assert store.group_version("grp") == after_drop
        # the surviving member still drives the group
        store.bump_version("b")
        assert store.group_version("grp") == after_drop + 1

    def test_drop_bumps_group_once(self):
        """Caches keyed on the old membership must be invalidated."""
        store = DiskStore(page_size=64)
        store.create_file("a")
        store.register_version_group("grp", ["a"])
        before = store.group_version("grp")
        store.drop_file("a")
        assert store.group_version("grp") == before + 1

    def test_file_versions_survive_drop_recreate(self):
        """(name, version) keys must never alias across incarnations."""
        store = DiskStore(page_size=64)
        store.create_file("a")
        store.allocate_page("a")
        v_old = store.version("a")
        store.drop_file("a")
        store.create_file("a")
        assert store.version("a") > v_old
