"""Unit tests for the fault injector and the retry machinery."""

from __future__ import annotations

import zlib

import pytest

from repro.errors import (
    CorruptPageError,
    SimulatedCrashError,
    StorageError,
    TransientIOError,
)
from repro.obs.metrics import REGISTRY
from repro.storage import (
    DiskStore,
    FaultInjector,
    FaultRule,
    Page,
    RetryPolicy,
    StorageManager,
    with_retries,
)


def make_store(pages: int = 3, name: str = "f") -> DiskStore:
    store = DiskStore(page_size=128)
    store.create_file(name)
    for page_no in range(pages):
        store.allocate_page(name)
        page = Page(128)
        page.write_bytes(0, bytes([page_no + 1]) * 16)
        store.write_page(name, page_no, page)
    return store


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(StorageError):
            FaultRule("munge", "transient")
        with pytest.raises(StorageError):
            FaultRule("read", "gamma-ray")
        with pytest.raises(StorageError):
            FaultRule("read", "torn")  # torn is write-only
        with pytest.raises(StorageError):
            FaultRule("read", "transient", at_call=0)
        with pytest.raises(StorageError):
            FaultRule("read", "transient", count=0)

    def test_matching(self):
        rule = FaultRule("read", "transient", file="ssf:*", page=2)
        assert rule.matches("read", "ssf:Student.hobbies:oids", 2)
        assert not rule.matches("write", "ssf:Student.hobbies:oids", 2)
        assert not rule.matches("read", "ssf:Student.hobbies:oids", 1)
        assert not rule.matches("read", "objects:Student", 2)

    def test_wildcards_default_to_any(self):
        rule = FaultRule("write", "crash")
        assert rule.matches("write", "anything", 17)


class TestDeterministicFaults:
    def test_transient_fires_on_nth_matching_call(self):
        injector = FaultInjector(
            make_store(), [FaultRule("read", "transient", at_call=2)]
        )
        injector.read_page("f", 0)  # call 1: clean
        with pytest.raises(TransientIOError):
            injector.read_page("f", 1)  # call 2: faults
        injector.read_page("f", 2)  # call 3: clean again
        assert [f.kind for f in injector.injected] == ["transient"]
        assert injector.op_counts["read"] == 3

    def test_count_spans_consecutive_matching_calls(self):
        injector = FaultInjector(
            make_store(), [FaultRule("read", "transient", count=2)]
        )
        with pytest.raises(TransientIOError):
            injector.read_page("f", 0)
        with pytest.raises(TransientIOError):
            injector.read_page("f", 0)
        injector.read_page("f", 0)  # third attempt succeeds
        assert len(injector.injected) == 2

    def test_crash_is_not_a_storage_error(self):
        injector = FaultInjector(make_store(), [FaultRule("write", "crash")])
        with pytest.raises(SimulatedCrashError) as info:
            injector.write_page("f", 0, Page(128))
        assert not isinstance(info.value, StorageError)
        # the crash preempted the device: content unchanged
        assert injector.inner.page_image("f", 0)[0] == 1

    def test_read_bitflip_surfaces_as_corrupt_page(self):
        injector = FaultInjector(
            make_store(), [FaultRule("read", "bitflip", bit=7)]
        )
        with pytest.raises(CorruptPageError):
            injector.read_page("f", 0)
        assert injector.inner.corrupt_pages("f") == [0]

    def test_write_bitflip_lands_then_corrupts(self):
        injector = FaultInjector(
            make_store(), [FaultRule("write", "bitflip", file="f", page=1)]
        )
        page = Page(128)
        page.write_bytes(0, b"\xaa" * 128)
        injector.write_page("f", 1, page)
        stored = injector.inner.page_image("f", 1)
        assert stored != page.image()  # one bit differs
        assert sum(
            bin(a ^ b).count("1") for a, b in zip(stored, page.image())
        ) == 1
        with pytest.raises(CorruptPageError):
            injector.read_page("f", 1)

    def test_torn_write_keeps_old_tail_and_intended_checksum(self):
        injector = FaultInjector(
            make_store(), [FaultRule("write", "torn", file="f", page=0)]
        )
        page = Page(128)
        page.write_bytes(0, b"\xbb" * 128)
        injector.write_page("f", 0, page)  # silent: no exception
        stored = injector.inner.page_image("f", 0)
        assert stored[:64] == b"\xbb" * 64
        assert stored[64:] == bytes(64)  # old image's tail (zero fill)
        # the sidecar recorded the intended image, so the tear is detectable
        assert injector.inner.page_checksums("f")[0] == zlib.crc32(page.image())
        with pytest.raises(CorruptPageError):
            injector.read_page("f", 0)

    def test_disarm_passes_everything_through(self):
        injector = FaultInjector(make_store(), [FaultRule("read", "transient")])
        injector.armed = False
        injector.read_page("f", 0)
        assert injector.injected == []

    def test_injected_metric(self):
        injector = FaultInjector(make_store(), [FaultRule("read", "transient")])
        with pytest.raises(TransientIOError):
            injector.read_page("f", 0)
        assert REGISTRY.counter("storage.faults.injected").value == 1

    def test_delegates_everything_else(self):
        injector = FaultInjector(make_store())
        assert injector.num_pages("f") == 3
        assert injector.exists("f")
        assert injector.page_size == 128


class TestSeededRandomFaults:
    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            injector = FaultInjector(
                make_store(), seed=seed, transient_read_rate=0.5
            )
            outcomes = []
            for _ in range(40):
                try:
                    injector.read_page("f", 0)
                    outcomes.append("ok")
                except TransientIOError:
                    outcomes.append("fault")
            return outcomes

        assert run(11) == run(11)
        assert run(11) != run(12)  # astronomically unlikely to collide
        assert "fault" in run(11) and "ok" in run(11)

    def test_rate_validation(self):
        with pytest.raises(StorageError):
            FaultInjector(make_store(), transient_read_rate=1.5)


class TestRetry:
    def test_with_retries_recovers_and_counts(self):
        calls = {"n": 0}

        def operation():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("flaky")
            return "done"

        assert with_retries(operation, RetryPolicy(max_attempts=3)) == "done"
        assert calls["n"] == 3
        assert REGISTRY.counter("storage.retries").value == 2

    def test_with_retries_exhausts(self):
        def operation():
            raise TransientIOError("always")

        with pytest.raises(TransientIOError):
            with_retries(operation, RetryPolicy(max_attempts=2))
        assert REGISTRY.counter("storage.retries").value == 2

    def test_policy_validation(self):
        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(StorageError):
            RetryPolicy(backoff_seconds=-1)
        with pytest.raises(StorageError):
            RetryPolicy(jitter_seconds=-0.1)
        with pytest.raises(StorageError):
            RetryPolicy(max_elapsed_seconds=0)

    def test_jitter_adds_bounded_random_delay(self):
        import random

        policy = RetryPolicy(
            backoff_seconds=0.01, multiplier=1.0, jitter_seconds=0.05
        )
        delays = [
            policy.sleep_for(1, rng=random.Random(seed)) for seed in range(20)
        ]
        assert all(0.01 <= d <= 0.06 for d in delays)
        assert len(set(delays)) > 1  # the jitter actually decorrelates
        # same rng state => same delay: replayable under a fixed seed
        assert policy.sleep_for(2, rng=random.Random(7)) == policy.sleep_for(
            2, rng=random.Random(7)
        )
        # without jitter the schedule is the plain exponential backoff
        plain = RetryPolicy(backoff_seconds=0.01, multiplier=2.0)
        assert [plain.sleep_for(a) for a in (1, 2, 3)] == [0.01, 0.02, 0.04]

    def test_max_elapsed_cap_stops_retries_early(self):
        calls = {"n": 0}

        def operation():
            calls["n"] += 1
            raise TransientIOError("always")

        policy = RetryPolicy(
            max_attempts=50,
            backoff_seconds=0.002,
            multiplier=1.0,
            max_elapsed_seconds=0.01,
        )
        with pytest.raises(TransientIOError):
            with_retries(operation, policy)
        # the cap, not the attempt budget, ended the loop
        assert 2 <= calls["n"] < 50

    def test_pool_retries_transient_reads(self):
        manager = StorageManager(page_size=128, pool_capacity=0)
        handle = manager.create_file("f")
        handle.append_page()
        injector = manager.attach_fault_injector(
            rules=[FaultRule("read", "transient", count=2)]
        )
        # default policy allows 3 attempts: two faults, then success
        handle.read_page(0)
        assert len(injector.injected) == 2
        assert REGISTRY.counter("storage.retries").value == 2

    def test_pool_gives_up_after_max_attempts(self):
        manager = StorageManager(page_size=128, pool_capacity=0)
        handle = manager.create_file("f")
        handle.append_page()
        manager.attach_fault_injector(
            rules=[FaultRule("read", "transient", count=10)]
        )
        with pytest.raises(TransientIOError):
            handle.read_page(0)


class TestAttachDetach:
    def test_attach_rewires_store_and_pool(self):
        manager = StorageManager(page_size=128)
        injector = manager.attach_fault_injector()
        assert manager.store is injector
        assert manager.pool.store is injector
        manager.detach_fault_injector()
        assert isinstance(manager.store, DiskStore)
        assert manager.pool.store is manager.store

    def test_double_attach_rejected(self):
        manager = StorageManager(page_size=128)
        manager.attach_fault_injector()
        with pytest.raises(StorageError):
            manager.attach_fault_injector()

    def test_detach_without_attach_is_noop(self):
        manager = StorageManager(page_size=128)
        manager.detach_fault_injector()
        assert isinstance(manager.store, DiskStore)

    def test_attach_takes_instance_or_kwargs_not_both(self):
        manager = StorageManager(page_size=128)
        injector = FaultInjector(manager.store)
        with pytest.raises(StorageError):
            manager.attach_fault_injector(injector, seed=1)
