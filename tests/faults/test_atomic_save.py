"""Satellite (a): ``save_database`` is atomic under crashes.

A crash at any point mid-save must leave the previous snapshot at the
target path intact (loading yields the pre-crash state) and must not leave
a partial ``<path>.tmp`` behind.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import SimulatedCrashError
from repro.persistence import load_database, save_database
from repro.storage import FaultRule
from tests.conftest import HOBBIES
from tests.faults.conftest import (
    QUERY_SETS,
    build_indexed_db,
    scan_ground_truth,
    superset_results,
)


def test_crash_mid_save_keeps_previous_snapshot(tmp_path):
    db = build_indexed_db(count=30)
    target = tmp_path / "db.sigdb"
    save_database(db, target)
    baseline = scan_ground_truth(db, QUERY_SETS[0])

    # Change the database, then crash while the new snapshot is being
    # assembled (saving reads every page through the device).
    db.insert("Student", {"name": "late", "hobbies": set(HOBBIES[:3])})
    db.storage.attach_fault_injector(
        rules=[FaultRule("read", "crash", at_call=5)]
    )
    with pytest.raises(SimulatedCrashError):
        save_database(db, target)
    db.storage.detach_fault_injector()

    assert not os.path.exists(f"{target}.tmp")
    loaded = load_database(target)
    assert scan_ground_truth(loaded, QUERY_SETS[0]) == baseline
    oids, _ = superset_results(loaded, QUERY_SETS[0], "ssf")
    assert oids == baseline


def test_failure_during_file_write_keeps_previous_snapshot(tmp_path, monkeypatch):
    db = build_indexed_db(count=30)
    target = tmp_path / "db.sigdb"
    save_database(db, target)
    before = target.read_bytes()

    import repro.persistence.snapshot as snapshot_module

    def exploding_write(stream, catalog, payloads):
        stream.write(b"partial garbage")
        raise OSError("disk full")

    monkeypatch.setattr(snapshot_module, "write_snapshot", exploding_write)
    with pytest.raises(OSError):
        save_database(db, target)
    monkeypatch.undo()

    assert not os.path.exists(f"{target}.tmp")
    assert target.read_bytes() == before
    load_database(target)  # still a valid snapshot


def test_successful_save_replaces_previous_snapshot(tmp_path):
    db = build_indexed_db(count=30)
    target = tmp_path / "db.sigdb"
    save_database(db, target)
    db.insert("Student", {"name": "late", "hobbies": set(HOBBIES[:3])})
    save_database(db, target)
    assert not os.path.exists(f"{target}.tmp")
    loaded = load_database(target)
    assert loaded.count("Student") == 31
    assert scan_ground_truth(loaded, QUERY_SETS[0]) == scan_ground_truth(
        db, QUERY_SETS[0]
    )
