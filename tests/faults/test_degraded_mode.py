"""Degraded-mode execution: exact answers while any facility page is bad.

The acceptance sweep drives the headline guarantee: with a live
``FaultInjector`` corrupting any single facility page, every query in the
fixed-seed suite still returns exact correct results (via degraded
fallback), ``fsck`` reports the corruption, and ``rebuild_facility``
restores a checksum-clean state whose page-access profile is bit-identical
to a fresh build.
"""

from __future__ import annotations

import pytest

from repro.core.signature import SetPredicateKind
from repro.obs.metrics import REGISTRY
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import ParsedQuery
from repro.query.planner import AccessPlan, SecondaryAccess
from repro.query.predicates import SetPredicate
from repro.recovery import run_fsck
from repro.storage import FaultRule
from tests.conftest import HOBBIES, populate_students
from tests.faults.conftest import (
    QUERY_SETS,
    build_indexed_db,
    corrupt_page,
    facility_files,
    scan_ground_truth,
    superset_results,
)

FACILITIES = ("ssf", "bssf", "nix")


class TestSingleCorruptPageSweep:
    """Any single bad facility page: queries stay exact, repair is clean."""

    @pytest.mark.parametrize("facility", FACILITIES)
    def test_every_page_of_every_file(self, facility):
        db = build_indexed_db()
        truths = {qs: scan_ground_truth(db, qs) for qs in QUERY_SETS}
        store = db.storage.store
        for file_name in facility_files(db, facility):
            for page_no in range(store.num_pages(file_name)):
                injector = db.storage.attach_fault_injector(
                    rules=[
                        FaultRule("read", "bitflip", file=file_name, page=page_no)
                    ]
                )
                try:
                    for query_set in QUERY_SETS:
                        oids, _ = superset_results(db, query_set, facility)
                        assert oids == truths[query_set], (
                            f"wrong answer with {file_name!r} page {page_no} bad"
                        )
                finally:
                    db.storage.detach_fault_injector()
                if injector.injected:
                    # The page was actually read and corrupted; fsck must
                    # see it, and a rebuild must restore a clean state.
                    assert not run_fsck(db).ok
                    db.rebuild_facility("Student", "hobbies", facility)
                assert run_fsck(db).ok

    def test_rebuilt_facility_matches_fresh_build_page_counts(self):
        """After corrupt -> degrade -> rebuild, the page-access profile of
        every query is bit-identical to a never-damaged twin's."""
        damaged = build_indexed_db()
        fresh = build_indexed_db()
        file_name = facility_files(damaged, "ssf")[0]
        corrupt_page(damaged, file_name, 0)
        # Trip the degradation, then repair.
        superset_results(damaged, QUERY_SETS[0], "ssf")
        assert damaged.is_degraded("Student", "hobbies", "ssf")
        damaged.rebuild_facility("Student", "hobbies", "ssf")
        assert run_fsck(damaged).ok
        for facility in FACILITIES:
            for query_set in QUERY_SETS:
                oids_a, stats_a = superset_results(damaged, query_set, facility)
                oids_b, stats_b = superset_results(fresh, query_set, facility)
                assert oids_a == oids_b
                assert list(stats_a.io.files()) == list(stats_b.io.files())
                assert "degraded" not in stats_a.detail


class TestDegradationBookkeeping:
    def test_fallback_marks_facility_and_plan(self, indexed_db):
        db = indexed_db
        file_name = facility_files(db, "ssf")[0]
        corrupt_page(db, file_name, 0)
        truth = scan_ground_truth(db, QUERY_SETS[0])
        oids, stats = superset_results(db, QUERY_SETS[0], "ssf")
        assert oids == truth
        assert stats.plan.endswith("-> degraded-fallback scan(Student)")
        assert stats.detail["degraded"]["facility"] == "ssf"
        assert db.is_degraded("Student", "hobbies", "ssf")
        assert db.degraded_facilities() == {
            "Student.hobbies/ssf": db.degraded_reason(
                "Student", "hobbies", "ssf"
            )
        }
        assert REGISTRY.counter("query.degraded_fallbacks").value == 1
        assert REGISTRY.gauge("recovery.degraded_facilities").value == 1

    def test_degraded_facility_stays_degraded_until_rebuilt(self, indexed_db):
        db = indexed_db
        corrupt_page(db, facility_files(db, "ssf")[0], 0)
        superset_results(db, QUERY_SETS[0], "ssf")
        # Second query never touches the damaged facility: straight to scan.
        oids, stats = superset_results(db, QUERY_SETS[1], "ssf")
        assert oids == scan_ground_truth(db, QUERY_SETS[1])
        assert "degraded" in stats.detail
        assert REGISTRY.counter("query.degraded_fallbacks").value == 2
        db.rebuild_facility("Student", "hobbies", "ssf")
        assert not db.is_degraded("Student", "hobbies", "ssf")
        assert REGISTRY.counter("recovery.rebuilds").value == 1
        assert REGISTRY.gauge("recovery.degraded_facilities").value == 0
        oids, stats = superset_results(db, QUERY_SETS[0], "ssf")
        assert oids == scan_ground_truth(db, QUERY_SETS[0])
        assert "degraded" not in stats.detail

    def test_other_facilities_unaffected(self, indexed_db):
        db = indexed_db
        corrupt_page(db, facility_files(db, "ssf")[0], 0)
        superset_results(db, QUERY_SETS[0], "ssf")
        oids, stats = superset_results(db, QUERY_SETS[0], "bssf")
        assert oids == scan_ground_truth(db, QUERY_SETS[0])
        assert "degraded" not in stats.detail

    def test_fsck_reports_the_corruption(self, indexed_db):
        db = indexed_db
        file_name = facility_files(db, "nix")[0]
        corrupt_page(db, file_name, 0)
        report = run_fsck(db)
        assert not report.ok
        assert any(
            issue.kind == "checksum" and issue.subject == file_name
            for issue in report.issues
        )
        db.rebuild_facility("Student", "hobbies", "nix")
        assert run_fsck(db, deep=True).ok


class TestAutoRebuild:
    def test_auto_rebuild_heals_on_next_access(self):
        db = build_indexed_db()
        db.auto_rebuild = True
        corrupt_page(db, facility_files(db, "ssf")[0], 0)
        oids, stats = superset_results(db, QUERY_SETS[0], "ssf")
        assert oids == scan_ground_truth(db, QUERY_SETS[0])
        # The rebuild happened inline: no fallback scan, healthy plan.
        assert "degraded" not in stats.detail
        assert "degraded-fallback" not in stats.plan
        assert not db.is_degraded("Student", "hobbies", "ssf")
        assert REGISTRY.counter("recovery.rebuilds").value == 1
        assert REGISTRY.counter("query.degraded_fallbacks").value == 0
        assert run_fsck(db).ok


class TestIntersectionLeg:
    """A damaged second leg skips the intersection, never the answer."""

    def _two_attribute_db(self):
        from repro.objects.database import Database
        from repro.objects.schema import ClassSchema

        db = Database(page_size=4096, pool_capacity=0)
        db.define_class(
            ClassSchema.build(
                "Student", name="scalar", hobbies="set", sports="set"
            )
        )
        import random

        rng = random.Random(7)
        for i in range(40):
            db.insert(
                "Student",
                {
                    "name": f"s{i:03d}",
                    "hobbies": set(rng.sample(HOBBIES, 3)),
                    "sports": set(rng.sample(HOBBIES, 2)),
                },
            )
        db.create_ssf_index(
            "Student", "hobbies", signature_bits=32, bits_per_element=2, seed=3
        )
        db.create_ssf_index(
            "Student", "sports", signature_bits=32, bits_per_element=2, seed=3
        )
        return db

    def test_second_leg_failure_skips_intersection(self):
        db = self._two_attribute_db()
        first = SetPredicate(
            "hobbies", SetPredicateKind.HAS_SUBSET, frozenset({HOBBIES[0]})
        )
        second = SetPredicate(
            "sports", SetPredicateKind.HAS_SUBSET, frozenset({HOBBIES[1]})
        )
        plan = AccessPlan(
            class_name="Student",
            driving_predicate=first,
            facility_name="ssf",
            search_mode="superset",
            residual_predicates=(second,),
            intersect_with=SecondaryAccess(second, "ssf", "superset"),
        )
        query = ParsedQuery(class_name="Student", predicates=(first, second))
        truth = sorted(
            oid
            for oid, values in db.objects.scan("Student")
            if first.matches(values) and second.matches(values)
        )
        store = db.storage.store
        for file_name in facility_files(db, "ssf"):
            if ".sports:" in file_name:
                for page_no in range(store.num_pages(file_name)):
                    corrupt_page(db, file_name, page_no)
        result = QueryExecutor(db).execute_plan(plan, query)
        assert sorted(result.oids()) == truth
        detail = result.statistics.detail
        assert detail["intersection_skipped"]["facility"] == "ssf"
        assert db.is_degraded("Student", "sports", "ssf")
        assert not db.is_degraded("Student", "hobbies", "ssf")
        # a skipped intersection narrows nothing but degrades nothing
        # user-visible either: it is NOT a fallback scan
        assert REGISTRY.counter("query.degraded_fallbacks").value == 0

    def test_both_legs_failing_counts_one_fallback(self):
        """Regression: the fallback metric is per *query*, not per leg.

        With both legs of an intersection plan corrupt, the executor
        answers via a single degraded scan; the counter must read exactly
        1, however many facilities failed along the way.
        """
        db = self._two_attribute_db()
        first = SetPredicate(
            "hobbies", SetPredicateKind.HAS_SUBSET, frozenset({HOBBIES[0]})
        )
        second = SetPredicate(
            "sports", SetPredicateKind.HAS_SUBSET, frozenset({HOBBIES[1]})
        )
        plan = AccessPlan(
            class_name="Student",
            driving_predicate=first,
            facility_name="ssf",
            search_mode="superset",
            residual_predicates=(second,),
            intersect_with=SecondaryAccess(second, "ssf", "superset"),
        )
        query = ParsedQuery(class_name="Student", predicates=(first, second))
        truth = sorted(
            oid
            for oid, values in db.objects.scan("Student")
            if first.matches(values) and second.matches(values)
        )
        store = db.storage.store
        for file_name in facility_files(db, "ssf"):
            for page_no in range(store.num_pages(file_name)):
                corrupt_page(db, file_name, page_no)
        result = QueryExecutor(db).execute_plan(plan, query)
        assert sorted(result.oids()) == truth
        assert "degraded" in result.statistics.detail
        assert result.statistics.plan.endswith(
            "-> degraded-fallback scan(Student)"
        )
        assert REGISTRY.counter("query.degraded_fallbacks").value == 1

    def test_healthy_intersection_still_runs(self):
        db = self._two_attribute_db()
        first = SetPredicate(
            "hobbies", SetPredicateKind.HAS_SUBSET, frozenset({HOBBIES[0]})
        )
        second = SetPredicate(
            "sports", SetPredicateKind.HAS_SUBSET, frozenset({HOBBIES[1]})
        )
        plan = AccessPlan(
            class_name="Student",
            driving_predicate=first,
            facility_name="ssf",
            search_mode="superset",
            residual_predicates=(second,),
            intersect_with=SecondaryAccess(second, "ssf", "superset"),
        )
        query = ParsedQuery(class_name="Student", predicates=(first, second))
        result = QueryExecutor(db).execute_plan(plan, query)
        assert "intersected_with" in result.statistics.detail
