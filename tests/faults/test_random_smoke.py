"""Randomized fault smoke: seeded chaos, exact answers anyway.

CI runs this with a fresh ``FAULTS_RANDOM_SEED`` each time (the seed is
printed by ``tools/check.sh``); set the variable to replay a failure
exactly. Without the variable a fixed default keeps local runs
deterministic.
"""

from __future__ import annotations

import os
import random

from repro.recovery import rebuild_degraded, run_fsck
from repro.storage import FaultRule, RetryPolicy
from tests.faults.conftest import (
    QUERY_SETS,
    build_indexed_db,
    facility_files,
    scan_ground_truth,
    superset_results,
)

SEED = int(os.environ.get("FAULTS_RANDOM_SEED", "1993"))

#: at rate 0.05, six attempts fail together with probability ~1.6e-8 —
#: the smoke run stays deterministic-in-outcome for any seed.
RETRIES = RetryPolicy(max_attempts=6)


def test_queries_survive_random_transient_faults():
    db = build_indexed_db()
    db.storage.pool.retry_policy = RETRIES
    truths = {qs: scan_ground_truth(db, qs) for qs in QUERY_SETS}
    db.storage.attach_fault_injector(seed=SEED, transient_read_rate=0.05)
    try:
        for round_no in range(5):
            for facility in ("ssf", "bssf", "nix"):
                for query_set in QUERY_SETS:
                    oids, _ = superset_results(db, query_set, facility)
                    assert oids == truths[query_set], (
                        f"seed {SEED}: wrong answer "
                        f"({facility}, round {round_no})"
                    )
    finally:
        db.storage.detach_fault_injector()


def test_queries_survive_random_corruption_with_repair():
    db = build_indexed_db()
    db.storage.pool.retry_policy = RETRIES
    truths = {qs: scan_ground_truth(db, qs) for qs in QUERY_SETS}
    rng = random.Random(SEED)
    store = db.storage.store
    # Corrupt one randomly chosen page of each facility, then mix random
    # transient faults on top of the resulting degraded-mode traffic.
    rules = []
    for facility in ("ssf", "bssf", "nix"):
        file_name = rng.choice(facility_files(db, facility))
        page_no = rng.randrange(store.num_pages(file_name))
        rules.append(
            FaultRule("read", "bitflip", file=file_name, page=page_no,
                      bit=rng.randrange(256))
        )
    db.storage.attach_fault_injector(
        rules=rules, seed=SEED, transient_read_rate=0.03
    )
    try:
        for facility in ("ssf", "bssf", "nix"):
            for query_set in QUERY_SETS:
                oids, _ = superset_results(db, query_set, facility)
                assert oids == truths[query_set], (
                    f"seed {SEED}: wrong answer under corruption ({facility})"
                )
    finally:
        db.storage.detach_fault_injector()
    rebuild_degraded(db)
    assert run_fsck(db, deep=True).ok, f"seed {SEED}: fsck dirty after repair"
    for facility in ("ssf", "bssf", "nix"):
        for query_set in QUERY_SETS:
            oids, stats = superset_results(db, query_set, facility)
            assert oids == truths[query_set]
            assert "degraded" not in stats.detail
