"""LSM crash matrix: byte-equivalent recovery at flush/compaction/manifest points.

Same durable-prefix method as ``test_wal_crash_matrix.py`` — a WAL-free
baseline database applying the first ``p`` operations is the exact state
recovery must reproduce when ``p`` records survive — but the workload runs
against LSM facilities with a tiny flush threshold, so the sampled crash
points land *inside* memtable flushes, compaction-output builds and
manifest slot installs. All of those are deterministic functions of the
operation history (that is the design invariant the matrix enforces), so
recovery after a crash at any of them must be byte-identical to the
durable prefix, run files and manifest slots included.
"""

from __future__ import annotations

import os
import random
from typing import List

import pytest

from repro.errors import SimulatedCrashError
from repro.lsm.manifest import SLOT_SUFFIXES, manifest_slot_name
from repro.objects.database import Database
from repro.objects.oid import OID
from repro.objects.schema import ClassSchema
from repro.recovery import run_fsck
from repro.storage import FaultRule
from repro.wal.log import WAL_FILE_NAME, scan_wal
from tests.conftest import HOBBIES
from tests.wal.conftest import fingerprint

MAX_POINTS = 12
NEVER = 10**9

#: tiny layout so the short workload crosses many flush/compaction installs
LSM_PARAMS = dict(
    signature_bits=32, bits_per_element=2, seed=3,
    lsm=True, flush_threshold=4, fanout=2,
)

#: device-write crash dimensions: run-file builds (memtable flushes and
#: compaction outputs share the run writer) and manifest slot installs
WRITE_PATTERNS = [
    "ssf:Student.hobbies:r*",
    "bssf:Student.hobbies:r*",
    "ssf:Student.hobbies:manifest:*",
    "bssf:Student.hobbies:manifest:*",
]

STUDENT_CLASS_ID = 1


def workload_ops():
    rng = random.Random(23)
    ops = [
        ("define", lambda db: db.define_class(
            ClassSchema.build("Student", name="scalar", hobbies="set"))),
        ("create ssf", lambda db: db.create_ssf_index(
            "Student", "hobbies", **LSM_PARAMS)),
        ("create bssf", lambda db: db.create_bssf_index(
            "Student", "hobbies", **LSM_PARAMS)),
    ]

    def _insert(i, hobbies):
        return lambda db: db.insert(
            "Student", {"name": f"s{i:03d}", "hobbies": set(hobbies)}
        )

    def _update(serial, hobbies):
        return lambda db: db.update(
            OID(STUDENT_CLASS_ID, serial),
            {"name": f"u{serial:03d}", "hobbies": set(hobbies)},
        )

    def _delete(serial):
        return lambda db: db.delete(OID(STUDENT_CLASS_ID, serial))

    for i in range(14):
        ops.append((f"insert {i}", _insert(i, rng.sample(HOBBIES, 3))))
    ops.append(("update 2", _update(2, rng.sample(HOBBIES, 3))))
    ops.append(("update 5", _update(5, rng.sample(HOBBIES, 2))))
    ops.append(("delete 3", _delete(3)))
    ops.append(("insert 14", _insert(14, rng.sample(HOBBIES, 3))))
    ops.append(("delete 7", _delete(7)))
    return ops


def apply_ops(db, ops):
    for _, op in ops:
        op(db)


def lsm_fingerprint(db: Database) -> dict:
    """Durable pages plus the facilities' uncharged in-memory layer.

    Byte-equivalence of the page store alone would miss a divergent
    memtable or live map, so the fingerprint folds them in.
    """
    base = fingerprint(db)
    facilities = {}
    for (class_name, attribute), per_path in sorted(db._indexes.items()):
        for name, facility in sorted(per_path.items()):
            if not getattr(facility, "is_lsm", False):
                continue
            facilities[f"{class_name}.{attribute}/{name}"] = {
                "memtable": facility.memtable.to_state(),
                "runs": [run.to_state() for run in facility.runs],
                "live": sorted(
                    (oid.to_int(), seq) for oid, seq in facility._live.items()
                ),
                "next_seq": facility._next_seq,
                "next_run_id": facility._next_run_id,
                "manifest_version": facility.manifest.version,
            }
    base["lsm"] = facilities
    return base


_BASELINES = None


def baselines() -> List[dict]:
    global _BASELINES
    if _BASELINES is None:
        db = Database(page_size=4096, pool_capacity=0)
        result = [lsm_fingerprint(db)]
        for _, op in workload_ops():
            op(db)
            result.append(lsm_fingerprint(db))
        _BASELINES = result
    return _BASELINES


def sampled(total: int) -> list:
    if total <= MAX_POINTS:
        return list(range(1, total + 1))
    stride = total / MAX_POINTS
    points = sorted({round(1 + i * stride) for i in range(MAX_POINTS)} | {total})
    return [p for p in points if 1 <= p <= total]


def durable_ops(wal_dir: str) -> int:
    scan = scan_wal(os.path.join(wal_dir, WAL_FILE_NAME))
    return sum(1 for r in scan.records if not r.type.startswith("checkpoint"))


def crash_then_recover(tmp_path, rule: FaultRule, label: str) -> None:
    wal_dir = str(tmp_path)
    db = Database(wal_dir=wal_dir, durability="lsm")
    db.attach_fault_injector(rules=[rule])
    with pytest.raises(SimulatedCrashError):
        apply_ops(db, workload_ops())
    db.detach_fault_injector()
    db.close()

    p = durable_ops(wal_dir)
    recovered = Database.open(wal_dir)
    if p >= 2:  # the first create_index record is what marks the DB as LSM
        assert recovered.durability == "lsm"
    assert lsm_fingerprint(recovered) == baselines()[p], (
        f"{label}: recovery does not match the {p}-op durable prefix"
    )
    assert run_fsck(recovered, deep=True).ok, f"{label}: fsck dirty"
    recovered.close()


def test_crash_before_every_wal_append(tmp_path_factory):
    for at_call in sampled(len(workload_ops())):
        tmp = tmp_path_factory.mktemp("lsm-crash")
        crash_then_recover(
            tmp,
            FaultRule("wal-append", "crash", at_call=at_call),
            f"wal-append crash @{at_call}",
        )
        assert durable_ops(str(tmp)) == at_call - 1


def test_torn_write_inside_every_wal_append(tmp_path_factory):
    for at_call in sampled(len(workload_ops())):
        tmp = tmp_path_factory.mktemp("lsm-torn")
        crash_then_recover(
            tmp,
            FaultRule("wal-append", "torn", at_call=at_call),
            f"wal-append torn @{at_call}",
        )
        assert durable_ops(str(tmp)) == at_call - 1


def device_write_points(pattern: str, tmp_path) -> int:
    db = Database(wal_dir=str(tmp_path), durability="lsm")
    injector = db.attach_fault_injector(
        rules=[FaultRule("write", "crash", file=pattern, at_call=NEVER)]
    )
    apply_ops(db, workload_ops())
    total = injector.rule_calls(0)
    db.detach_fault_injector()
    db.close()
    return total


@pytest.mark.parametrize("pattern", WRITE_PATTERNS)
def test_crash_at_every_flush_compaction_and_manifest_write(
    pattern, tmp_path_factory
):
    """Crashes inside run builds and manifest installs roll forward exactly."""
    total = device_write_points(pattern, tmp_path_factory.mktemp("lsm-dry"))
    assert total > 0, f"workload never wrote to {pattern}"
    for at_call in sampled(total):
        crash_then_recover(
            tmp_path_factory.mktemp("lsm-dev"),
            FaultRule("write", "crash", file=pattern, at_call=at_call),
            f"{pattern} write crash @{at_call}",
        )


def test_workload_actually_compacts():
    """Guard: the matrix is vacuous unless merges happen mid-workload."""
    db = Database(page_size=4096, pool_capacity=0)
    apply_ops(db, workload_ops())
    for name in ("ssf", "bssf"):
        facility = db.index("Student", "hobbies", name)
        assert facility.counters["flushes"] >= 3
        assert facility.counters["compactions"] >= 1


def test_torn_manifest_install_rolls_back_to_prior_run_set():
    """A manifest torn mid-install yields the previous version's runs."""
    from repro.lsm import LSMSignatureFacility
    from repro.core.signature import SignatureScheme
    from repro.storage.paged_file import StorageManager

    storage = StorageManager(page_size=4096, pool_capacity=0)
    scheme = SignatureScheme(32, 2, seed=3)
    facility = LSMSignatureFacility(
        storage, scheme, "ssf", "ssf:T.s", flush_threshold=100, fanout=100,
    )
    facility.insert(frozenset({"a", "b"}), OID(1, 0))
    facility.flush()
    state_before = [run.to_state() for run in facility.runs]
    facility.insert(frozenset({"c"}), OID(1, 1))
    facility.flush()

    # tear the slot the second install wrote (version 2 -> slot a)
    torn = manifest_slot_name("ssf:T.s", SLOT_SUFFIXES[facility.manifest.version % 2])
    storage.store._apply_corruption(torn, 0, b"\xfe" * 4096)

    from repro.lsm import RunManifest

    states, rolled_back = RunManifest(storage, "ssf:T.s").load()
    assert rolled_back
    assert states == state_before
