"""Satellite (d): degraded fallback's I/O matches the cost-model scan.

The fallback is an object-file sequential scan, so its page profile must
equal both the analytic prediction (``Pu * N``) and a plain scan plan run
on a never-indexed twin; and ``explain_analyze`` must label the work with
the ``degraded-fallback`` span.
"""

from __future__ import annotations

from repro.costmodel.parameters import CostParameters
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from tests.conftest import populate_students
from tests.faults.conftest import (
    QUERY_SETS,
    build_indexed_db,
    corrupt_page,
    facility_files,
    superset_results,
)

COUNT = 60
OBJECT_FILE = "objects:Student"


def query_text(query_set) -> str:
    elements = ", ".join(f'"{e}"' for e in sorted(query_set))
    return f"select Student where hobbies has-subset ({elements})"


def test_fallback_pages_match_cost_model_scan_prediction():
    db = build_indexed_db(count=COUNT)
    corrupt_page(db, facility_files(db, "ssf")[0], 0)
    _, stats = superset_results(db, QUERY_SETS[0], "ssf")
    assert "degraded" in stats.detail
    params = CostParameters(
        num_objects=COUNT,
        page_bytes=db.storage.page_size,
        domain_cardinality=12,
    )
    predicted = params.pages_per_unsuccessful * COUNT
    assert stats.io.for_file(OBJECT_FILE).logical_reads == predicted


def test_fallback_pages_match_forced_scan_twin():
    damaged = build_indexed_db(count=COUNT)
    corrupt_page(damaged, facility_files(damaged, "ssf")[0], 0)

    # Twin with no facilities at all: the planner can only scan.
    twin = Database(page_size=4096, pool_capacity=0)
    twin.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    populate_students(twin, count=COUNT)

    for query_set in QUERY_SETS:
        oids_a, stats_a = superset_results(damaged, query_set, "ssf")
        result = QueryExecutor(twin).execute_text(query_text(query_set))
        oids_b = sorted(result.oids())
        stats_b = result.statistics
        assert oids_a == oids_b
        assert (
            stats_a.io.for_file(OBJECT_FILE)
            == stats_b.io.for_file(OBJECT_FILE)
        )


def test_explain_analyze_labels_degraded_span():
    db = build_indexed_db(count=COUNT)
    corrupt_page(db, facility_files(db, "ssf")[0], 0)
    report = QueryExecutor(db).explain_analyze(
        query_text(QUERY_SETS[0]),
        ExecutionOptions(prefer_facility="ssf"),
    )
    assert "degraded-fallback" in report
    assert "-> degraded-fallback scan(Student)" in report
