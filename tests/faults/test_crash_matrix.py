"""Crash matrix: a process death at ANY facility write point is repairable.

For each facility kind, a dry run with a never-firing crash rule
enumerates every write the kind's files see during a fixed maintenance
workload (inserts, updates, deletes). The matrix then re-runs the same
workload on a fresh database, crashing at each write point in turn (stride
sampled when the matrix is large), and proves that rebuilding the
facilities always restores a checksum-clean state that answers every
fixed-seed query exactly.

Crashes are confined to facility files: the object file is the source of
truth the recovery story rebuilds from, so its durability is a separate
(snapshot-level) concern.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulatedCrashError
from repro.recovery import run_fsck
from repro.storage import FaultRule
from tests.conftest import HOBBIES
from tests.faults.conftest import (
    QUERY_SETS,
    build_indexed_db,
    scan_ground_truth,
    superset_results,
)

#: keep the matrix fast: test at most this many crash points per kind
MAX_POINTS = 12

NEVER = 10**9


def run_workload(db) -> None:
    """Deterministic maintenance mix touching all three facilities."""
    rng = random.Random(99)
    oids = [oid for oid, _ in db.objects.scan("Student")]
    new = []
    for i in range(4):
        new.append(
            db.insert(
                "Student",
                {"name": f"w{i}", "hobbies": set(rng.sample(HOBBIES, 3))},
            )
        )
    for oid in oids[:3]:
        values = db.get(oid)
        values["hobbies"] = set(rng.sample(HOBBIES, 3))
        db.update(oid, values)
    db.delete(oids[3])
    db.delete(new[0])


def crash_points(pattern: str) -> int:
    """Dry-run the workload counting writes matching ``pattern``."""
    db = build_indexed_db(count=30)
    injector = db.storage.attach_fault_injector(
        rules=[FaultRule("write", "crash", file=pattern, at_call=NEVER)]
    )
    run_workload(db)
    db.storage.detach_fault_injector()
    return injector.rule_calls(0)


def sampled(total: int) -> list:
    if total <= MAX_POINTS:
        return list(range(1, total + 1))
    stride = total / MAX_POINTS
    points = sorted({round(1 + i * stride) for i in range(MAX_POINTS)} | {total})
    return [p for p in points if 1 <= p <= total]


@pytest.mark.parametrize("kind", ["ssf", "bssf", "nix"])
def test_crash_at_every_facility_write_point_is_repairable(kind):
    pattern = f"{kind}:*"
    total = crash_points(pattern)
    assert total > 0, f"workload never wrote to {pattern}"
    for at_call in sampled(total):
        db = build_indexed_db(count=30)
        db.storage.attach_fault_injector(
            rules=[FaultRule("write", "crash", file=pattern, at_call=at_call)]
        )
        with pytest.raises(SimulatedCrashError):
            run_workload(db)
        db.storage.detach_fault_injector()
        # Recovery: rebuild every facility from the surviving object file.
        for facility in ("ssf", "bssf", "nix"):
            db.rebuild_facility("Student", "hobbies", facility)
        assert run_fsck(db, deep=True).ok, f"fsck dirty after crash @{at_call}"
        truths = {qs: scan_ground_truth(db, qs) for qs in QUERY_SETS}
        for facility in ("ssf", "bssf", "nix"):
            for query_set in QUERY_SETS:
                oids, stats = superset_results(db, query_set, facility)
                assert oids == truths[query_set], (
                    f"{facility} wrong after {pattern} crash @{at_call}"
                )
                assert "degraded" not in stats.detail
