"""Concurrent serving is observationally identical to sequential execution.

The whole point of the serving layer is that the worker pool changes
*wall-clock overlap only*. These tests replay one seeded query mix over the
three §2 access facilities (SSF, BSSF, NIX) twice — once through a plain
sequential :class:`~repro.query.executor.QueryExecutor` loop, once through
an N-worker :class:`~repro.server.service.QueryService` — against two
identically built databases, and demand byte-identical observations:

* every query's result OIDs (order included — results are sorted);
* every query's described plan, including degraded-fallback rewrites;
* the number of degraded fallbacks taken;
* the merged per-file page-access totals (``pool_capacity=0`` makes the
  paper's logical = physical counts deterministic, and the per-thread
  I/O-delta merge is commutative, so the concurrent totals must match the
  sequential ones bit for bit).

A hypothesis variant fuzzes the seed; a fixed-seed golden variant pins the
exact logical page total so silent accounting drift fails loudly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.database import Database
from repro.query.executor import QueryExecutor
from repro.server.service import QueryService
from repro.storage.stats import IOSnapshot
from repro.workloads.generator import SetWorkloadGenerator, WorkloadSpec, load_workload

#: (class, facility) triple exercised by every mix.
FACILITIES = ("SsfObj", "BssfObj", "NixObj")


def _build_db(seed: int, num_objects: int) -> Database:
    """Three classes, one per facility kind, same seeded payload."""
    db = Database(page_size=2048, pool_capacity=0)
    spec = lambda cls: WorkloadSpec(  # noqa: E731 - local shorthand
        num_objects=num_objects,
        domain_cardinality=40,
        target_cardinality=6,
        seed=seed,
    )
    load_workload(db, spec("SsfObj"), class_name="SsfObj")
    load_workload(db, spec("BssfObj"), class_name="BssfObj")
    load_workload(db, spec("NixObj"), class_name="NixObj")
    db.create_ssf_index("SsfObj", "elements", 64, 2, seed=seed)
    db.create_bssf_index("BssfObj", "elements", 64, 2, seed=seed)
    db.create_nested_index("NixObj", "elements")
    return db


def _query_mix(seed: int, count: int) -> List[str]:
    """Seeded superset/subset mix across all three facilities."""
    rng = random.Random(seed * 7919 + 1)
    generator = SetWorkloadGenerator(
        WorkloadSpec(
            num_objects=0,
            domain_cardinality=40,
            target_cardinality=6,
            seed=seed + 1,
        )
    )
    texts = []
    for i in range(count):
        class_name = rng.choice(FACILITIES)
        if rng.random() < 0.5:
            dq = rng.randint(1, 4)
            operator = "has-subset"
        else:
            dq = rng.randint(6, 12)
            operator = "in-subset"
        elements = sorted(generator.random_query_set(dq))
        texts.append(
            "select {} where elements {} ({})".format(
                class_name, operator, ", ".join(str(e) for e in elements)
            )
        )
    return texts


def _mark_one_degraded(db: Database) -> None:
    """Force the degraded-fallback path into the mix (both runs get it)."""
    db.mark_degraded("BssfObj", "elements", "bssf", "injected by test")


Observation = Tuple[List[str], List[str], int, IOSnapshot]


def _observe_sequential(db: Database, texts: List[str]) -> Observation:
    executor = QueryExecutor(db)
    before = db.io_snapshot()
    oids, plans = [], []
    for text in texts:
        result = executor.execute_text(text)
        oids.append([str(oid) for oid in result.oids()])
        plans.append(result.statistics.plan)
    delta = db.io_snapshot() - before
    degraded = sum("degraded-fallback" in plan for plan in plans)
    return oids, plans, degraded, delta


def _observe_concurrent(
    db: Database, texts: List[str], workers: int
) -> Observation:
    before = db.io_snapshot()
    with QueryService(
        db, max_workers=workers, queue_depth=len(texts)
    ) as service:
        results = service.execute_many(texts)
    delta = db.io_snapshot() - before
    oids = [[str(oid) for oid in r.oids()] for r in results]
    plans = [r.statistics.plan for r in results]
    degraded = sum("degraded-fallback" in plan for plan in plans)
    return oids, plans, degraded, delta


def _per_file_counts(delta: IOSnapshot) -> Dict[str, Tuple[int, int, int, int]]:
    return {
        name: (
            counts.logical_reads,
            counts.logical_writes,
            counts.physical_reads,
            counts.physical_writes,
        )
        for name, counts in delta.files()
    }


def _assert_equivalent(seed: int, num_objects: int, queries: int, workers: int):
    texts = _query_mix(seed, queries)

    sequential_db = _build_db(seed, num_objects)
    _mark_one_degraded(sequential_db)
    seq_oids, seq_plans, seq_degraded, seq_delta = _observe_sequential(
        sequential_db, texts
    )

    concurrent_db = _build_db(seed, num_objects)
    _mark_one_degraded(concurrent_db)
    con_oids, con_plans, con_degraded, con_delta = _observe_concurrent(
        concurrent_db, texts, workers
    )

    assert con_oids == seq_oids
    assert con_plans == seq_plans
    assert con_degraded == seq_degraded
    assert _per_file_counts(con_delta) == _per_file_counts(seq_delta)
    return seq_degraded, seq_delta


class TestSequentialEquivalence:
    def test_fixed_seed_golden(self):
        """Pinned mix: equivalence plus the exact logical page total."""
        degraded, delta = _assert_equivalent(
            seed=42, num_objects=80, queries=24, workers=8
        )
        # The mix must actually exercise the degraded-fallback path.
        assert degraded > 0
        # Golden accounting: bit-identical to the sequential baseline, and
        # pinned so a silent metering change cannot hide behind symmetry.
        assert delta.total().logical_reads == GOLDEN_LOGICAL_READS

    def test_workers_one_equals_workers_eight(self):
        """Pool width never changes observations, only overlap."""
        texts = _query_mix(7, 12)
        db_one = _build_db(7, 40)
        db_eight = _build_db(7, 40)
        one = _observe_concurrent(db_one, texts, workers=1)
        eight = _observe_concurrent(db_eight, texts, workers=8)
        assert one[0] == eight[0]
        assert one[1] == eight[1]
        assert _per_file_counts(one[3]) == _per_file_counts(eight[3])

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1023))
    def test_hypothesis_seeded_mixes(self, seed: int):
        _assert_equivalent(seed, num_objects=40, queries=10, workers=4)


#: Logical reads of the seed-42 golden mix (sequential == concurrent).
GOLDEN_LOGICAL_READS = 1223
