"""Stress: readers race one writer under WAL durability, recovery stays clean.

The facade latch serializes mutations against the read stream; the WAL
serializes durable intent. This test hammers both at once — six reader
threads replay seeded queries while one writer inserts, updates, and
deletes — then demands that

* no thread observed an exception (torn reads surface as serde or
  signature-verification errors long before they corrupt results);
* ``run_fsck`` over the live database reports zero issues, with an intact
  WAL tail;
* replaying the WAL from scratch (``recover_database``) reproduces the
  live object count and answers a probe query identically — i.e. the
  interleaved history that actually ran was equivalent to *some* serial
  history, and the WAL captured exactly that one.
"""

from __future__ import annotations

import random
import threading

from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.recovery import run_fsck
from repro.wal.replay import recover_database
from tests.conftest import HOBBIES

READERS = 6
READS_PER_THREAD = 25
MUTATIONS = 40
PROBE = 'select Student where hobbies has-subset ("Chess")'


def _build(wal_dir: str) -> Database:
    db = Database(pool_capacity=0, wal_dir=wal_dir)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_ssf_index("Student", "hobbies", 128, 2)
    rng = random.Random(11)
    for i in range(80):
        db.insert(
            "Student",
            {"name": f"s{i:03d}", "hobbies": set(rng.sample(HOBBIES, 3))},
        )
    return db


def test_readers_race_one_writer_then_recover_clean(tmp_path):
    wal_dir = str(tmp_path / "wal")
    db = _build(wal_dir)
    executor = QueryExecutor(db)
    errors = []
    results_seen = []
    start = threading.Barrier(READERS + 1, timeout=10)

    def reader(index: int) -> None:
        rng = random.Random(1000 + index)
        try:
            start.wait()
            for _ in range(READS_PER_THREAD):
                hobbies = rng.sample(HOBBIES, rng.randint(1, 2))
                text = "select Student where hobbies has-subset ({})".format(
                    ", ".join(f'"{h}"' for h in hobbies)
                )
                result = executor.execute_text(text)
                # Every row returned must genuinely satisfy the predicate —
                # a torn read slipping past the latch would break this.
                for _, values in result.rows:
                    assert set(hobbies) <= values["hobbies"]
                results_seen.append(len(result))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer() -> None:
        rng = random.Random(99)
        live = []
        try:
            start.wait()
            for i in range(MUTATIONS):
                action = rng.random()
                if action < 0.6 or not live:
                    live.append(
                        db.insert(
                            "Student",
                            {
                                "name": f"w{i:03d}",
                                "hobbies": set(rng.sample(HOBBIES, 3)),
                            },
                        )
                    )
                elif action < 0.8:
                    victim = rng.choice(live)
                    values = db.get(victim)
                    values["hobbies"] = set(rng.sample(HOBBIES, 2))
                    db.update(victim, values)
                else:
                    db.delete(live.pop(rng.randrange(len(live))))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(READERS)
    ]
    threads.append(threading.Thread(target=writer, daemon=True))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "stress thread hung"

    assert errors == []
    assert len(results_seen) == READERS * READS_PER_THREAD

    # Live database is structurally sound, WAL tail intact.
    report = run_fsck(db, deep=True)
    assert report.ok, report.render()
    assert report.wal_status is not None
    assert report.wal_records > 0

    # The WAL alone reproduces the final state.
    live_count = db.count("Student")
    live_probe = [str(oid) for oid in executor.execute_text(PROBE).oids()]
    recovered = recover_database(wal_dir)
    try:
        assert recovered.count("Student") == live_count
        recovered_probe = [
            str(oid)
            for oid in QueryExecutor(recovered).execute_text(PROBE).oids()
        ]
        assert recovered_probe == live_probe
        post = run_fsck(recovered, deep=True)
        assert post.ok, post.render()
    finally:
        recovered.close()
        db.close()
