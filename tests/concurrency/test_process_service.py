"""Process-pool serving equivalence: replicas answer, parent accounts.

``ProcessQueryService`` serves batches from worker processes over a
read-only snapshot replica. The contract mirrors the thread service's:
results in submission order, per-query statistics identical to a
sequential run, and the parent database's shared page totals — after the
per-query deltas are folded back in — equal to what a sequential run
would have charged.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionMode, ExecutionOptions
from repro.server import ProcessQueryService

from tests.conftest import HOBBIES, populate_students


def build_db():
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index("Student", "hobbies", 64, 2)
    populate_students(db, count=60)
    return db


def queries(count=12, seed=11):
    rng = random.Random(seed)
    texts = []
    for _ in range(count):
        elements = rng.sample(HOBBIES, rng.choice([1, 2, 3]))
        literals = ", ".join(f'"{e}"' for e in elements)
        op = rng.choice(["has-subset", "in-subset", "overlaps"])
        texts.append(f"select Student where hobbies {op} ({literals})")
    return texts


def page_profile(stats):
    return sorted(
        (name, counts.logical_total, counts.physical_total)
        for name, counts in stats.io.files()
        if counts.logical_total or counts.physical_total
    )


@pytest.fixture(scope="module")
def equivalence():
    """One sequential run and one process-pool run over twin databases."""
    texts = queries()
    db_seq, db_proc = build_db(), build_db()
    sequential = [QueryExecutor(db_seq).execute_text(t) for t in texts]
    with ProcessQueryService(db_proc, max_workers=2) as service:
        served = service.execute_many(texts)
    return db_seq, db_proc, sequential, served


class TestProcessEquivalence:
    def test_rows_and_statistics_identical(self, equivalence):
        _, _, sequential, served = equivalence
        assert len(served) == len(sequential)
        for left, right in zip(sequential, served):
            assert left.rows == right.rows
            a, b = left.statistics, right.statistics
            assert a.plan == b.plan
            assert (a.candidates, a.false_drops, a.results) == (
                b.candidates,
                b.false_drops,
                b.results,
            )
            assert page_profile(a) == page_profile(b)

    def test_traces_do_not_cross_the_process_boundary(self, equivalence):
        _, _, _, served = equivalence
        assert all(result.trace is None for result in served)

    def test_merged_totals_match_sequential_run(self, equivalence):
        db_seq, db_proc, _, _ = equivalence
        assert db_seq.io_snapshot().total() == db_proc.io_snapshot().total()


class TestProcessService:
    def test_executor_dispatches_on_process_mode(self):
        texts = queries(count=6)
        db_seq, db_proc = build_db(), build_db()
        sequential = [QueryExecutor(db_seq).execute_text(t) for t in texts]
        served = QueryExecutor(db_proc).execute_many(
            texts,
            ExecutionOptions(
                execution_mode=ExecutionMode.PROCESS,
                max_workers=2,
                batch_size=4,
            ),
        )
        for left, right in zip(sequential, served):
            assert left.rows == right.rows
            assert page_profile(left.statistics) == page_profile(
                right.statistics
            )

    def test_replica_is_frozen_at_construction(self):
        db = build_db()
        with ProcessQueryService(db, max_workers=1) as service:
            before = service.execute_many(
                ['select Student where hobbies contains "Chess"']
            )
            db.insert(
                "Student", {"name": "late", "hobbies": {"Chess", "Golf"}}
            )
            after = service.execute_many(
                ['select Student where hobbies contains "Chess"']
            )
        assert [r.rows for r in before] == [r.rows for r in after]

    def test_empty_batch_and_shutdown_guard(self):
        db = build_db()
        service = ProcessQueryService(db, max_workers=1)
        assert service.execute_many([]) == []
        service.shutdown()
        service.shutdown()  # idempotent
        with pytest.raises(ConfigurationError):
            service.execute_many(['select Student where hobbies contains "x"'])

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessQueryService(build_db(), max_workers=0)
