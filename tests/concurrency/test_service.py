"""Unit tests for QueryService admission, ordering, and lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.obs.metrics import REGISTRY
from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.options import ExecutionOptions
from repro.server.service import QueryService
from repro.storage.faults import RetryPolicy
from tests.conftest import populate_students

#: Admission policy that sheds immediately (one short attempt, no backoff).
SHED_FAST = RetryPolicy(
    max_attempts=1,
    backoff_seconds=0.0,
    multiplier=1.0,
    jitter_seconds=0.0,
    max_elapsed_seconds=None,
)


class BlockingExecutor:
    """Fake executor whose queries park on an event until released."""

    def __init__(self):
        self.database = None
        self.release = threading.Event()
        self.started = threading.Semaphore(0)

    def execute_text(self, text, options=None):
        self.started.release()
        if not self.release.wait(timeout=10):
            raise TimeoutError("BlockingExecutor never released")
        return text


def _student_db() -> Database:
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_ssf_index("Student", "hobbies", 128, 2)
    populate_students(db, count=60)
    return db


class TestServing:
    def test_execute_many_preserves_submission_order(self):
        db = _student_db()
        texts = [
            'select Student where hobbies has-subset ("Chess")',
            'select Student where hobbies has-subset ("Fishing")',
            'select Student where hobbies overlaps ("Golf", "Tennis")',
        ] * 4
        with QueryService(db, max_workers=4) as service:
            results = service.execute_many(texts)
        assert len(results) == len(texts)
        # Each result answers the query submitted at its position.
        sequential = [service.executor.execute_text(t) for t in texts]
        for got, want in zip(results, sequential):
            assert got.oids() == want.oids()

    def test_execute_single(self):
        db = _student_db()
        with QueryService(db, max_workers=2) as service:
            result = service.execute(
                'select Student where hobbies has-subset ("Chess")'
            )
        assert result.oids() == service.executor.execute_text(
            'select Student where hobbies has-subset ("Chess")'
        ).oids()

    def test_worker_attribution_on_traced_queries(self):
        db = _student_db()
        with QueryService(db, max_workers=2) as service:
            result = service.execute(
                'select Student where hobbies has-subset ("Chess")',
                ExecutionOptions(trace=True),
            )
        assert result.trace.attributes["worker"].startswith("query-worker")

    def test_executor_execute_many_honors_max_workers_option(self):
        """ExecutionOptions.max_workers routes through a transient pool."""
        from repro.query.executor import QueryExecutor

        db = _student_db()
        executor = QueryExecutor(db)
        texts = ['select Student where hobbies has-subset ("Chess")'] * 6
        pooled = executor.execute_many(texts, ExecutionOptions(max_workers=4))
        sequential = executor.execute_many(texts)  # max_workers=None path
        assert [r.oids() for r in pooled] == [r.oids() for r in sequential]

    def test_query_error_propagates_from_execute_many(self):
        db = _student_db()
        texts = [
            'select Student where hobbies has-subset ("Chess")',
            "select Nope where hobbies has-subset (1)",  # unknown class
        ]
        with QueryService(db, max_workers=2) as service:
            with pytest.raises(Exception) as excinfo:
                service.execute_many(texts)
        assert "Nope" in str(excinfo.value)


class TestAdmission:
    def test_sheds_when_saturated(self):
        executor = BlockingExecutor()
        service = QueryService(
            executor=executor,
            max_workers=1,
            queue_depth=0,
            admission_policy=SHED_FAST,
            admission_timeout_seconds=0.05,
        )
        try:
            shed_before = REGISTRY.counter("server.shed").value
            first = service.submit("q1")
            assert executor.started.acquire(timeout=5)  # q1 is running
            with pytest.raises(AdmissionError):
                service.submit("q2")  # no slot: 1 worker + 0 queued
            assert REGISTRY.counter("server.shed").value == shed_before + 1
            executor.release.set()
            assert first.result(timeout=5) == "q1"
        finally:
            executor.release.set()
            service.shutdown()

    def test_queue_depth_admits_backlog(self):
        executor = BlockingExecutor()
        service = QueryService(
            executor=executor,
            max_workers=1,
            queue_depth=2,
            admission_policy=SHED_FAST,
            admission_timeout_seconds=0.05,
        )
        try:
            futures = [service.submit(f"q{i}") for i in range(3)]  # 1 + 2
            with pytest.raises(AdmissionError):
                service.submit("q3")
            executor.release.set()
            assert [f.result(timeout=5) for f in futures] == ["q0", "q1", "q2"]
        finally:
            executor.release.set()
            service.shutdown()

    def test_retry_then_admit(self):
        """A slot freed between attempts admits the retried submission."""
        executor = BlockingExecutor()
        service = QueryService(
            executor=executor,
            max_workers=1,
            queue_depth=0,
            admission_policy=RetryPolicy(
                max_attempts=10,
                backoff_seconds=0.01,
                multiplier=1.0,
                jitter_seconds=0.0,
                max_elapsed_seconds=None,
            ),
            admission_timeout_seconds=0.05,
        )
        try:
            service.submit("q1")
            assert executor.started.acquire(timeout=5)

            def free_slot_later():
                time.sleep(0.1)
                executor.release.set()

            threading.Thread(target=free_slot_later, daemon=True).start()
            assert service.execute("q2") == "q2"
        finally:
            executor.release.set()
            service.shutdown()


class TestLifecycle:
    def test_submit_after_shutdown_sheds(self):
        service = QueryService(executor=BlockingExecutor(), max_workers=1)
        service.shutdown()
        with pytest.raises(AdmissionError):
            service.submit("q")

    def test_shutdown_is_idempotent(self):
        service = QueryService(executor=BlockingExecutor(), max_workers=1)
        service.shutdown()
        service.shutdown()

    def test_context_manager_drains(self):
        executor = BlockingExecutor()
        with QueryService(executor=executor, max_workers=1) as service:
            future = service.submit("q")
            executor.release.set()
        assert future.result(timeout=1) == "q"

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            QueryService(executor=BlockingExecutor(), max_workers=0)
        with pytest.raises(ConfigurationError):
            QueryService(
                executor=BlockingExecutor(), max_workers=1, queue_depth=-1
            )
        with pytest.raises(ConfigurationError):
            QueryService(
                executor=BlockingExecutor(),
                max_workers=1,
                admission_timeout_seconds=0.0,
            )
        with pytest.raises(ConfigurationError):
            QueryService()  # neither database nor executor

    def test_metrics_flow(self):
        db = _student_db()
        submitted = REGISTRY.counter("server.submitted").value
        completed = REGISTRY.counter("server.completed").value
        with QueryService(db, max_workers=2) as service:
            service.execute_many(
                ['select Student where hobbies has-subset ("Chess")'] * 5
            )
        assert REGISTRY.counter("server.submitted").value == submitted + 5
        assert REGISTRY.counter("server.completed").value == completed + 5

    def test_batched_drain_counts_and_matches_sequential(self):
        db = _student_db()
        texts = [
            'select Student where hobbies has-subset ("Chess")',
            'select Student where hobbies overlaps ("Golf", "Tennis")',
            'select Student where hobbies in-subset '
            '("Chess", "Golf", "Tennis", "Fishing", "Hiking")',
        ] * 4
        batched_before = REGISTRY.counter("server.batched_queries").value
        with QueryService(db, max_workers=2) as service:
            results = service.execute_many(
                texts, ExecutionOptions(batch_size=4)
            )
            sequential = [service.executor.execute_text(t) for t in texts]
        assert (
            REGISTRY.counter("server.batched_queries").value
            == batched_before + len(texts)
        )
        for got, want in zip(results, sequential):
            assert got.oids() == want.oids()
