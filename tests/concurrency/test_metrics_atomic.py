"""Regression tests: metrics survive multi-threaded hammering.

A plain ``self.value += n`` is a read-modify-write the GIL does not make
atomic — before the counters grew locks, an 8-thread hammer reliably lost
increments. These tests pin the fix for counters, histograms, and the
registry's get-or-create paths.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import Counter, Histogram, MetricsRegistry

THREADS = 8
PER_THREAD = 5_000


def _hammer(worker, threads=THREADS):
    pool = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestCounterAtomicity:
    def test_no_lost_increments(self):
        counter = Counter("t.hammer")

        def worker(_):
            for _ in range(PER_THREAD):
                counter.inc()

        _hammer(worker)
        assert counter.value == THREADS * PER_THREAD

    def test_no_lost_bulk_increments(self):
        counter = Counter("t.hammer.bulk")

        def worker(_):
            for _ in range(PER_THREAD):
                counter.inc(3)

        _hammer(worker)
        assert counter.value == 3 * THREADS * PER_THREAD


class TestHistogramAtomicity:
    def test_count_and_sum_consistent(self):
        histogram = Histogram("t.hammer.hist")

        def worker(_):
            for _ in range(PER_THREAD):
                histogram.record(1.0)

        _hammer(worker)
        assert histogram.count == THREADS * PER_THREAD
        assert histogram.total == float(THREADS * PER_THREAD)


class TestRegistryGetOrCreate:
    def test_concurrent_counter_creation_yields_one_instance(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(THREADS, timeout=10)
        lock = threading.Lock()

        def worker(_):
            barrier.wait()  # maximize the create race
            counter = registry.counter("t.same.name")
            with lock:
                seen.append(counter)
            counter.inc()

        _hammer(worker)
        assert all(c is seen[0] for c in seen)
        assert registry.counter("t.same.name").value == THREADS

    def test_concurrent_mixed_instruments(self):
        registry = MetricsRegistry()

        def worker(i):
            for j in range(500):
                registry.counter(f"t.c{j % 7}").inc()
                registry.histogram(f"t.h{j % 5}").record(float(i))
                registry.gauge(f"t.g{j % 3}").set(i)

        _hammer(worker)
        total = sum(
            registry.counter(f"t.c{k}").value for k in range(7)
        )
        assert total == THREADS * 500
