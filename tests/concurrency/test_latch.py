"""Unit tests for the reader-writer latches (repro.concurrency)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.concurrency import RWLatch, ShardedLatch
from repro.errors import LatchError


def _spawn(target, *args):
    thread = threading.Thread(target=target, args=args, daemon=True)
    thread.start()
    return thread


class TestRWLatchReadSide:
    def test_readers_share(self):
        """Many threads hold read mode at the same instant."""
        latch = RWLatch("t")
        barrier = threading.Barrier(4, timeout=5)

        def reader():
            with latch.read_scope():
                barrier.wait()  # only passes if all 4 hold read together

        threads = [_spawn(reader) for _ in range(4)]
        for thread in threads:
            thread.join(timeout=5)
            assert not thread.is_alive()

    def test_read_is_reentrant(self):
        latch = RWLatch("t")
        with latch.read_scope():
            with latch.read_scope():
                assert latch.state()["readers"] == 2
        assert latch.state()["readers"] == 0

    def test_release_read_without_hold_raises(self):
        with pytest.raises(LatchError):
            RWLatch("t").release_read()


class TestRWLatchWriteSide:
    def test_writer_excludes_readers(self):
        latch = RWLatch("t")
        observed = []
        entered = threading.Event()
        release = threading.Event()

        def writer():
            with latch.write_scope():
                entered.set()
                release.wait(timeout=5)
                observed.append("writer-done")

        def reader():
            entered.wait(timeout=5)
            with latch.read_scope():
                observed.append("reader-ran")

        w = _spawn(writer)
        r = _spawn(reader)
        entered.wait(timeout=5)
        time.sleep(0.05)  # give the reader a chance to (wrongly) slip in
        assert observed == []
        release.set()
        w.join(timeout=5)
        r.join(timeout=5)
        assert observed == ["writer-done", "reader-ran"]

    def test_write_is_reentrant(self):
        latch = RWLatch("t")
        with latch.write_scope():
            with latch.write_scope():
                assert latch.state()["writer_depth"] == 2

    def test_write_holder_reads_for_free(self):
        latch = RWLatch("t")
        with latch.write_scope():
            with latch.read_scope():
                pass  # must not deadlock

    def test_writer_preference_blocks_new_readers(self):
        """A waiting writer gates first-time readers (no writer starvation)."""
        latch = RWLatch("t")
        latch.acquire_read()
        writer_waiting = threading.Event()
        reader_got_in = threading.Event()

        def writer():
            writer_waiting.set()
            with latch.write_scope():
                pass

        def late_reader():
            with latch.read_scope():
                reader_got_in.set()

        w = _spawn(writer)
        writer_waiting.wait(timeout=5)
        # Writer is blocked on our read hold; a new reader must now queue.
        while latch.state()["waiting_writers"] == 0:
            time.sleep(0.005)
        r = _spawn(late_reader)
        time.sleep(0.05)
        assert not reader_got_in.is_set()
        latch.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert reader_got_in.is_set()

    def test_release_write_without_hold_raises(self):
        with pytest.raises(LatchError):
            RWLatch("t").release_write()


class TestUpgrade:
    def test_single_reader_upgrades(self):
        latch = RWLatch("t")
        with latch.read_scope():
            with latch.write_scope():  # read → write upgrade
                assert latch.state()["writer_depth"] == 1
            assert latch.state()["readers"] == 1

    def test_concurrent_upgrade_raises_instead_of_deadlocking(self):
        latch = RWLatch("t")
        both_reading = threading.Barrier(2, timeout=5)
        failures = []
        upgraded = []

        def upgrader():
            with latch.read_scope():
                both_reading.wait()
                try:
                    with latch.write_scope():
                        upgraded.append(threading.get_ident())
                except LatchError:
                    failures.append(threading.get_ident())

        threads = [_spawn(upgrader) for _ in range(2)]
        for thread in threads:
            thread.join(timeout=5)
            assert not thread.is_alive(), "upgrade deadlocked"
        # Exactly one side loses; at least one upgrade must have succeeded
        # (the loser releases its read hold on scope exit, unblocking the
        # winner).
        assert len(failures) == 1
        assert len(upgraded) == 1


class TestShardedLatch:
    def test_shards_are_independent(self):
        """A writer on one shard never blocks a reader on another."""
        latch = ShardedLatch("t")
        writer_in = threading.Event()
        release = threading.Event()
        reader_done = threading.Event()

        def writer():
            with latch.write_scope("file-a"):
                writer_in.set()
                release.wait(timeout=5)

        def reader():
            writer_in.wait(timeout=5)
            with latch.read_scope("file-b"):
                reader_done.set()

        w = _spawn(writer)
        r = _spawn(reader)
        assert reader_done.wait(timeout=5)  # reader finished while writer held
        release.set()
        w.join(timeout=5)
        r.join(timeout=5)

    def test_key_required(self):
        with pytest.raises(LatchError):
            ShardedLatch("t").read_scope(None)

    def test_exclusive_scope_holds_every_shard(self):
        latch = ShardedLatch("t")
        with latch.read_scope("a"):
            pass
        with latch.read_scope("b"):
            pass
        held = threading.Event()
        release = threading.Event()
        blocked_reader_ran = threading.Event()

        def exclusive():
            with latch.exclusive_scope():
                held.set()
                release.wait(timeout=5)

        def reader():
            held.wait(timeout=5)
            with latch.read_scope("b"):
                blocked_reader_ran.set()

        e = _spawn(exclusive)
        r = _spawn(reader)
        held.wait(timeout=5)
        time.sleep(0.05)
        assert not blocked_reader_ran.is_set()
        release.set()
        e.join(timeout=5)
        r.join(timeout=5)
        assert blocked_reader_ran.is_set()

    def test_shard_names(self):
        latch = ShardedLatch("t")
        latch.shard("b")
        latch.shard("a")
        assert latch.shard_names() == ["a", "b"]
