"""Unit tests for immutable signature runs."""

import pytest

from repro.errors import ConfigurationError
from repro.lsm import SignatureRun
from repro.lsm.run import run_prefix
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager

from tests.lsm.conftest import make_scheme


def _entries(count, offset=0):
    return {
        OID(1, i): (frozenset({f"e{i}", f"e{i + 1}"}), offset + i)
        for i in range(count)
    }


def _build(kind="ssf", count=6, tombstones=(), level=0, run_id=0):
    storage = StorageManager(page_size=4096, pool_capacity=0)
    run = SignatureRun.build(
        storage, make_scheme(), f"{kind}:T.s", run_id, level, kind,
        _entries(count), {OID(1, s) for s in tombstones},
    )
    return run, storage


@pytest.mark.parametrize("kind", ["ssf", "bssf"])
def test_build_search_and_contains(kind):
    run, _ = _build(kind)
    run.verify()
    assert run.entry_count == 6
    assert OID(1, 0) in run
    assert OID(1, 99) not in run
    result = run.search("superset", frozenset({"e2", "e3"}))
    assert OID(1, 2) in result.candidates
    assert run.seq_of(OID(1, 2)) == 2


def test_tombstones_count_as_membership():
    run, _ = _build(tombstones=[50])
    assert OID(1, 50) in run
    with pytest.raises(KeyError):
        run.seq_of(OID(1, 50))


def test_unknown_kind_and_mode_rejected():
    storage = StorageManager(page_size=4096, pool_capacity=0)
    with pytest.raises(ConfigurationError):
        SignatureRun.build(
            storage, make_scheme(), "x:T.s", 0, 0, "btree", _entries(1), set()
        )
    run, _ = _build()
    with pytest.raises(ConfigurationError):
        run.search("between", frozenset({"e1"}))


@pytest.mark.parametrize("kind", ["ssf", "bssf"])
def test_attach_reopens_identical_run(kind):
    run, storage = _build(kind)
    reopened = SignatureRun.attach(
        storage, make_scheme(), f"{kind}:T.s", 0, 0, kind,
        dict(run.entries), set(run.tombstones),
    )
    reopened.verify()
    query = frozenset({"e1", "e2"})
    assert (
        reopened.search("overlap", query).candidates
        == run.search("overlap", query).candidates
    )


@pytest.mark.parametrize("kind", ["ssf", "bssf"])
def test_drop_files_removes_every_file(kind):
    run, storage = _build(kind)
    prefix = run_prefix(f"{kind}:T.s", 0)
    assert any(
        name.startswith(prefix) for name in storage.store.file_names()
    )
    run.drop_files(storage)
    assert not any(
        name.startswith(prefix) for name in storage.store.file_names()
    )


def test_state_roundtrip():
    run, _ = _build(tombstones=[40, 41])
    run_id, level, entries, tombstones = SignatureRun.state_tables(
        run.to_state()
    )
    assert run_id == 0 and level == 0
    assert entries == run.entries
    assert tombstones == run.tombstones


def test_verify_detects_entry_count_mismatch():
    run, _ = _build()
    run.entries[OID(1, 77)] = (frozenset({"e9"}), 99)
    with pytest.raises(ConfigurationError):
        run.verify()


def test_run_prefix_stays_inside_facility_namespace():
    from repro.recovery.rebuild import facility_of_file

    prefix = run_prefix("ssf:Student.hobbies", 3)
    assert facility_of_file(f"{prefix}:signatures") == (
        "Student", "hobbies", "ssf"
    )
