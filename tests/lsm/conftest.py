"""Fixtures and helpers for the LSM differential suite.

The suite's central device is a *paired* workload: every operation is
applied to an in-place facility (the reference), an LSM facility (the
subject) and a plain Python dict (the model). Equivalence is then three
assertions repeated everywhere:

* candidate lists (including their order) are identical between the two
  facilities for every search mode and partial-evaluation option;
* both candidate sets are supersets of the model's true answer (no false
  dismissals) — so the *false-drop sets* are identical too;
* at the Database level, rows, plan strings and golden object-file page
  counts match query for query.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Tuple

import pytest

from repro.access.bssf import BitSlicedSignatureFile
from repro.access.ssf import SequentialSignatureFile
from repro.core.signature import SignatureScheme
from repro.lsm import LSMSignatureFacility
from repro.objects.database import Database
from repro.objects.oid import OID
from repro.objects.schema import ClassSchema
from repro.obs.metrics import REGISTRY

#: tiny geometry keeps flush/compaction cascades cheap and frequent
F, M, SEED = 32, 2, 3
FLUSH_THRESHOLD = 4
FANOUT = 2

#: element domain small enough to make false drops common
DOMAIN = [f"e{i}" for i in range(16)]


@pytest.fixture(autouse=True)
def _reset_registry():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


def make_scheme() -> SignatureScheme:
    return SignatureScheme(F, M, seed=SEED)


def make_pair(kind: str, flush_threshold: int = FLUSH_THRESHOLD,
              fanout: int = FANOUT):
    """(in-place facility, LSM facility) with identical schemes."""
    from repro.storage.paged_file import StorageManager

    scheme = make_scheme()
    ref_storage = StorageManager(page_size=4096, pool_capacity=0)
    lsm_storage = StorageManager(page_size=4096, pool_capacity=0)
    if kind == "ssf":
        reference = SequentialSignatureFile(ref_storage, scheme)
    else:
        reference = BitSlicedSignatureFile(ref_storage, scheme)
    subject = LSMSignatureFacility(
        lsm_storage, scheme, kind, f"{kind}:T.s",
        flush_threshold=flush_threshold, fanout=fanout,
    )
    return reference, subject


class PairedWorkload:
    """Applies one op stream to reference + LSM facility + model dict."""

    def __init__(self, kind: str, flush_threshold: int = FLUSH_THRESHOLD,
                 fanout: int = FANOUT):
        self.reference, self.subject = make_pair(kind, flush_threshold, fanout)
        self.model: Dict[OID, FrozenSet[str]] = {}
        self._next_serial = 0

    # -- operations ----------------------------------------------------
    def insert(self, elements) -> OID:
        oid = OID(1, self._next_serial)
        self._next_serial += 1
        value = frozenset(elements)
        self.reference.insert(value, oid)
        self.subject.insert(value, oid)
        self.model[oid] = value
        return oid

    def update(self, oid: OID, elements) -> None:
        old = self.model[oid]
        new = frozenset(elements)
        self.reference.delete(old, oid)
        self.reference.insert(new, oid)
        self.subject.delete(old, oid)
        self.subject.insert(new, oid)
        self.model[oid] = new

    def delete(self, oid: OID) -> None:
        old = self.model.pop(oid)
        self.reference.delete(old, oid)
        self.subject.delete(old, oid)

    def flush(self) -> None:
        self.subject.flush()  # no-op on the reference by definition

    def compact(self) -> None:
        self.subject.compact()

    def live_oids(self) -> List[OID]:
        return sorted(self.model)

    # -- equivalence assertions ----------------------------------------
    def true_answer(self, mode: str, query: FrozenSet[str]) -> set:
        if mode == "superset":
            return {o for o, v in self.model.items() if v >= query}
        if mode == "subset":
            return {o for o, v in self.model.items() if v <= query}
        return {o for o, v in self.model.items() if v & query}

    def assert_equivalent(self, queries) -> None:
        for query in queries:
            query = frozenset(query)
            for mode in ("superset", "subset", "overlap"):
                ref = getattr(self.reference, f"search_{mode}")(query)
                lsm = getattr(self.subject, f"search_{mode}")(query)
                assert ref.candidates == lsm.candidates, (
                    f"{mode} candidates diverge for {sorted(query)}"
                )
                assert ref.exact == lsm.exact
                truth = self.true_answer(mode, query)
                got = set(lsm.candidates)
                assert truth <= got, f"{mode} false dismissal: {truth - got}"
                # identical candidates => identical false-drop sets, but
                # assert it explicitly — it is the paper's headline metric
                assert got - truth == set(ref.candidates) - truth
            if query:
                ref = self.reference.search_superset(query, use_elements=1)
                lsm = self.subject.search_superset(query, use_elements=1)
                assert ref.candidates == lsm.candidates
                for slices in (0, 3):
                    ref = self.reference.search_subset(
                        query, slices_to_examine=slices
                    )
                    lsm = self.subject.search_subset(
                        query, slices_to_examine=slices
                    )
                    assert ref.candidates == lsm.candidates


def run_random_ops(paired: PairedWorkload, count: int, seed: int,
                   rng_domain=DOMAIN) -> None:
    """A deterministic random interleaving of all five op kinds."""
    rng = random.Random(seed)
    for _ in range(count):
        live = paired.live_oids()
        roll = rng.random()
        if roll < 0.45 or not live:
            paired.insert(rng.sample(rng_domain, rng.randint(1, 4)))
        elif roll < 0.65:
            paired.update(
                rng.choice(live), rng.sample(rng_domain, rng.randint(1, 4))
            )
        elif roll < 0.85:
            paired.delete(rng.choice(live))
        elif roll < 0.95:
            paired.flush()
        else:
            paired.compact()


SAMPLE_QUERIES = [
    frozenset(),
    frozenset({"e0"}),
    frozenset({"e1", "e5"}),
    frozenset({"e2", "e7", "e11"}),
    frozenset({"e3", "e6", "e9", "e13"}),
]


# ----------------------------------------------------------------------
# Database-level pairs
# ----------------------------------------------------------------------
QUERY_TEXTS = [
    'select Student where hobbies has-subset ("Chess", "Golf")',
    'select Student where hobbies in-subset '
    '("Chess", "Golf", "Tennis", "Fishing")',
    'select Student where hobbies overlaps ("Sailing", "Cycling")',
    'select Student where hobbies contains ("Baseball")',
]


def build_db(*, lsm: bool, durability: str = "none",
             wal_dir=None, kind: str = "bssf") -> Database:
    kwargs = dict(page_size=4096, pool_capacity=0)
    if wal_dir is not None:
        kwargs["wal_dir"] = str(wal_dir)
        kwargs["durability"] = "lsm" if lsm else "wal"
    else:
        kwargs["durability"] = durability
    db = Database(**kwargs)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    index_kwargs = dict(seed=SEED)
    if lsm:
        index_kwargs.update(lsm=True, flush_threshold=8, fanout=2)
    else:
        index_kwargs.update(lsm=False)
    if kind == "ssf":
        db.create_ssf_index("Student", "hobbies", 128, 2, **index_kwargs)
    else:
        db.create_bssf_index("Student", "hobbies", 128, 2, **index_kwargs)
    return db


def churn_students(db: Database, *, inserts: int = 48, updates: int = 16,
                   deletes: int = 6, seed: int = 11) -> None:
    from tests.conftest import HOBBIES

    rng = random.Random(seed)
    oids = []
    for i in range(inserts):
        oids.append(db.insert(
            "Student",
            {"name": f"s{i:03d}", "hobbies": set(rng.sample(HOBBIES, 3))},
        ))
    for _ in range(updates):
        oid = rng.choice(oids)
        db.update(
            oid, {"name": "upd", "hobbies": set(rng.sample(HOBBIES, 3))}
        )
    doomed = rng.sample(oids, deletes)
    for oid in doomed:
        db.delete(oid)


def db_answers(db: Database) -> List[Tuple[str, tuple, int]]:
    """(plan, row OIDs, object-file pages touched) per canonical query."""
    from repro.query.executor import QueryExecutor

    executor = QueryExecutor(db)
    # collect statistics up front so the ANALYZE scan's page reads never
    # land inside a measured query window
    db.analyze("Student", "hobbies")
    answers = []
    for text in QUERY_TEXTS:
        before = db.storage.snapshot()
        result = executor.execute_text(text)
        delta = db.storage.snapshot() - before
        answers.append((
            result.statistics.plan,
            tuple(result.oids()),
            delta.for_file("objects:Student").logical_total,
        ))
    return answers
