"""Facility-level tests: flush policy, compaction, shadowing, accounting."""

import pytest

from repro.errors import AccessFacilityError, IndexCorruptionError
from repro.lsm import LSMSignatureFacility
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager

from tests.lsm.conftest import (
    DOMAIN,
    PairedWorkload,
    SAMPLE_QUERIES,
    make_scheme,
)


def make_facility(kind="ssf", flush_threshold=4, fanout=2):
    storage = StorageManager(page_size=4096, pool_capacity=0)
    facility = LSMSignatureFacility(
        storage, make_scheme(), kind, f"{kind}:T.s",
        flush_threshold=flush_threshold, fanout=fanout,
    )
    return facility, storage


def fill(facility, count, offset=0):
    for i in range(count):
        facility.insert(
            frozenset({DOMAIN[(offset + i) % len(DOMAIN)]}), OID(1, offset + i)
        )


class TestConstruction:
    def test_rejects_bad_parameters(self):
        storage = StorageManager(page_size=4096, pool_capacity=0)
        scheme = make_scheme()
        with pytest.raises(AccessFacilityError):
            LSMSignatureFacility(storage, scheme, "nix", "nix:T.s")
        with pytest.raises(AccessFacilityError):
            LSMSignatureFacility(storage, scheme, "ssf", "ssf:T.s",
                                 flush_threshold=0)
        with pytest.raises(AccessFacilityError):
            LSMSignatureFacility(storage, scheme, "ssf", "ssf:T.s", fanout=1)

    def test_name_matches_kind_for_plan_identity(self):
        for kind in ("ssf", "bssf"):
            facility, _ = make_facility(kind)
            assert facility.name == kind


class TestFlush:
    def test_threshold_triggers_flush(self):
        facility, _ = make_facility(flush_threshold=4)
        fill(facility, 3)
        assert facility.run_count == 0 and len(facility.memtable) == 3
        fill(facility, 1, offset=3)
        assert facility.run_count == 1
        assert facility.memtable.is_empty
        assert facility.counters["flushes"] == 1

    def test_flush_of_empty_memtable_is_noop(self):
        facility, _ = make_facility()
        assert facility.flush() is None
        assert facility.run_count == 0
        assert facility.manifest.version == 0

    def test_pure_tombstone_flush_without_older_version_is_dropped(self):
        facility, _ = make_facility(flush_threshold=100)
        facility.insert(frozenset({"e1"}), OID(1, 0))
        facility.delete(frozenset({"e1"}), OID(1, 0))
        run = facility.flush()
        assert run is None  # insert+delete cancelled; nothing to shadow
        assert facility.entry_count == 0

    def test_tombstone_kept_when_older_run_holds_the_oid(self):
        facility, _ = make_facility(flush_threshold=100)
        facility.insert(frozenset({"e1"}), OID(1, 0))
        facility.flush()
        facility.delete(frozenset({"e1"}), OID(1, 0))
        run = facility.flush()
        assert run is not None and OID(1, 0) in run.tombstones
        assert facility.entry_count == 0
        assert facility.search_overlap(frozenset({"e1"})).candidates == []

    def test_flush_is_deterministic(self):
        fingerprints = []
        for _ in range(2):
            facility, storage = make_facility(flush_threshold=100)
            fill(facility, 8)
            facility.flush()
            store = storage.store
            fingerprints.append({
                name: [bytes(store.page_image(name, p))
                       for p in range(store.num_pages(name))]
                for name in sorted(store.file_names())
            })
        assert fingerprints[0] == fingerprints[1]


class TestCompaction:
    def test_tiered_merges_cascade(self):
        facility, _ = make_facility(flush_threshold=2, fanout=2)
        fill(facility, 8)  # 4 flushes -> cascading merges
        levels = [run.level for run in facility.runs]
        assert levels == sorted(levels, reverse=True)
        assert facility.counters["compactions"] >= 2
        facility.verify()
        assert facility.entry_count == 8

    def test_merge_drops_shadowed_versions_and_dead_tombstones(self):
        facility, _ = make_facility(flush_threshold=100, fanout=2)
        facility.insert(frozenset({"e1"}), OID(1, 0))
        facility.insert(frozenset({"e2"}), OID(1, 1))
        facility.flush()
        facility.delete(frozenset({"e1"}), OID(1, 0))
        facility.insert(frozenset({"e3"}), OID(1, 1))
        facility.flush()  # triggers the tier-of-2 merge
        assert facility.run_count == 1
        merged = facility.runs[0]
        assert OID(1, 0) not in merged          # tombstone had no older run
        assert merged.entries[OID(1, 1)][0] == frozenset({"e3"})
        facility.verify()

    def test_install_compaction_rejects_stale_plan(self):
        facility, storage = make_facility(flush_threshold=100, fanout=2)
        facility.auto_compact = False
        for batch in range(2):
            fill(facility, 2, offset=batch * 2)
            facility.flush()
        plan = facility.prepare_compaction()
        assert plan is not None
        # simulate a concurrent rebuild replacing the run list
        victims, output = plan
        facility.runs.remove(victims[0])
        assert facility.install_compaction(plan) is False
        # the prepared output's files were GC'd
        assert not any(
            name.startswith(f"ssf:T.s:r{output.run_id:06d}")
            for name in storage.store.file_names()
        )

    def test_prepare_without_full_tier_returns_none(self):
        facility, _ = make_facility(flush_threshold=100, fanout=4)
        fill(facility, 2)
        facility.flush()
        assert facility.prepare_compaction() is None


class TestBulkLoad:
    def test_bulk_load_seals_one_run(self):
        facility, _ = make_facility(flush_threshold=2)
        pairs = [(frozenset({DOMAIN[i]}), OID(1, i)) for i in range(10)]
        assert facility.bulk_load(pairs) == 10
        assert facility.run_count == 1
        assert facility.entry_count == 10
        assert facility.memtable.ops == 0  # backfill does not count as churn

    def test_bulk_load_requires_empty_facility(self):
        facility, _ = make_facility()
        facility.insert(frozenset({"e1"}), OID(1, 0))
        with pytest.raises(AccessFacilityError):
            facility.bulk_load([(frozenset({"e2"}), OID(1, 1))])


class TestSearchSemantics:
    @pytest.mark.parametrize("kind", ["ssf", "bssf"])
    def test_empty_query_parity_across_layers(self, kind):
        paired = PairedWorkload(kind)
        for i in range(6):
            paired.insert([DOMAIN[i], DOMAIN[i + 1]])
        paired.flush()
        paired.insert([DOMAIN[9]])
        paired.assert_equivalent([frozenset()])
        result = paired.subject.search_superset(frozenset())
        assert result.exact and len(result.candidates) == 7

    def test_bad_arguments_match_inplace_contract(self):
        facility, _ = make_facility()
        with pytest.raises(AccessFacilityError):
            facility.search_superset(frozenset({"e1"}), use_elements=0)
        with pytest.raises(AccessFacilityError):
            facility.search_subset(frozenset({"e1"}), slices_to_examine=-1)

    def test_detail_reports_layers(self):
        facility, _ = make_facility(flush_threshold=4)
        fill(facility, 6)
        result = facility.search_overlap(frozenset({DOMAIN[0]}))
        assert result.detail["runs"] == facility.run_count
        assert result.detail["memtable_entries"] == len(facility.memtable)
        assert len(result.detail["per_run"]) == facility.run_count


class TestAccounting:
    @pytest.mark.parametrize("kind", ["ssf", "bssf"])
    def test_predicted_run_pages(self, kind):
        facility, storage = make_facility(kind, flush_threshold=3)
        fill(facility, 9)
        predictions = facility.predicted_run_pages()
        assert len(predictions) == facility.run_count
        for prediction, run in zip(predictions, facility.runs):
            before = storage.snapshot()
            run.search("superset", frozenset({DOMAIN[2]}))
            delta = storage.snapshot() - before
            actual = sum(
                delta.for_file(name).logical_reads
                for name in run.file_names()
                if "oid" not in name
            )
            if kind == "ssf":
                assert actual == prediction["pages"]
            else:
                assert actual <= prediction["pages"]

    def test_storage_pages_split_runs_and_manifest(self):
        facility, _ = make_facility(flush_threshold=2)
        fill(facility, 4)
        pages = facility.storage_pages()
        assert pages["runs"] > 0 and pages["manifest"] > 0


class TestVerify:
    def test_detects_live_map_drift(self):
        facility, _ = make_facility(flush_threshold=2)
        fill(facility, 4)
        facility._live[OID(1, 99)] = 1234
        with pytest.raises(IndexCorruptionError, match="live map"):
            facility.verify()

    def test_detects_level_inversion(self):
        facility, _ = make_facility(flush_threshold=2, fanout=2)
        fill(facility, 8)
        if len(facility.runs) < 2:
            fill(facility, 4, offset=8)
        facility.runs[0], facility.runs[-1] = (
            facility.runs[-1], facility.runs[0],
        )
        if facility.runs[0].level < facility.runs[-1].level:
            with pytest.raises(IndexCorruptionError, match="levels"):
                facility.verify()


class TestAttach:
    @pytest.mark.parametrize("kind", ["ssf", "bssf"])
    def test_state_blob_roundtrip(self, kind):
        facility, storage = make_facility(kind, flush_threshold=3)
        fill(facility, 8)
        facility.delete(frozenset({DOMAIN[1]}), OID(1, 1))
        reopened = LSMSignatureFacility.attach(
            storage, make_scheme(), f"{kind}:T.s", facility.state_blob()
        )
        assert reopened.entry_count == facility.entry_count
        assert reopened._live == facility._live
        for query in SAMPLE_QUERIES:
            for mode in ("superset", "subset", "overlap"):
                assert (
                    getattr(reopened, f"search_{mode}")(query).candidates
                    == getattr(facility, f"search_{mode}")(query).candidates
                )
        # writes continue where the original left off
        reopened.insert(frozenset({DOMAIN[5]}), OID(1, 50))
        assert reopened._next_seq == facility._next_seq + 1
