"""Unit tests for the dual-slot run manifest."""

import pytest

from repro.errors import StorageError
from repro.lsm import RunManifest
from repro.lsm.manifest import SLOT_SUFFIXES, manifest_slot_name
from repro.objects.oid import OID
from repro.storage.paged_file import StorageManager


def make_manifest():
    storage = StorageManager(page_size=512, pool_capacity=0)
    return RunManifest(storage, "ssf:T.s"), storage


STATES = [[0, 0, [[OID(1, 5).to_int(), 0, ["a", "b"]]], []]]


def test_empty_facility_loads_as_empty_run_set():
    manifest, _ = make_manifest()
    assert manifest.load() == ([], False)
    assert manifest.version == 0


def test_install_load_roundtrip():
    manifest, _ = make_manifest()
    version = manifest.install(STATES)
    assert version == 1
    states, rolled_back = manifest.load()
    assert states == STATES
    assert not rolled_back


def test_installs_alternate_slots_and_versions_advance():
    manifest, storage = make_manifest()
    manifest.install([])
    manifest.install(STATES)
    names = set(storage.store.file_names())
    for suffix in SLOT_SUFFIXES:
        assert manifest_slot_name("ssf:T.s", suffix) in names
    states, _ = manifest.load()
    assert states == STATES  # highest version wins
    assert manifest.version == 2


def test_large_payload_spans_pages():
    manifest, _ = make_manifest()  # 512-byte pages force multi-page blobs
    big = [[i, 0, [[i, i, [f"element-{i}-{j}" for j in range(8)]]], []]
           for i in range(40)]
    manifest.install(big)
    states, rolled_back = manifest.load()
    assert states == big
    assert not rolled_back


def test_torn_install_rolls_back_to_previous_version():
    manifest, storage = make_manifest()
    manifest.install([])          # version 1 -> slot b
    manifest.install(STATES)      # version 2 -> slot a
    # tear the newest slot's header page, as a crash mid-install would
    torn = manifest_slot_name("ssf:T.s", SLOT_SUFFIXES[manifest.version % 2])
    storage.store._apply_corruption(torn, 0, b"\xff" * 512)

    reader = RunManifest(storage, "ssf:T.s")
    states, rolled_back = reader.load()
    assert rolled_back
    assert states == []           # the previous (version-1) run set
    assert reader.version == 1


def test_both_slots_damaged_raises():
    manifest, storage = make_manifest()
    manifest.install([])
    manifest.install(STATES)
    for suffix in SLOT_SUFFIXES:
        storage.store._apply_corruption(
            manifest_slot_name("ssf:T.s", suffix), 0, b"\x00" * 512
        )
    with pytest.raises(StorageError, match="damaged"):
        RunManifest(storage, "ssf:T.s").load()


def test_single_slot_damage_with_no_fallback_raises():
    manifest, storage = make_manifest()
    manifest.install(STATES)  # version 1 lives in slot b; slot a never written
    storage.store._apply_corruption(
        manifest_slot_name("ssf:T.s", SLOT_SUFFIXES[1]), 0, b"\xee" * 512
    )
    with pytest.raises(StorageError):
        RunManifest(storage, "ssf:T.s").load()
