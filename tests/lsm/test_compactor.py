"""Background compaction: merges off-thread, answers never change."""

import random

from repro.lsm import Compactor

from tests.lsm.conftest import QUERY_TEXTS, build_db, churn_students, db_answers


def test_background_compactor_preserves_answers():
    reference = build_db(lsm=False)
    subject = build_db(lsm=True)
    churn_students(reference)

    facility = subject.index("Student", "hobbies", "bssf")
    compactor = Compactor(subject, "Student", "hobbies", facility,
                          interval=0.005)
    with compactor:
        assert facility.auto_compact is False
        churn_students(subject)
        compactor.poke()
    # stop(drain=True) ran: no tier is still over-full
    assert facility.compaction_candidates() is None
    assert facility.auto_compact is True
    facility.verify()

    ref_answers = db_answers(reference)
    lsm_answers = db_answers(subject)
    for (ref_plan, ref_rows, _), (lsm_plan, lsm_rows, _) in zip(
        ref_answers, lsm_answers
    ):
        assert ref_plan == lsm_plan
        assert ref_rows == lsm_rows


def test_queries_run_concurrently_with_merges():
    """Readers racing the merge loop always see a complete answer set."""
    from repro.query.executor import QueryExecutor

    reference = build_db(lsm=False)
    subject = build_db(lsm=True)
    churn_students(reference, inserts=30, updates=8, deletes=4)
    expected = [rows for _, rows, _ in db_answers(reference)]

    facility = subject.index("Student", "hobbies", "bssf")
    executor = QueryExecutor(subject)
    rng = random.Random(3)
    with Compactor(subject, "Student", "hobbies", facility, interval=0.001):
        churn_students(subject, inserts=30, updates=8, deletes=4)
        for _ in range(25):
            text = rng.choice(QUERY_TEXTS)
            rows = tuple(executor.execute_text(text).oids())
            assert rows == expected[QUERY_TEXTS.index(text)]
    facility.verify()


def test_stop_without_drain_leaves_facility_consistent():
    subject = build_db(lsm=True)
    facility = subject.index("Student", "hobbies", "bssf")
    compactor = Compactor(subject, "Student", "hobbies", facility)
    compactor.start()
    churn_students(subject, inserts=20, updates=4, deletes=2)
    compactor.stop(drain=False)
    facility.verify()
    # inline compaction resumes once the thread is gone
    assert facility.auto_compact is True
