"""Differential harness: LSM vs in-place vs model, under random interleavings.

The equivalence claim is strong — bit-identical candidate lists (order
included), identical exact flags, identical false-drop sets — and it must
hold at *every* point of an arbitrary interleaving of inserts, updates,
deletes, queries, flushes and compactions. Fixed-seed sequences pin a few
interesting shapes; the Hypothesis suite then drives 200+ random op
programs per facility kind against a plain-dict model.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.lsm.conftest import (
    DOMAIN,
    SAMPLE_QUERIES,
    PairedWorkload,
    run_random_ops,
)

KINDS = ["ssf", "bssf"]


@pytest.mark.parametrize("kind", KINDS)
def test_fixed_seed_interleavings(kind):
    for seed in (1, 2, 3):
        paired = PairedWorkload(kind)
        for checkpoint in range(4):
            run_random_ops(paired, 30, seed * 100 + checkpoint)
            paired.assert_equivalent(SAMPLE_QUERIES)
        paired.subject.verify()


@pytest.mark.parametrize("kind", KINDS)
def test_updates_shadow_across_many_runs(kind):
    """One OID rewritten every generation: only the newest version answers."""
    paired = PairedWorkload(kind, flush_threshold=2)
    hot = paired.insert([DOMAIN[0]])
    for i in range(1, 10):
        paired.insert([DOMAIN[i % len(DOMAIN)]])
        paired.update(hot, [DOMAIN[i], DOMAIN[(i + 1) % len(DOMAIN)]])
    paired.assert_equivalent(SAMPLE_QUERIES)
    # the hot OID appears exactly once in a full scan
    result = paired.subject.search_superset(frozenset())
    assert result.candidates.count(hot) == 1


@pytest.mark.parametrize("kind", KINDS)
def test_delete_heavy_interleaving(kind):
    paired = PairedWorkload(kind, flush_threshold=3)
    oids = [paired.insert([DOMAIN[i % 8]]) for i in range(12)]
    rng = random.Random(5)
    for oid in rng.sample(oids, 9):
        paired.delete(oid)
        paired.flush()
    paired.compact()
    paired.assert_equivalent(SAMPLE_QUERIES)
    paired.subject.verify()


def _interpret(paired: PairedWorkload, program) -> None:
    """Map draw integers onto valid ops over the current live set."""
    rng = random.Random(1234)
    for code in program:
        live = paired.live_oids()
        kind = code % 6 if live else 0
        elements = rng.sample(DOMAIN, 1 + code % 4)
        if kind in (0, 1):
            paired.insert(elements)
        elif kind == 2:
            paired.update(live[code % len(live)], elements)
        elif kind == 3:
            paired.delete(live[code % len(live)])
        elif kind == 4:
            paired.flush()
        else:
            paired.compact()


@pytest.mark.parametrize("kind", KINDS)
@settings(max_examples=120, deadline=None)
@given(program=st.lists(st.integers(min_value=0, max_value=10**6),
                        min_size=1, max_size=25))
def test_property_random_programs(kind, program):
    """Rows and false-drop sets always match the naive reference."""
    paired = PairedWorkload(kind)
    _interpret(paired, program)
    paired.assert_equivalent(SAMPLE_QUERIES)
    paired.subject.verify()


@settings(max_examples=40, deadline=None)
@given(
    program=st.lists(st.integers(min_value=0, max_value=10**6),
                     min_size=5, max_size=40),
    flush_threshold=st.integers(min_value=1, max_value=6),
    fanout=st.integers(min_value=2, max_value=4),
)
def test_property_layout_parameters_never_change_answers(
    program, flush_threshold, fanout
):
    """flush_threshold and fanout are pure layout knobs."""
    baseline = PairedWorkload("ssf", flush_threshold=10**9)
    subject = PairedWorkload("ssf", flush_threshold=flush_threshold,
                             fanout=fanout)
    _interpret(baseline, program)
    _interpret(subject, program)
    for query in SAMPLE_QUERIES:
        for mode in ("superset", "subset", "overlap"):
            assert (
                getattr(baseline.subject, f"search_{mode}")(query).candidates
                == getattr(subject.subject, f"search_{mode}")(query).candidates
            )
    subject.subject.verify()
