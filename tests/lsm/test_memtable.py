"""Unit tests for the LSM memtable."""

from repro.lsm import MemTable
from repro.objects.oid import OID

from tests.lsm.conftest import make_scheme


def test_insert_records_signature_and_seq():
    table = MemTable()
    scheme = make_scheme()
    oid = OID(1, 0)
    table.insert(frozenset({"a", "b"}), oid, 7, scheme)
    elements, seq, signature = table.entries[oid]
    assert elements == frozenset({"a", "b"})
    assert seq == 7
    assert signature == scheme.set_signature({"a", "b"})
    assert table.ops == 1
    assert len(table) == 1
    assert not table.is_empty


def test_delete_shadows_and_insert_clears_tombstone():
    table = MemTable()
    scheme = make_scheme()
    oid = OID(1, 0)
    table.insert(frozenset({"a"}), oid, 0, scheme)
    table.delete(oid)
    assert oid not in table.entries
    assert oid in table.tombstones
    table.insert(frozenset({"b"}), oid, 1, scheme)
    assert oid not in table.tombstones
    assert table.entries[oid][0] == frozenset({"b"})
    assert table.ops == 3


def test_delete_of_unknown_oid_is_a_pure_tombstone():
    table = MemTable()
    table.delete(OID(1, 9))
    assert table.tombstones == {OID(1, 9)}
    assert not table.is_empty


def test_state_roundtrip_preserves_seq_order_and_signatures():
    table = MemTable()
    scheme = make_scheme()
    table.insert(frozenset({"x", "y"}), OID(1, 2), 5, scheme)
    table.insert(frozenset({"z"}), OID(1, 0), 3, scheme)
    table.delete(OID(1, 7))
    restored = MemTable.from_state(table.to_state(), scheme)
    assert restored.entries == table.entries
    assert restored.tombstones == table.tombstones
    assert restored.ops == table.ops


def test_state_is_deterministic():
    scheme = make_scheme()
    a, b = MemTable(), MemTable()
    for table in (a, b):
        table.insert(frozenset({"p", "q"}), OID(1, 1), 0, scheme)
        table.delete(OID(1, 4))
    assert a.to_state() == b.to_state()
