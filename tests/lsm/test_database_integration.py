"""Database-level equivalence and durability composition for LSM facilities.

The in-place facility is the oracle throughout: same workload, same
queries, and the LSM database must produce identical rows, identical plan
strings (the planner prices the run *format*, so ``ssf``/``bssf`` plans
print the same) and identical golden object-file page counts — the paper's
charged metric.
"""

import pytest

from repro.objects.database import Database
from repro.recovery import run_fsck

from tests.lsm.conftest import QUERY_TEXTS, build_db, churn_students, db_answers

KINDS = ["ssf", "bssf"]


@pytest.mark.parametrize("kind", KINDS)
def test_rows_plans_and_page_counts_match_inplace(kind):
    reference = build_db(lsm=False, kind=kind)
    subject = build_db(lsm=True, kind=kind)
    churn_students(reference)
    churn_students(subject)
    assert db_answers(reference) == db_answers(subject)
    assert subject.check_consistency()["Student.hobbies"] > 0
    assert run_fsck(subject, deep=True).ok


def test_durability_mode_selects_lsm_facilities(tmp_path):
    db = Database(wal_dir=str(tmp_path), durability="lsm")
    from repro.objects.schema import ClassSchema

    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    facility = db.create_ssf_index("Student", "hobbies", 64, 2)
    assert getattr(facility, "is_lsm", False)
    # explicit opt-out wins over the database default
    other = db.create_bssf_index("Student", "hobbies", 64, 2, lsm=False)
    assert not getattr(other, "is_lsm", False)
    db.close()


@pytest.mark.parametrize("kind", KINDS)
def test_wal_recovery_matches_inplace_reference(kind, tmp_path):
    reference = build_db(lsm=False, kind=kind)
    churn_students(reference)
    expected = db_answers(reference)

    subject = build_db(lsm=True, kind=kind, wal_dir=tmp_path)
    churn_students(subject)
    assert db_answers(subject) == expected
    subject.close()

    recovered = Database.open(str(tmp_path))
    assert recovered.durability == "lsm"
    assert db_answers(recovered) == expected
    facility = recovered.index("Student", "hobbies", kind)
    assert getattr(facility, "is_lsm", False)
    facility.verify()
    recovered.close()


@pytest.mark.parametrize("kind", KINDS)
def test_checkpoint_roundtrip_preserves_lsm_state(kind, tmp_path):
    subject = build_db(lsm=True, kind=kind, wal_dir=tmp_path)
    churn_students(subject)
    expected = db_answers(subject)
    facility = subject.index("Student", "hobbies", kind)
    run_count = facility.run_count
    memtable_size = len(facility.memtable)
    subject.checkpoint()
    subject.close()

    recovered = Database.open(str(tmp_path))
    assert recovered.durability == "lsm"
    reopened = recovered.index("Student", "hobbies", kind)
    assert reopened.run_count == run_count
    assert len(reopened.memtable) == memtable_size
    reopened.verify()
    assert db_answers(recovered) == expected
    # and the recovered database keeps absorbing writes
    churn_students(recovered, inserts=8, updates=2, deletes=1, seed=77)
    assert run_fsck(recovered, deep=True).ok
    recovered.close()


def test_explicit_flush_and_compact_survive_replay(tmp_path):
    subject = build_db(lsm=True, wal_dir=tmp_path)
    churn_students(subject, inserts=20, updates=4, deletes=2)
    subject.flush_indexes()
    churn_students(subject, inserts=12, updates=2, deletes=1, seed=99)
    subject.compact_indexes()
    expected = db_answers(subject)
    facility = subject.index("Student", "hobbies", "bssf")
    layout = [(run.run_id, run.level) for run in facility.runs]
    subject.close()

    recovered = Database.open(str(tmp_path))
    reopened = recovered.index("Student", "hobbies", "bssf")
    assert [(run.run_id, run.level) for run in reopened.runs] == layout
    assert db_answers(recovered) == expected
    recovered.close()


@pytest.mark.parametrize("kind", KINDS)
def test_rebuild_and_vacuum(kind):
    """A rebuild reloads in OID-scan order on both layouts identically."""
    reference = build_db(lsm=False, kind=kind)
    subject = build_db(lsm=True, kind=kind)
    churn_students(reference)
    churn_students(subject)

    rebuilt = subject.rebuild_facility("Student", "hobbies", kind)
    assert getattr(rebuilt, "is_lsm", False)
    assert rebuilt.flush_threshold == 8 and rebuilt.fanout == 2
    reference.rebuild_facility("Student", "hobbies", kind)
    assert db_answers(subject) == db_answers(reference)

    vacuumed = subject.vacuum_index("Student", "hobbies", kind)
    assert getattr(vacuumed, "is_lsm", False)
    assert db_answers(subject) == db_answers(reference)
    assert run_fsck(subject, deep=True).ok


def test_rebuild_drops_stale_run_files(kind="bssf"):
    subject = build_db(lsm=True, kind=kind)
    churn_students(subject)
    before = {
        name for name in subject.storage.store.file_names()
        if name.startswith(f"{kind}:Student.hobbies:")
    }
    assert before
    subject.rebuild_facility("Student", "hobbies", kind)
    after = {
        name for name in subject.storage.store.file_names()
        if name.startswith(f"{kind}:Student.hobbies:")
    }
    # every pre-rebuild run/manifest file is gone; fresh ones replace them
    assert not (before & after) or all(
        ":manifest:" in name for name in before & after
    )
    subject.index("Student", "hobbies", kind).verify()


def test_sharded_lsm_matches_unsharded(tmp_path):
    from repro.query.executor import QueryExecutor
    from repro.sharding.partitioner import partition_database

    subject = build_db(lsm=True)
    churn_students(subject)
    expected = db_answers(subject)

    shards = partition_database(subject, 3)
    for shard in shards:
        facility = shard.index("Student", "hobbies", "bssf")
        assert getattr(facility, "is_lsm", False)
        facility.verify()
    for text, (_, rows, _) in zip(QUERY_TEXTS, expected):
        merged = []
        for shard in shards:
            merged.extend(QueryExecutor(shard).execute_text(text).oids())
        assert sorted(merged) == sorted(rows)
