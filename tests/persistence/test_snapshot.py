"""Tests for database snapshots (save / load)."""

import io

import pytest

from repro.errors import StorageError
from repro.persistence.format import (
    FORMAT_VERSION,
    MAGIC,
    read_header,
    read_pages,
    write_snapshot,
)
from repro.persistence.snapshot import build_catalog, load_database, save_database
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.planner import CostContext

from tests.conftest import populate_students

CTX = CostContext(num_objects=120, domain_cardinality=12, target_cardinality=3)


@pytest.fixture
def full_db(student_db):
    student_db.create_ssf_index("Student", "hobbies", 64, 2, seed=3)
    student_db.create_bssf_index("Student", "hobbies", 64, 2, seed=3)
    student_db.create_nested_index("Student", "hobbies")
    populate_students(student_db)
    return student_db


QUERY = 'select Student where hobbies has-subset ("Baseball", "Fishing")'


class TestRoundtrip:
    def test_objects_survive(self, full_db, tmp_path):
        path = tmp_path / "db.sigdb"
        save_database(full_db, path)
        loaded = load_database(path)
        assert loaded.count("Student") == full_db.count("Student")
        original = dict(full_db.scan("Student"))
        for oid, values in loaded.scan("Student"):
            assert values == original[oid]

    def test_queries_survive(self, full_db, tmp_path):
        path = tmp_path / "db.sigdb"
        expected = sorted(
            QueryExecutor(full_db).execute_text(QUERY, ExecutionOptions(context=CTX)).oids()
        )
        save_database(full_db, path)
        loaded = load_database(path)
        for prefer in ("ssf", "bssf", "nix"):
            got = sorted(
                QueryExecutor(loaded)
                .execute_text(QUERY, ExecutionOptions(context=CTX, prefer_facility=prefer))
                .oids()
            )
            assert got == expected

    def test_indexes_rehydrated_structurally_sound(self, full_db, tmp_path):
        path = tmp_path / "db.sigdb"
        save_database(full_db, path)
        loaded = load_database(path)
        loaded.verify_indexes()
        assert set(loaded.indexes_on("Student", "hobbies")) == {
            "ssf", "bssf", "nix",
        }

    def test_mutations_after_load(self, full_db, tmp_path):
        """The loaded database must be fully writable, with fresh OIDs that
        do not collide with snapshotted ones."""
        path = tmp_path / "db.sigdb"
        save_database(full_db, path)
        loaded = load_database(path)
        existing = set(oid for oid, _ in loaded.scan("Student"))
        new_oid = loaded.insert(
            "Student", {"name": "post-load", "hobbies": {"Baseball", "Fishing"}}
        )
        assert new_oid not in existing
        result = QueryExecutor(loaded).execute_text(
            QUERY, ExecutionOptions(context=CTX, prefer_facility="bssf")
        )
        assert new_oid in result.oids()
        victim = next(iter(existing))
        loaded.delete(victim)
        assert not loaded.objects.exists(victim)

    def test_save_load_save_is_stable(self, full_db, tmp_path):
        first = tmp_path / "a.sigdb"
        second = tmp_path / "b.sigdb"
        save_database(full_db, first)
        save_database(load_database(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_empty_database(self, database, tmp_path):
        path = tmp_path / "empty.sigdb"
        save_database(database, path)
        loaded = load_database(path)
        assert loaded.objects.class_names() == ()

    def test_schema_details_preserved(self, tmp_path):
        from repro.objects.database import Database
        from repro.objects.schema import ClassSchema

        db = Database()
        db.define_class(
            ClassSchema.build(
                "Student", name="scalar", courses="set:Course", hobbies="set"
            )
        )
        db.define_class(ClassSchema.build("Course", name="scalar"))
        path = tmp_path / "s.sigdb"
        save_database(db, path)
        loaded = load_database(path)
        attr = loaded.schema("Student").attribute("courses")
        assert attr.is_set and attr.ref_class == "Course"

    def test_pool_capacity_configurable_on_load(self, full_db, tmp_path):
        path = tmp_path / "db.sigdb"
        save_database(full_db, path)
        loaded = load_database(path, pool_capacity=32)
        assert loaded.storage.pool.capacity == 32

    def test_dirty_pages_flushed_by_save(self, tmp_path):
        """Saving a cache-backed database must include unflushed writes."""
        from repro.objects.database import Database
        from repro.objects.schema import ClassSchema

        db = Database(pool_capacity=64)
        db.define_class(ClassSchema.build("T", tags="set"))
        oid = db.insert("T", {"tags": {"x"}})
        path = tmp_path / "c.sigdb"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.get(oid)["tags"] == {"x"}


class TestCatalog:
    def test_catalog_lists_all_files(self, full_db):
        catalog = build_catalog(full_db)
        names = [entry["name"] for entry in catalog["files"]]
        assert "objects:Student" in names
        assert any(name.endswith(":btree") for name in names)
        assert catalog["page_size"] == 4096

    def test_catalog_indexes(self, full_db):
        catalog = build_catalog(full_db)
        kinds = sorted(ix["facility"] for ix in catalog["indexes"])
        assert kinds == ["bssf", "nix", "ssf"]
        ssf = next(ix for ix in catalog["indexes"] if ix["facility"] == "ssf")
        assert ssf["F"] == 64 and ssf["m"] == 2 and ssf["seed"] == 3


class TestFormatErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(b"NOTADB" + b"\x00" * 32)
        with pytest.raises(StorageError, match="magic|snapshot"):
            load_database(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc"
        path.write_bytes(MAGIC[:4])
        with pytest.raises(StorageError):
            load_database(path)

    def test_truncated_pages(self, full_db, tmp_path):
        path = tmp_path / "db.sigdb"
        save_database(full_db, path)
        data = path.read_bytes()
        path.write_bytes(data[:-100])
        with pytest.raises(StorageError, match="truncated"):
            load_database(path)

    def test_trailing_garbage(self, full_db, tmp_path):
        path = tmp_path / "db.sigdb"
        save_database(full_db, path)
        path.write_bytes(path.read_bytes() + b"!")
        with pytest.raises(StorageError, match="trailing"):
            load_database(path)

    def test_bad_version(self, full_db, tmp_path):
        path = tmp_path / "db.sigdb"
        save_database(full_db, path)
        data = bytearray(path.read_bytes())
        data[8] = 99  # version lives right after the magic
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="version"):
            load_database(path)

    def test_corrupt_catalog_json(self, full_db, tmp_path):
        path = tmp_path / "db.sigdb"
        save_database(full_db, path)
        data = bytearray(path.read_bytes())
        data[14] = 0xFF  # stomp the catalog
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            load_database(path)

    def test_write_snapshot_validates_order(self):
        catalog = {"files": [{"name": "a", "pages": 0}], "page_size": 64}
        with pytest.raises(StorageError, match="order mismatch"):
            write_snapshot(io.BytesIO(), catalog, [("b", [])])

    def test_write_snapshot_validates_page_counts(self):
        catalog = {"files": [{"name": "a", "pages": 2}], "page_size": 64}
        with pytest.raises(StorageError, match="pages"):
            write_snapshot(io.BytesIO(), catalog, [("a", [b"\x00" * 64])])

    def test_header_roundtrip(self):
        stream = io.BytesIO()
        catalog = {"files": [], "page_size": 64}
        write_snapshot(stream, catalog, [])
        stream.seek(0)
        header = read_header(stream)
        assert header.version == FORMAT_VERSION
        assert header.catalog["page_size"] == 64
        assert read_pages(stream, header.catalog, 64) == {}
