"""Satellite (b): ``load_database`` validates the container before trust.

Every malformed-snapshot fixture must produce a clear ``StorageError``
that names the offending path — never a bare ``struct.error``,
``KeyError`` or silent partial load.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.errors import CorruptPageError, StorageError
from repro.persistence import load_database, save_database
from repro.persistence.format import FORMAT_VERSION, MAGIC
from tests.faults.conftest import build_indexed_db

HEADER = struct.Struct("<8sHI")


@pytest.fixture
def snapshot(tmp_path):
    db = build_indexed_db(count=20)
    target = tmp_path / "db.sigdb"
    save_database(db, target)
    return target


def expect_error(path, exc=StorageError):
    with pytest.raises(exc) as info:
        load_database(path)
    assert str(path) in str(info.value), (
        f"error does not name the snapshot path: {info.value}"
    )
    return info.value


def test_bad_magic(snapshot):
    raw = bytearray(snapshot.read_bytes())
    raw[:8] = b"NOTADB!!"
    snapshot.write_bytes(bytes(raw))
    error = expect_error(snapshot)
    assert "magic" in str(error)


def test_unsupported_version(snapshot):
    raw = bytearray(snapshot.read_bytes())
    struct.pack_into("<H", raw, 8, 99)
    snapshot.write_bytes(bytes(raw))
    error = expect_error(snapshot)
    assert "version" in str(error)


def test_truncated_header(snapshot):
    snapshot.write_bytes(snapshot.read_bytes()[:3])
    error = expect_error(snapshot)
    assert "header" in str(error)


def test_truncated_catalog(snapshot):
    snapshot.write_bytes(snapshot.read_bytes()[: HEADER.size + 10])
    error = expect_error(snapshot)
    assert "catalog" in str(error)


def test_garbage_catalog(snapshot):
    raw = bytearray(snapshot.read_bytes())
    raw[HEADER.size] ^= 0xFF  # breaks the JSON's first byte
    snapshot.write_bytes(bytes(raw))
    error = expect_error(snapshot)
    assert "catalog" in str(error)


def test_truncated_page_section(snapshot):
    snapshot.write_bytes(snapshot.read_bytes()[:-100])
    error = expect_error(snapshot)
    assert "truncated page data" in str(error)


def test_trailing_garbage(snapshot):
    snapshot.write_bytes(snapshot.read_bytes() + b"EXTRA")
    error = expect_error(snapshot)
    assert "trailing" in str(error)


def test_missing_catalog_key(tmp_path):
    catalog = json.dumps({"page_size": 4096}).encode("utf-8")
    path = tmp_path / "thin.sigdb"
    path.write_bytes(HEADER.pack(MAGIC, FORMAT_VERSION, len(catalog)) + catalog)
    error = expect_error(path)
    assert "missing key" in str(error)


def test_missing_file(tmp_path):
    path = tmp_path / "never-saved.sigdb"
    error = expect_error(path)
    assert "cannot read" in str(error)


def test_checksum_corrupt_page_detected_at_load(snapshot):
    raw = bytearray(snapshot.read_bytes())
    raw[-1] ^= 0xFF  # flip a bit inside the last page image
    snapshot.write_bytes(bytes(raw))
    error = expect_error(snapshot, CorruptPageError)
    assert "checksum" in str(error)
    # fsck-style loading still works so damage can be reported, not hidden.
    db = load_database(snapshot, verify_checksums=False)
    assert db.count("Student") == 20
