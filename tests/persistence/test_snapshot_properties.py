"""Property-based tests: arbitrary small databases survive snapshots."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.persistence.snapshot import load_database, save_database

_element = st.one_of(
    st.text(max_size=8),
    st.integers(-1000, 1000),
)

_object_values = st.fixed_dictionaries(
    {
        "label": st.text(max_size=12),
        "tags": st.frozensets(_element, max_size=6).map(set),
    }
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    objects=st.lists(_object_values, max_size=25),
    index_kinds=st.sets(st.sampled_from(["ssf", "bssf", "nix"]), max_size=3),
    deletions=st.sets(st.integers(0, 24), max_size=10),
)
def test_property_snapshot_roundtrip(tmp_path_factory, objects, index_kinds, deletions):
    db = Database()
    db.define_class(ClassSchema.build("Thing", label="scalar", tags="set"))
    if "ssf" in index_kinds:
        db.create_ssf_index("Thing", "tags", 64, 2, seed=1)
    if "bssf" in index_kinds:
        db.create_bssf_index("Thing", "tags", 64, 2, seed=1)
    if "nix" in index_kinds:
        db.create_nested_index("Thing", "tags")
    oids = [db.insert("Thing", values) for values in objects]
    for index in deletions:
        if index < len(oids) and db.objects.exists(oids[index]):
            db.delete(oids[index])

    path = tmp_path_factory.mktemp("snap") / "db.sigdb"
    save_database(db, path)
    loaded = load_database(path)

    assert dict(loaded.scan("Thing")) == dict(db.scan("Thing"))
    assert set(loaded.indexes_on("Thing", "tags")) == index_kinds
    loaded.verify_indexes()
    # a representative search must agree post-load
    for name in index_kinds:
        original = db.index("Thing", "tags", name)
        restored = loaded.index("Thing", "tags", name)
        query = frozenset({"probe", 1})
        assert (
            original.search_superset(query).candidates
            == restored.search_superset(query).candidates
        )
