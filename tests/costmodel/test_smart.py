"""Tests for the smart retrieval strategies (§5.1.3, §5.2.2, Appendix C)."""

import pytest

from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.costmodel.smart import (
    smart_subset_bssf,
    smart_subset_dq_opt,
    smart_superset_bssf,
    smart_superset_nix,
    subset_resolution_ceiling,
)
from repro.errors import ConfigurationError

P = PAPER_PARAMETERS


class TestSmartSupersetBSSF:
    def test_cost_flat_beyond_strategy_budget(self):
        """§5.1.3: with m=2 (F=500) the smart cost is constant for Dq ≥ 2."""
        model = BSSFCostModel(P, 500, 2)
        costs = [smart_superset_bssf(model, 10, dq).cost for dq in range(2, 11)]
        assert max(costs) - min(costs) < 1e-9

    def test_paper_rule_two_elements(self):
        """F=500, m=2: use two elements when Dq ≥ 3 (the paper's rule)."""
        model = BSSFCostModel(P, 500, 2)
        for dq in range(3, 11):
            decision = smart_superset_bssf(model, 10, dq)
            assert decision.parameter == 2

    def test_full_query_used_when_optimal(self):
        model = BSSFCostModel(P, 500, 2)
        decision = smart_superset_bssf(model, 10, 1)
        assert decision.is_naive  # nothing to drop at Dq=1

    def test_never_worse_than_naive(self):
        for F, m in ((250, 2), (500, 2), (1000, 3), (2500, 3)):
            model = BSSFCostModel(P, F, m)
            for dq in range(1, 11):
                smart = smart_superset_bssf(model, 10, dq).cost
                naive = model.retrieval_cost_superset(10, dq)
                assert smart <= naive + 1e-9

    def test_matches_brute_force_minimum(self):
        model = BSSFCostModel(P, 250, 2)
        for dq in (3, 6, 10):
            brute = min(
                model.retrieval_cost_superset_partial(10, dq, k)
                for k in range(1, dq + 1)
            )
            assert smart_superset_bssf(model, 10, dq).cost == pytest.approx(brute)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            smart_superset_bssf(BSSFCostModel(P, 500, 2), 10, 0)


class TestSmartSupersetNIX:
    def test_paper_rule_two_lookups(self):
        """§5.1.3: NIX smart uses two lookups for Dq ≥ 3 → cost ≈ 6 pages."""
        nix = NIXCostModel(P, 10)
        for dq in range(3, 11):
            decision = smart_superset_nix(nix, dq)
            assert decision.parameter == 2
            assert decision.cost == pytest.approx(6.0, abs=0.1)

    def test_nix_wins_only_at_dq1(self):
        """§5.1.3 conclusion: NIX beats smart BSSF only at Dq = 1."""
        nix = NIXCostModel(P, 10)
        bssf = BSSFCostModel(P, 500, 2)
        assert smart_superset_nix(nix, 1).cost < smart_superset_bssf(bssf, 10, 1).cost
        for dq in range(2, 11):
            assert (
                smart_superset_bssf(bssf, 10, dq).cost
                <= smart_superset_nix(nix, dq).cost + 1e-9
            )

    def test_never_worse_than_naive(self):
        nix = NIXCostModel(P, 10)
        for dq in range(1, 11):
            assert smart_superset_nix(nix, dq).cost <= nix.retrieval_cost_superset(dq) + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            smart_superset_nix(NIXCostModel(P, 10), 0)


class TestSmartSubsetBSSF:
    def test_cost_constant_below_dq_opt(self):
        """§5.2.2: smart cost is flat for Dq ≤ D_q^opt."""
        model = BSSFCostModel(P, 500, 2)
        d_opt = smart_subset_dq_opt(model, 10)
        sweep = [dq for dq in (10, 30, 100, 200) if dq < d_opt]
        costs = [smart_subset_bssf(model, 10, dq).cost for dq in sweep]
        assert max(costs) - min(costs) < 1e-6

    def test_dq_opt_near_300_at_paper_point(self):
        """§5.2.2 reads the naive curve's minimum at Dq ≈ 300."""
        model = BSSFCostModel(P, 500, 2)
        assert 200 <= smart_subset_dq_opt(model, 10) <= 420

    def test_reverts_to_naive_above_dq_opt(self):
        model = BSSFCostModel(P, 500, 2)
        d_opt = smart_subset_dq_opt(model, 10)
        dq = int(d_opt * 2)
        decision = smart_subset_bssf(model, 10, dq)
        assert decision.is_naive
        assert decision.cost == pytest.approx(
            model.retrieval_cost_subset(10, dq), rel=0.1
        )

    def test_never_worse_than_naive(self):
        model = BSSFCostModel(P, 500, 2)
        for dq in (10, 50, 100, 300, 700, 1000):
            smart = smart_subset_bssf(model, 10, dq).cost
            naive = model.retrieval_cost_subset(10, dq)
            assert smart <= naive * 1.05 + 1e-9

    def test_smart_bssf_beats_nix_for_subset(self):
        """§5.2.2 conclusion: BSSF overwhelms NIX on T ⊆ Q for probable
        Dq values (the paper's phrase — i.e. up to around D_q^opt; at
        extreme Dq both filters saturate and every object is read)."""
        model = BSSFCostModel(P, 250, 2)
        nix = NIXCostModel(P, 10)
        for dq in (10, 50, 100, 300):
            assert smart_subset_bssf(model, 10, dq).cost < nix.retrieval_cost_subset(dq)

    def test_resolution_ceiling(self):
        model = BSSFCostModel(P, 500, 2)
        assert subset_resolution_ceiling(model) == 63 + 32_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            smart_subset_bssf(BSSFCostModel(P, 500, 2), 10, -1)


class TestHeadlineConclusion:
    """The paper's §6 summary, as executable assertions."""

    def test_bssf_small_m_beats_ssf_everywhere(self):
        from repro.costmodel.ssf_model import SSFCostModel

        bssf = BSSFCostModel(P, 250, 2)
        ssf = SSFCostModel(P, 250, 2)
        for dq in range(1, 11):
            assert bssf.retrieval_cost_superset(10, dq) < ssf.retrieval_cost_superset(10, dq)
        for dq in (10, 100, 1000):
            assert bssf.retrieval_cost_subset(10, dq) < ssf.retrieval_cost_subset(10, dq)

    def test_bssf_storage_half_of_nix(self):
        """§6: BSSF (F=250) storage ≈ half of NIX for Dt=10."""
        ratio = BSSFCostModel(P, 250, 2).storage_cost() / NIXCostModel(P, 10).storage_cost()
        assert ratio == pytest.approx(0.45, abs=0.05)

    def test_small_m_beats_m_opt_for_retrieval(self):
        """§6: 'we had better set a far smaller value to m'."""
        from repro.core.false_drop import rounded_optimal_m
        from repro.core.tuning import best_m_for_retrieval

        F, Dt = 500, 10
        m_opt = rounded_optimal_m(F, Dt)

        def cost(m):
            model = BSSFCostModel(P, F, m)
            return sum(model.retrieval_cost_superset(Dt, dq) for dq in range(2, 11))

        best = best_m_for_retrieval(cost, m_opt)
        assert best <= 4 < m_opt
