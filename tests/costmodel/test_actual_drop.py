"""Tests for actual-drop estimation (§4.4, Appendix B)."""

import math
import random

import pytest

from repro.costmodel.actual_drop import (
    actual_drops_subset,
    actual_drops_superset,
    expected_intersecting_non_subset,
    intersection_probability,
    subset_probability,
    superset_probability,
)
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.errors import ConfigurationError


class TestSupersetProbability:
    def test_singleton_query_gives_d_over_n(self):
        """A(Dq=1) = N·Dt/V = d — the paper's posting-list density."""
        drops = actual_drops_superset(PAPER_PARAMETERS, 10, 1)
        assert drops == pytest.approx(32_000 * 10 / 13_000, rel=1e-9)

    def test_formula(self):
        V, Dt, Dq = 100, 10, 3
        expected = math.comb(V - Dq, Dt - Dq) / math.comb(V, Dt)
        assert superset_probability(V, Dt, Dq) == pytest.approx(expected)

    def test_query_larger_than_target_impossible(self):
        assert superset_probability(100, 5, 6) == 0.0

    def test_empty_query_certain(self):
        assert superset_probability(100, 5, 0) == 1.0

    def test_decreasing_in_dq(self):
        values = [superset_probability(100, 20, dq) for dq in range(0, 10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_huge_parameters_no_overflow(self):
        # Dt=100 over V=13000 involves astronomically large binomials.
        value = superset_probability(13_000, 100, 10)
        assert 0.0 < value < 1e-15

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            superset_probability(10, 11, 1)
        with pytest.raises(ConfigurationError):
            superset_probability(10, 1, 11)
        with pytest.raises(ConfigurationError):
            superset_probability(10, -1, 1)


class TestSubsetProbability:
    def test_formula(self):
        V, Dt, Dq = 100, 3, 10
        expected = math.comb(Dq, Dt) / math.comb(V, Dt)
        assert subset_probability(V, Dt, Dq) == pytest.approx(expected)

    def test_target_larger_than_query_impossible(self):
        assert subset_probability(100, 6, 5) == 0.0

    def test_empty_target_certain(self):
        assert subset_probability(100, 0, 5) == 1.0

    def test_negligible_at_paper_scale(self):
        """§4.4: actual drops for T ⊆ Q are 'almost negligible'."""
        drops = actual_drops_subset(PAPER_PARAMETERS, 10, 100)
        assert drops < 1e-10

    def test_increasing_in_dq(self):
        values = [subset_probability(100, 3, dq) for dq in (3, 10, 50, 100)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_full_domain_query_certain(self):
        assert subset_probability(50, 5, 50) == pytest.approx(1.0)


class TestIntersectionProbability:
    def test_distribution_sums_to_one(self):
        V, Dt, Dq = 60, 8, 12
        total = sum(
            intersection_probability(V, Dt, Dq, j) for j in range(0, Dt + 1)
        )
        assert total == pytest.approx(1.0)

    def test_out_of_support_is_zero(self):
        assert intersection_probability(60, 8, 12, -1) == 0.0
        assert intersection_probability(60, 8, 12, 9) == 0.0

    def test_monte_carlo_agreement(self):
        V, Dt, Dq, trials = 40, 5, 8, 4000
        rng = random.Random(0)
        query = set(rng.sample(range(V), Dq))
        histogram = [0] * (Dt + 1)
        for _ in range(trials):
            target = set(rng.sample(range(V), Dt))
            histogram[len(target & query)] += 1
        for j in range(Dt + 1):
            predicted = intersection_probability(V, Dt, Dq, j)
            measured = histogram[j] / trials
            sigma = math.sqrt(max(predicted * (1 - predicted) / trials, 1e-12))
            assert abs(measured - predicted) < max(6 * sigma, 0.02)


class TestIntersectingNonSubset:
    def test_consistency_with_distribution(self):
        """Expected failing candidates = N·(P[∩>0] − P[subset])."""
        params = PAPER_PARAMETERS
        Dt, Dq = 10, 50
        p_overlap = 1.0 - intersection_probability(
            params.domain_cardinality, Dt, Dq, 0
        )
        p_subset = subset_probability(params.domain_cardinality, Dt, Dq)
        expected = params.num_objects * (p_overlap - p_subset)
        value = expected_intersecting_non_subset(params, Dt, Dq)
        assert value == pytest.approx(expected, rel=1e-6)

    def test_grows_with_dq(self):
        params = PAPER_PARAMETERS
        values = [
            expected_intersecting_non_subset(params, 10, dq)
            for dq in (10, 100, 500)
        ]
        assert values[0] < values[1] < values[2]

    def test_bounded_by_n(self):
        value = expected_intersecting_non_subset(PAPER_PARAMETERS, 10, 5000)
        assert value <= PAPER_PARAMETERS.num_objects
