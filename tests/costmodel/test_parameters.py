"""Tests for cost-model parameters (Table 2)."""

import pytest

from repro.costmodel.parameters import (
    PAPER_DESIGN_POINTS,
    PAPER_PARAMETERS,
    CostParameters,
)
from repro.errors import ConfigurationError


class TestTable2Defaults:
    def test_constants(self):
        p = PAPER_PARAMETERS
        assert p.num_objects == 32_000
        assert p.page_bytes == 4096
        assert p.oid_bytes == 8
        assert p.domain_cardinality == 13_000
        assert p.bits_per_byte == 8
        assert p.pages_per_successful == 1.0
        assert p.pages_per_unsuccessful == 1.0

    def test_derived_values(self):
        p = PAPER_PARAMETERS
        assert p.oids_per_page == 512          # O_p
        assert p.oid_file_pages == 63          # SC_OID
        assert p.page_bits == 32_768           # P·b

    def test_design_points(self):
        assert PAPER_DESIGN_POINTS[10] == ((250, 2), (500, 2))
        assert PAPER_DESIGN_POINTS[100] == ((1000, 3), (2500, 3))


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_objects": 0},
            {"page_bytes": 0},
            {"oid_bytes": 0},
            {"oid_bytes": 8192},
            {"domain_cardinality": 0},
            {"bits_per_byte": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            CostParameters(**kwargs)


class TestOIDLookupCost:
    def test_zero_drop_probability_no_actuals(self):
        assert PAPER_PARAMETERS.oid_lookup_cost(0.0, 0.0) == 0.0

    def test_fd_one_reads_whole_oid_file(self):
        assert PAPER_PARAMETERS.oid_lookup_cost(1.0, 0.0) == 63.0

    def test_min_caps_per_page_cost(self):
        """With many drops per page, each page is read at most once."""
        cost = PAPER_PARAMETERS.oid_lookup_cost(0.5, 1000.0)
        assert cost == 63.0

    def test_small_fd_scales_linearly(self):
        p = PAPER_PARAMETERS
        fd = 1e-4
        expected = p.oid_file_pages * fd * p.oids_per_page
        assert p.oid_lookup_cost(fd, 0.0) == pytest.approx(expected)

    def test_alpha_term(self):
        """One actual drop per OID page (α = 1) forces every page read."""
        p = PAPER_PARAMETERS
        actuals = 63.0
        assert p.oid_lookup_cost(0.0, actuals) == pytest.approx(63.0)
        # half a drop per page: half the pages in expectation
        assert p.oid_lookup_cost(0.0, 31.5) == pytest.approx(31.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PAPER_PARAMETERS.oid_lookup_cost(1.5, 0.0)
        with pytest.raises(ConfigurationError):
            PAPER_PARAMETERS.oid_lookup_cost(0.5, -1.0)
