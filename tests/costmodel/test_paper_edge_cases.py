"""Golden tests for cost-model edge cases the sweeps skim past.

Two corners of the §5 strategy space get pinned to exact page counts at the
paper's parameter point (PAPER_PARAMETERS, F=500):

* ``Dq = 1`` superset retrieval — the one point where the nested index
  beats even the smart bit-sliced strategy (§5.1.3's conclusion). One
  element gives BSSF only ``m`` slices of discrimination, so false drops
  dominate; NIX walks a single posting list.
* ``m = 1`` bit-sliced flatness — with one bit per element the smart
  superset strategy saturates at a three-element budget, so its cost is
  *constant* in ``Dq`` beyond that point while the naive cost climbs with
  every extra slice read.

The golden numbers are pinned tight (``rel=1e-9``): these expressions are
closed-form, so any drift is a semantic change to the model, not noise.
"""

import pytest

from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.costmodel.smart import smart_superset_bssf, smart_superset_nix

P = PAPER_PARAMETERS

#: Expected logical page accesses at the paper point (see module docstring).
GOLDEN_NIX_SUPERSET_DQ1 = 27.615384615384617
GOLDEN_BSSF_SUPERSET_DQ1 = 138.77252319887657
GOLDEN_BSSF_M1_FLAT_COST = 3.4899194807153107
GOLDEN_BSSF_M1_DQ1 = 721.7694221931009


class TestDq1SupersetCrossover:
    """§5.1.3: NIX wins at Dq = 1, and only there."""

    def test_golden_costs_at_dq1(self):
        nix = NIXCostModel(P, 10)
        bssf = BSSFCostModel(P, 500, 2)
        assert nix.retrieval_cost_superset(1) == pytest.approx(
            GOLDEN_NIX_SUPERSET_DQ1, rel=1e-9
        )
        assert bssf.retrieval_cost_superset(10, 1) == pytest.approx(
            GOLDEN_BSSF_SUPERSET_DQ1, rel=1e-9
        )

    def test_nix_beats_bssf_by_5x_at_dq1(self):
        """The gap is structural (~5x), not a rounding artifact."""
        assert GOLDEN_BSSF_SUPERSET_DQ1 / GOLDEN_NIX_SUPERSET_DQ1 > 5.0

    def test_smart_strategies_cannot_close_the_gap_at_dq1(self):
        """With one query element there is nothing for smart BSSF to drop."""
        nix = NIXCostModel(P, 10)
        bssf = BSSFCostModel(P, 500, 2)
        smart_nix = smart_superset_nix(nix, 1).cost
        smart_bssf = smart_superset_bssf(bssf, 10, 1).cost
        assert smart_nix == pytest.approx(GOLDEN_NIX_SUPERSET_DQ1, rel=1e-9)
        assert smart_bssf == pytest.approx(GOLDEN_BSSF_SUPERSET_DQ1, rel=1e-9)
        assert smart_nix < smart_bssf

    def test_crossover_is_exactly_at_dq2(self):
        """One more element flips the winner to BSSF for good."""
        nix = NIXCostModel(P, 10)
        bssf = BSSFCostModel(P, 500, 2)
        assert (
            smart_superset_bssf(bssf, 10, 2).cost
            < smart_superset_nix(nix, 2).cost
        )


class TestM1BssfFlatness:
    """m = 1: smart superset cost is flat in Dq past its element budget."""

    def test_smart_cost_constant_beyond_budget(self):
        model = BSSFCostModel(P, 500, 1)
        costs = [
            smart_superset_bssf(model, 10, dq).cost
            for dq in (3, 5, 10, 50, 200)
        ]
        for cost in costs:
            assert cost == pytest.approx(GOLDEN_BSSF_M1_FLAT_COST, rel=1e-9)

    def test_budget_is_three_elements(self):
        """At m = 1 / F = 500 the optimum examines exactly 3 elements."""
        model = BSSFCostModel(P, 500, 1)
        for dq in (5, 10, 200):
            assert smart_superset_bssf(model, 10, dq).parameter == 3

    def test_naive_cost_climbs_while_smart_stays_flat(self):
        model = BSSFCostModel(P, 500, 1)
        naive = [model.retrieval_cost_superset(10, dq) for dq in (5, 10, 50)]
        assert naive == sorted(naive) and naive[-1] > naive[0]
        assert all(
            cost > GOLDEN_BSSF_M1_FLAT_COST for cost in naive
        )

    def test_dq1_golden_cost_dominated_by_false_drops(self):
        """One 1-bit slice barely discriminates: ~722 pages at Dq = 1."""
        model = BSSFCostModel(P, 500, 1)
        assert model.retrieval_cost_superset(10, 1) == pytest.approx(
            GOLDEN_BSSF_M1_DQ1, rel=1e-9
        )
        # Degenerate discrimination: two orders of magnitude above flat.
        assert GOLDEN_BSSF_M1_DQ1 > 100 * GOLDEN_BSSF_M1_FLAT_COST
