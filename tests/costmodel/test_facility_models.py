"""Tests for the SSF / BSSF / NIX analytical cost models (§4).

Anchor values come straight from the paper's text and tables; shape tests
pin the monotonicity and dominance claims of Section 5.
"""

import pytest

from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.costmodel.ssf_model import SSFCostModel
from repro.errors import ConfigurationError

P = PAPER_PARAMETERS


class TestSSFStorage:
    def test_signature_file_pages(self):
        assert SSFCostModel(P, 250, 2).signature_file_pages == 245
        assert SSFCostModel(P, 500, 2).signature_file_pages == 493

    def test_storage_anchors_vs_nix(self):
        """§6: SSF storage ≈ 45% / 80% of NIX for Dt=10; 16% / 38% for 100."""
        nix10 = NIXCostModel(P, 10).storage_cost()
        nix100 = NIXCostModel(P, 100).storage_cost()
        assert SSFCostModel(P, 250, 2).storage_cost() / nix10 == pytest.approx(0.45, abs=0.02)
        assert SSFCostModel(P, 500, 2).storage_cost() / nix10 == pytest.approx(0.80, abs=0.02)
        assert SSFCostModel(P, 1000, 3).storage_cost() / nix100 == pytest.approx(0.16, abs=0.02)
        assert SSFCostModel(P, 2500, 3).storage_cost() / nix100 == pytest.approx(0.38, abs=0.02)

    def test_update_costs(self):
        model = SSFCostModel(P, 500, 2)
        assert model.insert_cost() == 2.0
        assert model.delete_cost() == 31.5  # SC_OID / 2

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SSFCostModel(P, 0, 1)
        with pytest.raises(ConfigurationError):
            SSFCostModel(P, 100, 0)
        with pytest.raises(ConfigurationError):
            SSFCostModel(P, 100_000, 2)  # signature larger than a page


class TestSSFRetrieval:
    def test_scan_term_dominates_small_queries(self):
        """Eq. 7: RC ≥ SC_SIG always — the full scan is unavoidable."""
        model = SSFCostModel(P, 500, 2)
        for dq in range(1, 11):
            assert model.retrieval_cost_superset(10, dq) >= 493

    def test_subset_cost_approaches_pu_n(self):
        model = SSFCostModel(P, 500, 2)
        huge = model.retrieval_cost_subset(10, 5000)
        ceiling = 493 + 63 + P.num_objects
        assert huge == pytest.approx(ceiling, rel=0.01)

    def test_exact_flag_changes_little(self):
        model = SSFCostModel(P, 500, 2)
        approx = model.retrieval_cost_superset(10, 3)
        exact = model.retrieval_cost_superset(10, 3, exact=True)
        assert approx == pytest.approx(exact, rel=0.05)


class TestBSSFModel:
    def test_slice_pages_is_one_at_paper_scale(self):
        assert BSSFCostModel(P, 500, 2).slice_pages == 1

    def test_storage_cost(self):
        assert BSSFCostModel(P, 500, 2).storage_cost() == 563
        assert BSSFCostModel(P, 250, 2).storage_cost() == 313

    def test_update_costs(self):
        model = BSSFCostModel(P, 500, 2)
        assert model.insert_cost() == 501.0  # F + 1 worst case
        assert model.delete_cost() == 31.5
        expected = model.insert_cost_expected(10)
        assert 1.0 < expected < 40.0  # ~m_t + 1 ≈ 20.6

    def test_superset_cost_grows_with_dq(self):
        """§5.1.1: BSSF T⊇Q cost rises with Dq via m_q."""
        model = BSSFCostModel(P, 500, 2)
        costs = [model.retrieval_cost_superset(10, dq) for dq in range(2, 11)]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_paper_example_six_pages_at_dq3(self):
        """§5.1.3: m=2, Dq=3 costs ≈6 pages; Dq=2 costs ≈4 pages."""
        model = BSSFCostModel(P, 500, 2)
        assert model.retrieval_cost_superset(10, 3) == pytest.approx(6.0, abs=0.2)
        assert model.retrieval_cost_superset(10, 2) == pytest.approx(4.0, abs=0.3)

    def test_superset_partial_equals_smaller_dq(self):
        model = BSSFCostModel(P, 500, 2)
        assert model.retrieval_cost_superset_partial(10, 8, 2) == pytest.approx(
            model.retrieval_cost_superset(10, 2)
        )

    def test_partial_validation(self):
        model = BSSFCostModel(P, 500, 2)
        with pytest.raises(ConfigurationError):
            model.retrieval_cost_superset_partial(10, 3, 0)
        with pytest.raises(ConfigurationError):
            model.retrieval_cost_superset_partial(10, 3, 4)
        with pytest.raises(ConfigurationError):
            model.retrieval_cost_subset_partial(10, 3, -1)

    def test_subset_partial_matches_full_at_all_slices(self):
        model = BSSFCostModel(P, 500, 2)
        Dt, Dq = 10, 100
        available = model.signature_bits - model.query_weight(Dq)
        partial = model.retrieval_cost_subset_partial(Dt, Dq, int(available) + 50)
        full = model.retrieval_cost_subset(Dt, Dq)
        assert partial == pytest.approx(full, rel=0.05)

    def test_bssf_beats_matching_ssf_on_subset(self):
        """§5.2.1 / Figure 8: BSSF dominates the same-(F, m) SSF."""
        bssf = BSSFCostModel(P, 500, 2)
        ssf = SSFCostModel(P, 500, 2)
        for dq in (10, 30, 100, 300, 1000):
            assert bssf.retrieval_cost_subset(10, dq) < ssf.retrieval_cost_subset(10, dq)


class TestNIXModel:
    def test_table5_anchors(self):
        nix10 = NIXCostModel(P, 10)
        assert (nix10.leaf_pages, nix10.nonleaf_pages) == (685, 5)
        assert nix10.storage_cost() == 690
        nix100 = NIXCostModel(P, 100)
        assert (nix100.leaf_pages, nix100.nonleaf_pages) == (6500, 31)
        assert nix100.storage_cost() == 6531

    def test_height_and_rc(self):
        assert NIXCostModel(P, 10).height == 2
        assert NIXCostModel(P, 10).lookup_cost == 3
        assert NIXCostModel(P, 100).lookup_cost == 3

    def test_posting_density(self):
        assert NIXCostModel(P, 10).average_postings == pytest.approx(24.6, abs=0.1)

    def test_update_costs(self):
        assert NIXCostModel(P, 10).insert_cost() == 30.0   # rc·Dt
        assert NIXCostModel(P, 100).delete_cost() == 300.0

    def test_superset_cost_linear_in_dq(self):
        nix = NIXCostModel(P, 10)
        # beyond Dq=2 actual drops are negligible: RC ≈ 3·Dq
        assert nix.retrieval_cost_superset(5) == pytest.approx(15.0, abs=0.1)
        assert nix.retrieval_cost_superset(10) == pytest.approx(30.0, abs=0.1)

    def test_superset_dq1_includes_posting_fetches(self):
        nix = NIXCostModel(P, 10)
        assert nix.retrieval_cost_superset(1) == pytest.approx(3 + 24.6, abs=0.1)

    def test_subset_cost_grows_toward_n(self):
        nix = NIXCostModel(P, 10)
        costs = [nix.retrieval_cost_subset(dq) for dq in (10, 100, 1000)]
        assert costs[0] < costs[1] < costs[2]
        assert costs[2] < P.num_objects + 3 * 1000 + 1

    def test_partial_superset_model(self):
        nix = NIXCostModel(P, 10)
        # k=2 lookups: 6 pages + negligible candidates
        assert nix.retrieval_cost_superset_partial(8, 2) == pytest.approx(6.0, abs=0.1)
        with pytest.raises(ConfigurationError):
            nix.retrieval_cost_superset_partial(3, 0)
        with pytest.raises(ConfigurationError):
            nix.retrieval_cost_superset_partial(3, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NIXCostModel(P, 0)
        with pytest.raises(ConfigurationError):
            NIXCostModel(P, 10, fanout=1)
        with pytest.raises(ConfigurationError):
            nix = NIXCostModel(P, 10)
            nix.retrieval_cost_superset(-1)
