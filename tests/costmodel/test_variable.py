"""Tests for the variable-cardinality cost model (§6 future work)."""

import random

import pytest

from repro.core.signature import SignatureScheme
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.parameters import PAPER_PARAMETERS
from repro.costmodel.variable import (
    CardinalityDistribution,
    VariableCardinalityModel,
)
from repro.errors import ConfigurationError

P = PAPER_PARAMETERS


class TestDistribution:
    def test_fixed(self):
        dist = CardinalityDistribution.fixed(10)
        assert dist.mean() == 10
        assert dist.support() == (10,)

    def test_uniform(self):
        dist = CardinalityDistribution.uniform(1, 19)
        assert dist.mean() == pytest.approx(10.0)
        assert dist.support() == tuple(range(1, 20))

    def test_from_samples(self):
        dist = CardinalityDistribution.from_samples([2, 2, 4])
        assert dist.probabilities[2] == pytest.approx(2 / 3)
        assert dist.mean() == pytest.approx(8 / 3)

    def test_expect(self):
        dist = CardinalityDistribution.uniform(1, 3)
        assert dist.expect(lambda d: d * d) == pytest.approx((1 + 4 + 9) / 3)

    @pytest.mark.parametrize(
        "probs",
        [{}, {5: 0.5}, {-1: 1.0}, {5: -0.2, 6: 1.2}],
    )
    def test_validation(self, probs):
        with pytest.raises(ConfigurationError):
            CardinalityDistribution(probs)

    def test_uniform_validation(self):
        with pytest.raises(ConfigurationError):
            CardinalityDistribution.uniform(5, 4)

    def test_from_samples_empty(self):
        with pytest.raises(ConfigurationError):
            CardinalityDistribution.from_samples([])


class TestFixedDegeneratesToSection4:
    """With a point distribution the model must equal the fixed-Dt one."""

    def test_all_costs_match(self):
        fixed = VariableCardinalityModel(
            P, CardinalityDistribution.fixed(10), 500, 2
        )
        reference = BSSFCostModel(P, 500, 2)
        for dq in (1, 3, 5, 10):
            assert fixed.bssf_retrieval_superset(dq) == pytest.approx(
                reference.retrieval_cost_superset(10, dq)
            )
        for dq in (10, 100, 300):
            assert fixed.bssf_retrieval_subset(dq) == pytest.approx(
                reference.retrieval_cost_subset(10, dq)
            )

    def test_nix_geometry_at_mean(self):
        fixed = VariableCardinalityModel(
            P, CardinalityDistribution.fixed(10), 500, 2
        )
        assert fixed.nix_model().storage_cost() == 690
        assert fixed.nix_update_cost() == 30.0


class TestMixtureEffects:
    def test_variance_increases_false_drops(self):
        """Fd_⊇ is convex in Dt, so a mean-preserving spread hurts."""
        fixed = VariableCardinalityModel(
            P, CardinalityDistribution.fixed(10), 500, 2
        )
        spread = VariableCardinalityModel(
            P, CardinalityDistribution.uniform(1, 19), 500, 2
        )
        for dq in (1, 2, 3, 5):
            assert spread.false_drop_superset(dq) > fixed.false_drop_superset(dq)

    def test_retrieval_cost_ordering_under_spread(self):
        fixed = VariableCardinalityModel(
            P, CardinalityDistribution.fixed(10), 500, 2
        )
        spread = VariableCardinalityModel(
            P, CardinalityDistribution.uniform(1, 19), 500, 2
        )
        for dq in (2, 3, 5):
            assert spread.bssf_retrieval_superset(dq) >= fixed.bssf_retrieval_superset(dq)

    def test_mixture_is_linear_in_probabilities(self):
        half = CardinalityDistribution({5: 0.5, 15: 0.5})
        model = VariableCardinalityModel(P, half, 500, 2)
        five = VariableCardinalityModel(P, CardinalityDistribution.fixed(5), 500, 2)
        fifteen = VariableCardinalityModel(P, CardinalityDistribution.fixed(15), 500, 2)
        dq = 2
        assert model.false_drop_superset(dq) == pytest.approx(
            0.5 * five.false_drop_superset(dq) + 0.5 * fifteen.false_drop_superset(dq)
        )
        assert model.actual_drops_superset(dq) == pytest.approx(
            0.5 * five.actual_drops_superset(dq)
            + 0.5 * fifteen.actual_drops_superset(dq)
        )

    def test_ssf_scan_term_unchanged_by_distribution(self):
        spread = VariableCardinalityModel(
            P, CardinalityDistribution.uniform(1, 19), 500, 2
        )
        # huge Dq: the filter saturates toward the same ceiling either way
        assert spread.ssf_retrieval_superset(1) >= 493


class TestMonteCarloAgreement:
    def test_mixed_false_drop_rate_matches_simulation(self):
        """Measured drop rate over variable-size targets ≈ E_d[Fd(d)]."""
        F, m, Dq, trials = 64, 2, 2, 4000
        scheme = SignatureScheme(F, m, seed=4)
        rng = random.Random(4)
        domain = range(50_000)
        query = rng.sample(domain, Dq)
        query_sig = scheme.query_signature(query)
        sizes = [1, 2, 3, 4, 5, 6, 7]
        drops = 0
        for _ in range(trials):
            d = rng.choice(sizes)
            target = rng.sample(domain, d)
            if set(query) <= set(target):
                continue
            if scheme.is_drop_superset(scheme.set_signature(target), query_sig):
                drops += 1
        measured = drops / trials
        params = PAPER_PARAMETERS
        model = VariableCardinalityModel(
            params,
            CardinalityDistribution.uniform(1, 7),
            F,
            m,
        )
        predicted = model.false_drop_superset(Dq)
        assert measured == pytest.approx(predicted, rel=0.35, abs=0.01)
