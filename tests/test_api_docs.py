"""Guard: docs/API.md stays in sync with the public surface."""

import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


@pytest.fixture
def gen_api_docs():
    sys.path.insert(0, str(TOOLS))
    try:
        import gen_api_docs  # noqa: F401

        yield gen_api_docs
    finally:
        sys.path.remove(str(TOOLS))


class TestAPIDocs:
    def test_generated_content_covers_packages(self, gen_api_docs):
        content = gen_api_docs.generate()
        for package in ("repro.core", "repro.costmodel", "repro.shell"):
            assert f"## `{package}`" in content
        assert "### `Database`" in content
        assert "BSSFCostModel" in content

    def test_docs_file_is_current(self, gen_api_docs):
        assert gen_api_docs.main(["--check"]) == 0

    def test_regeneration_is_deterministic(self, gen_api_docs):
        assert gen_api_docs.generate() == gen_api_docs.generate()
