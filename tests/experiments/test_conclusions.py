"""Tests for the Section 6 conclusions summary experiment."""

import pytest

from repro.experiments.conclusions import summary
from repro.experiments.registry import run_experiment


class TestSummary:
    @pytest.fixture(scope="class")
    def table(self):
        return summary()

    def test_every_claim_holds(self, table):
        failing = [row[0] for row in table.rows if row[2] != "HOLDS"]
        assert not failing, f"paper claims failing to reproduce: {failing}"

    def test_covers_the_section6_claims(self, table):
        claims = " | ".join(row[0] for row in table.rows)
        for keyword in ("storage", "T⊇Q", "T⊆Q", "m_opt", "insert"):
            assert keyword in claims

    def test_registered(self):
        result = run_experiment("summary")
        assert result.experiment_id == "summary"

    def test_renders(self, table):
        text = table.render()
        assert "HOLDS" in text and "FAILS" not in text
