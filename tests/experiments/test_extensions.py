"""Tests for the extension experiments (variable Dt, false-drop validation)."""

import pytest

from repro.experiments.empirical import EmpiricalConfig, Testbed
from repro.experiments.extensions import false_drop_validation, variable_cardinality


class TestVariableCardinalityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return variable_cardinality()

    def test_two_series(self, result):
        assert set(result.series) == {"fixed Dt=10", "uniform Dt∈[1,19]"}

    def test_spread_never_cheaper(self, result):
        for dq in result.x_values:
            assert (
                result.value("uniform Dt∈[1,19]", dq)
                >= result.value("fixed Dt=10", dq) - 1e-9
            )

    def test_renders(self, result):
        assert "variable_cardinality" in result.render()


class TestFalseDropValidation:
    @pytest.fixture(scope="class")
    def table(self):
        config = EmpiricalConfig(
            num_objects=512,
            domain_cardinality=208,
            signature_bits=64,
            bits_per_element=2,
            queries_per_point=3,
            seed=5,
        )
        return false_drop_validation(
            config=config,
            superset_dq=(1, 2),
            subset_dq=(30, 60),
            queries_per_point=3,
            testbed=Testbed.build(config),
        )

    def test_rows_cover_both_query_types(self, table):
        modes = {row[0] for row in table.rows}
        assert modes == {"T⊇Q", "T⊆Q"}

    def test_measured_tracks_prediction(self, table):
        """Measured and predicted Fd must agree within the validation
        regime's tolerance: sampling noise (a few hundred Bernoulli trials
        per point) plus eq. (6)'s documented low bias at small F (the
        independence approximation over m·Dt bits)."""
        for mode, dq, measured, predicted, _ in table.rows:
            assert predicted / 3.0 - 0.02 <= measured <= predicted * 3.0 + 0.03, (
                mode, dq, measured, predicted,
            )

    def test_superset_fd_decreases_with_dq(self, table):
        superset = [row for row in table.rows if row[0] == "T⊇Q"]
        predicted = [row[3] for row in superset]
        assert predicted == sorted(predicted, reverse=True)

    def test_renders(self, table):
        assert "false_drop_validation" in table.render()
