"""Tests for CSV rendering and the report command."""

import pytest

from repro.cli import main
from repro.experiments.result import SeriesResult, TableResult, render_result
from repro.experiments.tables import table5


class TestCSV:
    def test_table_csv(self):
        csv = table5().render_csv()
        lines = csv.splitlines()
        assert lines[0] == "Dt,lp,nlp,SC"
        assert lines[1] == "10,685,5,690"

    def test_series_csv(self):
        series = SeriesResult(
            "x", "t", "Dq", [1, 2], {"a": [1.5, 2.0], "b": [3.0, 4.25]}
        )
        lines = series.render_csv().splitlines()
        assert lines[0] == "Dq,a,b"
        assert lines[1] == "1,1.50,3"

    def test_quoting(self):
        table = TableResult(
            "q", "t", ["name", "v"], [['has,comma', 1], ['has"quote', 2]]
        )
        csv = table.render_csv()
        assert '"has,comma",1' in csv
        assert '"has""quote",2' in csv

    def test_render_result_dispatch(self):
        assert "Dt,lp" in render_result(table5(), fmt="csv")
        assert "== table5" in render_result(table5(), fmt="text")
        with pytest.raises(ValueError):
            render_result(table5(), fmt="json")


class TestCLIFormats:
    def test_run_csv(self, capsys):
        assert main(["run", "table5", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "Dt,lp,nlp,SC" in out

    def test_report_analytical(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["report", "--analytical-only", "--output", str(path)]) == 0
        body = path.read_text()
        assert "# Reproduction report" in body
        for eid in ("figure4", "table7", "summary"):
            assert f"## {eid}" in body
        assert "## empirical_superset" not in body
