"""Tests for experiment result containers and rendering."""

import pytest

from repro.experiments.result import SeriesResult, TableResult, render_result


def make_series() -> SeriesResult:
    return SeriesResult(
        experiment_id="fig",
        title="Demo",
        x_label="Dq",
        x_values=[1, 2],
        series={"A": [1.0, 2.0], "B": [3.3333, 4.0]},
        notes=["a note"],
    )


class TestSeriesResult:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SeriesResult("x", "t", "Dq", [1, 2], {"A": [1.0]})

    def test_rows_and_columns(self):
        series = make_series()
        assert series.column_labels() == ["Dq", "A", "B"]
        assert series.rows() == [[1, 1.0, 3.3333], [2, 2.0, 4.0]]

    def test_value_lookup(self):
        assert make_series().value("B", 2) == 4.0
        with pytest.raises(ValueError):
            make_series().value("B", 99)

    def test_render_contains_everything(self):
        text = make_series().render()
        assert "Demo" in text and "Dq" in text
        assert "3.33" in text
        assert "note: a note" in text

    def test_render_aligns_columns(self):
        lines = make_series().render().splitlines()
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)


class TestTableResult:
    def make(self) -> TableResult:
        return TableResult(
            experiment_id="t5",
            title="Storage",
            columns=["Dt", "SC"],
            rows=[[10, 690], [100, 6531]],
        )

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            TableResult("t", "t", ["a"], [[1, 2]])

    def test_cell_lookup(self):
        assert self.make().cell(10, "SC") == 690
        with pytest.raises(KeyError):
            self.make().cell(42, "SC")
        with pytest.raises(ValueError):
            self.make().cell(10, "nope")

    def test_render(self):
        text = self.make().render()
        assert "6531" in text and "Storage" in text


class TestRenderDispatch:
    def test_series_and_table(self):
        assert "Demo" in render_result(make_series())

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            render_result("text")
