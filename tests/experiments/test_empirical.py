"""Integration tests: the simulator's measured page accesses vs the model.

These run a genuinely scaled-down testbed (N = 512) so they stay fast while
still exercising the full stack — loader, three facilities, planner,
executor, and I/O accounting.
"""

import pytest

from repro.experiments.empirical import (
    EmpiricalConfig,
    Testbed,
    empirical_sweep,
    empirical_update_costs,
)

CONFIG = EmpiricalConfig(
    num_objects=512,
    domain_cardinality=208,  # keeps d = Dt·N/V ≈ 24.6 like the paper
    target_cardinality=10,
    signature_bits=500,
    bits_per_element=2,
    seed=11,
    queries_per_point=2,
)


@pytest.fixture(scope="module")
def testbed() -> Testbed:
    return Testbed.build(CONFIG)


class TestTestbedConstruction:
    def test_loads_n_objects(self, testbed):
        assert testbed.database.count("EvalObject") == 512

    def test_three_facilities_registered(self, testbed):
        assert set(testbed.database.indexes_on("EvalObject", "elements")) == {
            "ssf", "bssf", "nix",
        }

    def test_indexes_structurally_sound(self, testbed):
        testbed.database.verify_indexes()


class TestMeasuredVsModel:
    @pytest.mark.parametrize("facility", ["ssf", "bssf", "nix"])
    def test_superset_measured_close_to_model(self, testbed, facility):
        for dq in (1, 2, 3):
            measured = testbed.measure_point(facility, "superset", dq, smart=False)
            predicted = testbed.predicted_point(facility, "superset", dq, smart=False)
            # individual queries fluctuate; demand the same order of magnitude
            assert measured <= max(2.5 * predicted, predicted + 6)
            assert measured >= min(0.3 * predicted, predicted - 6)

    def test_subset_measured_not_above_model(self, testbed):
        """The simulator short-circuits saturated slice scans, so measured
        cost may undercut the model but must not exceed it materially."""
        for facility in ("bssf", "nix"):
            measured = testbed.measure_point(facility, "subset", 100, smart=False)
            predicted = testbed.predicted_point(facility, "subset", 100, smart=False)
            assert measured <= predicted * 1.3 + 6

    def test_smart_superset_cheaper_or_equal(self, testbed):
        naive = testbed.measure_point("bssf", "superset", 8, smart=False)
        smart = testbed.measure_point("bssf", "superset", 8, smart=True)
        assert smart <= naive + 1

    def test_query_results_identical_across_facilities(self, testbed):
        query = testbed.generator.random_query_set(3)
        answers = set()
        for facility in ("ssf", "bssf", "nix"):
            _, rows = testbed.measure_query(facility, "superset", query, False)
            answers.add(rows)
        assert len(answers) == 1


class TestSuccessfulSearch:
    def test_planted_superset_query_hits(self, testbed):
        query = testbed.planted_query("superset", 3, index=5)
        assert len(query) == 3
        _, rows = testbed.measure_query("nix", "superset", query, False)
        assert rows >= 1

    def test_planted_subset_query_hits(self, testbed):
        query = testbed.planted_query("subset", 40, index=2)
        assert len(query) == 40
        _, rows = testbed.measure_query("bssf", "subset", query, False)
        assert rows >= 1

    def test_measure_successful_point(self, testbed):
        pages, rows = testbed.measure_successful_point("nix", "superset", 2)
        assert rows >= 1.0
        assert pages > 0

    def test_unknown_mode_rejected(self, testbed):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            testbed.planted_query("overlap", 3)


class TestSweepResult:
    def test_sweep_produces_pairs(self, testbed):
        result = empirical_sweep(
            CONFIG, "superset", (1, 2), testbed=testbed
        )
        assert "ssf measured" in result.series
        assert "ssf model" in result.series
        assert len(result.x_values) == 2
        assert "Simulator vs model" in result.title

    def test_sweep_renders(self, testbed):
        text = empirical_sweep(CONFIG, "superset", (2,), testbed=testbed).render()
        assert "bssf model" in text


class TestUpdateCosts:
    def test_update_table_magnitudes(self, testbed):
        table = empirical_update_costs(CONFIG, operations=8, testbed=testbed)
        values = {row[0]: row[1:] for row in table.rows}
        ssf_ins, ssf_ins_model, ssf_del, ssf_del_model = values["ssf"]
        # SSF insert touches ~2 pages (model) but read+write counting can
        # make it up to ~4; deletion scans about half the OID file.
        assert ssf_ins <= 2 * ssf_ins_model + 1
        # At this scale the OID file is only ~2 pages, so the model's
        # half-file-scan expectation is dominated by page rounding.
        assert abs(ssf_del - ssf_del_model) <= 3.0

        bssf_ins, bssf_ins_model, _, _ = values["bssf"]
        assert bssf_ins <= 2 * bssf_ins_model + 2  # expected case ~ m_t + 1

        nix_ins, nix_ins_model, nix_del, nix_del_model = values["nix"]
        # per-element tree maintenance: same order as rc·Dt. The simulator
        # counts the descend reads AND the leaf write (plus occasional
        # splits) where the model idealizes one access per level, so allow
        # up to ~2.5× on insert.
        assert nix_ins_model * 0.5 <= nix_ins <= nix_ins_model * 2.5
        assert nix_del_model * 0.5 <= nix_del <= nix_del_model * 2.5

    def test_bssf_insert_far_below_worst_case(self, testbed):
        """The paper's F+1 is worst case; honest inserts touch ~m_t+1."""
        table = empirical_update_costs(CONFIG, operations=4, testbed=testbed)
        values = {row[0]: row[1:] for row in table.rows}
        bssf_ins = values["bssf"][0]
        assert bssf_ins < CONFIG.signature_bits / 4
