"""Tests pinning every analytical figure/table to the paper's claims."""

import pytest

from repro.experiments import figures, tables
from repro.experiments.registry import (
    ANALYTICAL_EXPERIMENTS,
    experiment_ids,
    run_experiment,
)
from repro.errors import ConfigurationError


class TestFigure4:
    @pytest.fixture(scope="class")
    def fig(self):
        return figures.figure4()

    def test_series_present(self, fig):
        assert set(fig.series) == {
            "SSF F=250 m=17", "BSSF F=250 m=17",
            "SSF F=500 m=35", "BSSF F=500 m=35", "NIX",
        }

    def test_ssf_floor_is_signature_scan(self, fig):
        assert min(fig.series["SSF F=250 m=17"]) >= 245
        assert min(fig.series["SSF F=500 m=35"]) >= 493

    def test_nix_beats_signatures_at_m_opt(self, fig):
        """§5.1.1: with m = m_opt, SSF and BSSF cost more than NIX."""
        for dq in range(2, 11):
            nix = fig.value("NIX", dq)
            assert fig.value("SSF F=500 m=35", dq) > nix
            assert fig.value("BSSF F=500 m=35", dq) > nix


class TestFigure5:
    @pytest.fixture(scope="class")
    def fig(self):
        return figures.figure5()

    def test_nix_wins_at_dq1(self, fig):
        for label in ("BSSF m=1", "BSSF m=2", "BSSF m=3", "BSSF m=4"):
            assert fig.value(label, 1) > fig.value("NIX", 1)

    def test_small_m_competitive_beyond_dq1(self, fig):
        """§5.1.2: for Dq ≥ 2, some small-m BSSF is at or below NIX."""
        for dq in range(2, 11):
            best_bssf = min(
                fig.value(f"BSSF m={m}", dq) for m in (1, 2, 3, 4)
            )
            assert best_bssf <= fig.value("NIX", dq)

    def test_paper_worked_example(self, fig):
        """m=2: 6.0 pages at Dq=3, ~4 pages at Dq=2 (§5.1.3 numbers)."""
        assert fig.value("BSSF m=2", 3) == pytest.approx(6.0, abs=0.2)
        assert fig.value("BSSF m=2", 2) == pytest.approx(4.2, abs=0.3)


class TestFigures6and7:
    @pytest.mark.parametrize(
        "fig_func,labels",
        [
            (figures.figure6, ("BSSF F=250 m=2 (smart)", "BSSF F=500 m=2 (smart)")),
            (figures.figure7, ("BSSF F=1000 m=3 (smart)", "BSSF F=2500 m=3 (smart)")),
        ],
    )
    def test_smart_costs_flat_beyond_small_dq(self, fig_func, labels):
        fig = fig_func()
        for label in labels:
            tail = [fig.value(label, dq) for dq in range(3, 11)]
            assert max(tail) - min(tail) < 1e-6

    def test_nix_wins_only_at_dq1(self):
        fig = figures.figure6()
        assert fig.value("NIX (smart)", 1) < fig.value("BSSF F=500 m=2 (smart)", 1)
        for dq in range(2, 11):
            assert (
                fig.value("BSSF F=500 m=2 (smart)", dq)
                <= fig.value("NIX (smart)", dq) + 1e-9
            )


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig(self):
        return figures.figure8()

    def test_bssf_dominates_matching_ssf(self, fig):
        for dq in fig.x_values:
            assert fig.value("BSSF m=2", dq) < fig.value("SSF m=2", dq)
            assert fig.value("BSSF m=35", dq) < fig.value("SSF m=35", dq)

    def test_costs_approach_pu_n_for_large_dq(self, fig):
        ceiling = 32_000
        assert fig.value("BSSF m=2", 1000) > 0.6 * ceiling
        assert fig.value("SSF m=2", 1000) > 0.6 * ceiling

    def test_bssf_m2_minimum_near_dq300(self, fig):
        """§5.2.2 observes the m=2 curve bottoms out around Dq ≈ 300."""
        values = {dq: fig.value("BSSF m=2", dq) for dq in fig.x_values}
        best_dq = min(values, key=values.get)
        assert 150 <= best_dq <= 500

    def test_nix_monotonically_increases(self, fig):
        nix = fig.series["NIX"]
        assert all(a < b for a, b in zip(nix, nix[1:]))


class TestFigures9and10:
    def test_figure9_bssf_constant_and_below_nix(self):
        fig = figures.figure9()
        for label in ("BSSF F=250 m=2 (smart)", "BSSF F=500 m=2 (smart)"):
            head = [fig.value(label, dq) for dq in (10, 20, 30, 50, 70, 100)]
            assert max(head) - min(head) < 1e-6
            for dq in (10, 50, 100, 300):
                assert fig.value(label, dq) < fig.value("NIX", dq)

    def test_figure10_dt100(self):
        fig = figures.figure10()
        label = "BSSF F=2500 m=3 (smart)"
        head = [fig.value(label, dq) for dq in (100, 200, 300, 500)]
        assert max(head) - min(head) < 1e-6
        for dq in (100, 500, 1000):
            assert fig.value(label, dq) < fig.value("NIX", dq)

    def test_figure10_notes_carry_dq_opt(self):
        fig = figures.figure10()
        assert any("Dq_opt" in note for note in fig.notes)


class TestTables:
    def test_table5_exact_paper_values(self):
        t5 = tables.table5()
        assert t5.cell(10, "lp") == 685
        assert t5.cell(10, "nlp") == 5
        assert t5.cell(10, "SC") == 690
        assert t5.cell(100, "lp") == 6500
        assert t5.cell(100, "nlp") == 31
        assert t5.cell(100, "SC") == 6531

    def test_table6_ratios(self):
        t6 = tables.table6()
        ratios = [row[-1] for row in t6.rows]
        assert ratios == [0.45, 0.81, 0.16, 0.39]

    def test_table6_ordering(self):
        t6 = tables.table6()
        assert [row[0] for row in t6.rows] == [10, 10, 100, 100]
        for row in t6.rows:
            _, _, ssf, bssf, nix, _ = row
            assert ssf <= bssf <= nix  # §6: costs higher in this order

    def test_table7_values(self):
        t7 = tables.table7()
        for row in t7.rows:
            dt, F, ssf_i, ssf_d, bssf_i, bssf_d, nix_i, nix_d = row
            assert ssf_i == 2.0
            assert bssf_i == F + 1
            assert ssf_d == bssf_d == 31.5
            assert nix_i == nix_d == 3 * dt

    def test_optimal_m_table(self):
        t = tables.optimal_m_table()
        assert t.cell(10, "m_opt") == 17  # first Dt=10 row: F=250


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        for eid in (
            "figure4", "figure5", "figure6", "figure7", "figure8",
            "figure9", "figure10", "table5", "table6", "table7",
        ):
            assert eid in ANALYTICAL_EXPERIMENTS
            assert eid in experiment_ids()

    def test_run_experiment(self):
        result = run_experiment("table5")
        assert result.experiment_id == "table5"

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("figure99")

    def test_every_analytical_experiment_renders(self):
        for eid, generator in ANALYTICAL_EXPERIMENTS.items():
            text = generator().render()
            assert eid in text
