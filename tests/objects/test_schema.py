"""Tests for class schemas and validation."""

import pytest

from repro.errors import SchemaError
from repro.objects.oid import OID
from repro.objects.schema import Attribute, AttributeKind, ClassSchema


class TestAttribute:
    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Attribute(name="9bad", kind=AttributeKind.SCALAR)
        with pytest.raises(SchemaError):
            Attribute(name="", kind=AttributeKind.SCALAR)

    def test_scalar_accepts_primitives(self):
        attr = Attribute(name="x", kind=AttributeKind.SCALAR)
        for value in ("s", 1, 1.5, True, b"b", None, OID(1, 1)):
            attr.validate_value(value)

    def test_scalar_rejects_containers(self):
        attr = Attribute(name="x", kind=AttributeKind.SCALAR)
        with pytest.raises(SchemaError):
            attr.validate_value([1])

    def test_set_requires_set(self):
        attr = Attribute(name="x", kind=AttributeKind.SET)
        attr.validate_value({1, 2})
        attr.validate_value(frozenset())
        with pytest.raises(SchemaError):
            attr.validate_value([1, 2])

    def test_reference_attribute_requires_oid(self):
        attr = Attribute(name="c", kind=AttributeKind.SET, ref_class="Course")
        attr.validate_value({OID(2, 0)})
        with pytest.raises(SchemaError):
            attr.validate_value({"not an oid"})

    def test_scalar_reference(self):
        attr = Attribute(name="t", kind=AttributeKind.SCALAR, ref_class="Teacher")
        attr.validate_value(OID(3, 0))
        with pytest.raises(SchemaError):
            attr.validate_value("x")

    def test_is_set(self):
        assert Attribute(name="x", kind=AttributeKind.SET).is_set
        assert not Attribute(name="x", kind=AttributeKind.SCALAR).is_set


class TestClassSchema:
    def test_build_shorthand(self):
        schema = ClassSchema.build(
            "Student", name="scalar", hobbies="set", courses="set:Course"
        )
        assert schema.name == "Student"
        assert schema.attribute("hobbies").is_set
        assert schema.attribute("courses").ref_class == "Course"
        assert not schema.attribute("name").is_set

    def test_build_with_attribute_named_name(self):
        # regression: the class-name parameter must not shadow attributes
        schema = ClassSchema.build("T", name="scalar")
        assert schema.has_attribute("name")

    def test_build_bad_spec(self):
        with pytest.raises(SchemaError):
            ClassSchema.build("T", x="sequence")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            ClassSchema(
                "T",
                [
                    Attribute("a", AttributeKind.SCALAR),
                    Attribute("a", AttributeKind.SET),
                ],
            )

    def test_invalid_class_name(self):
        with pytest.raises(SchemaError):
            ClassSchema.build("9Class")

    def test_unknown_attribute_lookup(self):
        schema = ClassSchema.build("T", a="scalar")
        with pytest.raises(SchemaError):
            schema.attribute("b")
        assert not schema.has_attribute("b")

    def test_set_attributes_iterates_only_sets(self):
        schema = ClassSchema.build("T", a="scalar", b="set", c="set")
        assert sorted(attr.name for attr in schema.set_attributes()) == ["b", "c"]


class TestValidateObject:
    @pytest.fixture
    def schema(self):
        return ClassSchema.build("Student", name="scalar", hobbies="set")

    def test_valid(self, schema):
        schema.validate_object({"name": "Jeff", "hobbies": {"Baseball"}})

    def test_missing_attribute(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            schema.validate_object({"name": "Jeff"})

    def test_unknown_attribute(self, schema):
        with pytest.raises(SchemaError, match="unknown"):
            schema.validate_object(
                {"name": "J", "hobbies": set(), "age": 3}
            )

    def test_wrong_value_type(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_object({"name": "J", "hobbies": ["list"]})
