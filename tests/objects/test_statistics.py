"""Tests for workload statistics collection (ANALYZE)."""

import pytest

from repro.errors import ObjectStoreError, SchemaError
from repro.objects.statistics import REANALYZE_DRIFT, analyze

from tests.conftest import HOBBIES, populate_students


class TestAnalyze:
    def test_basic_statistics(self, populated_db):
        stats = analyze(populated_db.objects, "Student", "hobbies")
        assert stats.num_objects == 120
        assert stats.mean_cardinality == pytest.approx(3.0)
        assert stats.target_cardinality == 3
        assert stats.is_fixed_cardinality
        assert stats.min_cardinality == stats.max_cardinality == 3
        assert 3 <= stats.distinct_elements <= len(HOBBIES)

    def test_distribution_collected(self, student_db):
        student_db.insert("Student", {"name": "a", "hobbies": {"x"}})
        student_db.insert("Student", {"name": "b", "hobbies": {"x", "y", "z"}})
        stats = analyze(student_db.objects, "Student", "hobbies")
        assert not stats.is_fixed_cardinality
        assert stats.distribution.probabilities[1] == pytest.approx(0.5)
        assert stats.distribution.probabilities[3] == pytest.approx(0.5)
        assert stats.mean_cardinality == pytest.approx(2.0)

    def test_empty_class_degenerates_safely(self, student_db):
        stats = analyze(student_db.objects, "Student", "hobbies")
        assert stats.num_objects == 1  # upgraded so the model stays defined
        context = stats.cost_context()
        assert context.target_cardinality >= 1

    def test_scalar_attribute_rejected(self, populated_db):
        with pytest.raises(ObjectStoreError):
            analyze(populated_db.objects, "Student", "name")

    def test_unknown_class_rejected(self, populated_db):
        with pytest.raises(SchemaError):
            analyze(populated_db.objects, "Ghost", "hobbies")

    def test_cost_context_conversion(self, populated_db):
        stats = analyze(populated_db.objects, "Student", "hobbies")
        context = stats.cost_context()
        assert context.num_objects == 120
        assert context.domain_cardinality == stats.distinct_elements

    def test_staleness(self, populated_db):
        stats = analyze(populated_db.objects, "Student", "hobbies")
        assert stats.staleness(120) == 0.0
        assert stats.staleness(180) == pytest.approx(0.5)


class TestDatabaseCache:
    def test_analyze_via_facade(self, populated_db):
        stats = populated_db.analyze("Student", "hobbies")
        assert stats.num_objects == 120

    def test_facade_rejects_scalar(self, populated_db):
        with pytest.raises(SchemaError):
            populated_db.analyze("Student", "name")

    def test_cache_reused_until_drift(self, populated_db):
        first = populated_db.statistics.get(
            populated_db.objects, "Student", "hobbies"
        )
        again = populated_db.statistics.get(
            populated_db.objects, "Student", "hobbies"
        )
        assert again is first  # cached object identity

    def test_cache_refreshes_after_drift(self, populated_db):
        first = populated_db.statistics.get(
            populated_db.objects, "Student", "hobbies"
        )
        grow_by = int(120 * REANALYZE_DRIFT) + 5
        for i in range(grow_by):
            populated_db.insert(
                "Student", {"name": f"new{i}", "hobbies": {"Chess"}}
            )
        refreshed = populated_db.statistics.get(
            populated_db.objects, "Student", "hobbies"
        )
        assert refreshed is not first
        assert refreshed.num_objects == 120 + grow_by

    def test_explicit_refresh(self, populated_db):
        first = populated_db.statistics.get(
            populated_db.objects, "Student", "hobbies"
        )
        refreshed = populated_db.analyze("Student", "hobbies", refresh=True)
        assert refreshed is not first

    def test_invalidate(self, populated_db):
        populated_db.analyze("Student", "hobbies")
        populated_db.statistics.invalidate("Student")
        assert populated_db.statistics.peek("Student", "hobbies") is None

    def test_churn_with_explicit_oids_keeps_count(self, populated_db):
        """Regression: delete + insert_with_oid must refresh the live count.

        The explicit-OID insert path (WAL replay, shard loading, LSM
        run-merge order) reuses a previously-deleted OID; the maintained
        per-class live counter must come back to its old value, not drift.
        """
        store = populated_db.objects
        assert store.count("Student") == 120
        victims = [oid for oid, _ in store.scan("Student")][:10]
        for oid in victims:
            values = store.fetch(oid)
            store.delete(oid)
            assert store.count("Student") == 119
            store.insert_with_oid("Student", oid, values)
            assert store.count("Student") == 120

    def test_zero_net_churn_still_refreshes_statistics(self, populated_db):
        """Regression: churn that nets zero live objects must still be
        visible to drift detection.

        Deleting objects and re-inserting them under their original OIDs
        with entirely different element domains leaves ``count()``
        unchanged, so count-based staleness alone would keep the planner
        on stale statistics forever.
        """
        store = populated_db.objects
        first = populated_db.statistics.get(store, "Student", "hobbies")
        churn = int(120 * REANALYZE_DRIFT) + 5
        victims = [oid for oid, _ in store.scan("Student")][:churn]
        for index, oid in enumerate(victims):
            values = store.fetch(oid)
            store.delete(oid)
            values["hobbies"] = {f"NewHobby{index}", f"NewHobby{index + churn}"}
            store.insert_with_oid("Student", oid, values)
        assert store.count("Student") == 120  # net-zero churn
        refreshed = populated_db.statistics.get(store, "Student", "hobbies")
        assert refreshed is not first
        assert refreshed.distinct_elements > first.distinct_elements

    def test_mutation_counter_is_monotonic(self, populated_db):
        store = populated_db.objects
        before = store.mutation_count("Student")
        oid = store.insert("Student", {"name": "m", "hobbies": {"Chess"}})
        store.update(oid, {"name": "m", "hobbies": {"Go"}})
        store.delete(oid)
        assert store.mutation_count("Student") == before + 3

    def test_statistics_without_mutation_counter(self, populated_db):
        """Stores lacking ``mutation_count`` (older snapshots, test
        doubles) fall back to count-only drift."""

        class LegacyStore:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name == "mutation_count":
                    raise AttributeError(name)
                return getattr(self._inner, name)

        legacy = LegacyStore(populated_db.objects)
        stats = analyze(legacy, "Student", "hobbies")
        assert stats.collected_at_mutations == 0
        cache_hit = populated_db.statistics.get(legacy, "Student", "hobbies")
        assert cache_hit.num_objects == 120

    def test_planner_uses_statistics_when_no_context(self, populated_db):
        from repro.query.parser import parse_query
        from repro.query.planner import plan_query

        populated_db.create_nested_index("Student", "hobbies")
        query = parse_query(
            'select Student where hobbies has-subset ("Baseball")'
        )
        plan = plan_query(populated_db, query)  # no context supplied
        assert plan.facility_name == "nix"
        assert populated_db.statistics.peek("Student", "hobbies") is not None
