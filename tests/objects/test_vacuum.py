"""Tests for index vacuum/rebuild."""

import pytest

from repro.errors import AccessFacilityError

from tests.conftest import populate_students


@pytest.fixture
def churned_db(student_db):
    """Database with heavy delete churn: half the objects tombstoned."""
    student_db.create_ssf_index("Student", "hobbies", 64, 2, seed=2)
    student_db.create_bssf_index("Student", "hobbies", 64, 2, seed=2)
    student_db.create_nested_index("Student", "hobbies")
    oids = populate_students(student_db, count=100)
    for oid in oids[::2]:
        student_db.delete(oid)
    return student_db


class TestVacuum:
    def test_results_unchanged_after_vacuum(self, churned_db):
        facility = churned_db.index("Student", "hobbies", "ssf")
        query = frozenset({"Baseball"})
        before = set(facility.search_superset(query).candidates)
        fresh = churned_db.vacuum_index("Student", "hobbies", "ssf")
        after = set(fresh.search_superset(query).candidates)
        assert before == after

    def test_tombstones_reclaimed(self, churned_db):
        stale = churned_db.index("Student", "hobbies", "ssf")
        assert stale.entry_count == 100  # tombstones included
        fresh = churned_db.vacuum_index("Student", "hobbies", "ssf")
        assert fresh.entry_count == 50

    def test_bssf_vacuum_preserves_parameters(self, churned_db):
        old = churned_db.index("Student", "hobbies", "bssf")
        fresh = churned_db.vacuum_index("Student", "hobbies", "bssf")
        assert fresh.signature_bits == old.signature_bits
        assert fresh.scheme == old.scheme
        assert fresh.entry_count == 50
        fresh.verify()

    def test_nix_vacuum(self, churned_db):
        fresh = churned_db.vacuum_index("Student", "hobbies", "nix")
        fresh.verify()
        live = {oid for oid, _ in churned_db.scan("Student")}
        query = frozenset({"Chess"})
        assert set(fresh.search_superset(query).candidates) <= live

    def test_registry_updated(self, churned_db):
        fresh = churned_db.vacuum_index("Student", "hobbies", "bssf")
        assert churned_db.index("Student", "hobbies", "bssf") is fresh

    def test_consistency_after_vacuum(self, churned_db):
        for name in ("ssf", "bssf", "nix"):
            churned_db.vacuum_index("Student", "hobbies", name)
        churned_db.check_consistency(sample=30)

    def test_mutations_after_vacuum(self, churned_db):
        fresh = churned_db.vacuum_index("Student", "hobbies", "ssf")
        oid = churned_db.insert(
            "Student", {"name": "post", "hobbies": {"Baseball"}}
        )
        assert oid in fresh.search_superset(frozenset({"Baseball"})).candidates

    def test_unknown_facility_raises(self, churned_db):
        with pytest.raises(AccessFacilityError):
            churned_db.vacuum_index("Student", "hobbies", "btree")
