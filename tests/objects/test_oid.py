"""Tests for OIDs and the allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ObjectStoreError
from repro.objects.oid import OID, OID_BYTES, OIDAllocator


class TestOID:
    def test_packing_roundtrip(self):
        oid = OID(class_id=7, serial=123456)
        assert OID.from_int(oid.to_int()) == oid
        assert OID.from_bytes(oid.to_bytes()) == oid

    def test_byte_width_matches_paper(self):
        assert OID_BYTES == 8
        assert len(OID(1, 2).to_bytes()) == 8

    def test_ordering_matches_int_order(self):
        a = OID(1, 5)
        b = OID(1, 6)
        c = OID(2, 0)
        assert a < b < c
        assert a.to_int() < b.to_int() < c.to_int()

    def test_range_validation(self):
        with pytest.raises(ObjectStoreError):
            OID(class_id=0x10000, serial=0)
        with pytest.raises(ObjectStoreError):
            OID(class_id=0, serial=1 << 48)
        with pytest.raises(ObjectStoreError):
            OID(class_id=-1, serial=0)

    def test_from_bytes_length_checked(self):
        with pytest.raises(ObjectStoreError):
            OID.from_bytes(b"\x00" * 7)

    def test_from_int_range_checked(self):
        with pytest.raises(ObjectStoreError):
            OID.from_int(-1)
        with pytest.raises(ObjectStoreError):
            OID.from_int(1 << 64)

    def test_hashable(self):
        assert len({OID(1, 1), OID(1, 1), OID(1, 2)}) == 2

    def test_repr(self):
        assert repr(OID(3, 9)) == "OID(3:9)"


class TestAllocator:
    def test_sequential_per_class(self):
        alloc = OIDAllocator()
        assert alloc.allocate(1) == OID(1, 0)
        assert alloc.allocate(1) == OID(1, 1)
        assert alloc.allocate(2) == OID(2, 0)

    def test_high_water_mark(self):
        alloc = OIDAllocator()
        assert alloc.high_water_mark(1) == 0
        alloc.allocate(1)
        alloc.allocate(1)
        assert alloc.high_water_mark(1) == 2
        assert alloc.high_water_mark(9) == 0


@given(class_id=st.integers(0, 0xFFFF), serial=st.integers(0, (1 << 48) - 1))
def test_property_roundtrip(class_id, serial):
    oid = OID(class_id, serial)
    assert OID.from_int(oid.to_int()) == oid
    assert OID.from_bytes(oid.to_bytes()) == oid
