"""Tests for the tagged binary serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObjectStoreError
from repro.objects.oid import OID
from repro.objects.serde import (
    decode_object,
    decode_value,
    encode_object,
    encode_value,
)


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -1, 2**62, -(2**62), 0.0, -3.75, "", "héllo",
         b"", b"\x00\xff", OID(5, 42)],
    )
    def test_roundtrip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_int_overflow_rejected(self):
        with pytest.raises(ObjectStoreError):
            encode_value(2**63)

    def test_bool_is_not_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert encode_value(True) != encode_value(1)


class TestContainers:
    @pytest.mark.parametrize(
        "value",
        [
            [],
            [1, "two", 3.0],
            (1, (2, 3)),
            set(),
            {1, 2, 3},
            frozenset({"a", "b"}),
            [{1, 2}, (3,), ["nested"]],
        ],
    )
    def test_roundtrip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_set_encoding_deterministic(self):
        """Equal sets must encode identically regardless of insertion order."""
        a = set()
        for element in ["z", "a", "m"]:
            a.add(element)
        b = set(["m", "z", "a"])
        assert encode_value(a) == encode_value(b)

    def test_mixed_type_set_roundtrips(self):
        value = {1, "one", 2.5}
        assert decode_value(encode_value(value)) == value

    def test_set_of_oids(self):
        value = frozenset({OID(1, 1), OID(1, 2)})
        assert decode_value(encode_value(value)) == value

    def test_unsupported_type_rejected(self):
        with pytest.raises(ObjectStoreError):
            encode_value(object())

    def test_dict_value_rejected(self):
        with pytest.raises(ObjectStoreError):
            encode_value({"k": 1})


class TestErrors:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(ObjectStoreError):
            decode_value(encode_value(1) + b"\x00")

    def test_truncated_value_rejected(self):
        data = encode_value("hello")
        with pytest.raises(ObjectStoreError):
            decode_value(data[:-1])

    def test_empty_input_rejected(self):
        with pytest.raises(ObjectStoreError):
            decode_value(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ObjectStoreError):
            decode_value(b"\xee")


class TestObjects:
    def test_roundtrip(self):
        obj = {
            "name": "Jeff",
            "hobbies": {"Baseball", "Fishing"},
            "courses": frozenset({OID(2, 1), OID(2, 3)}),
            "year": 3,
        }
        assert decode_object(encode_object(obj)) == obj

    def test_empty_object(self):
        assert decode_object(encode_object({})) == {}

    def test_attribute_order_normalized(self):
        a = encode_object({"a": 1, "b": 2})
        b = encode_object({"b": 2, "a": 1})
        assert a == b

    def test_truncated_header_rejected(self):
        with pytest.raises(ObjectStoreError):
            decode_object(b"\x01")

    def test_version_checked(self):
        data = bytearray(encode_object({"a": 1}))
        data[0] = 99
        with pytest.raises(ObjectStoreError):
            decode_object(bytes(data))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ObjectStoreError):
            decode_object(encode_object({"a": 1}) + b"!")

    def test_long_attribute_name_rejected(self):
        with pytest.raises(ObjectStoreError):
            encode_object({"x" * 300: 1})


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
    st.builds(OID, st.integers(0, 0xFFFF), st.integers(0, 2**48 - 1)),
)
_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.frozensets(
            st.one_of(st.text(max_size=8), st.integers(-50, 50)), max_size=5
        ),
    ),
    max_leaves=12,
)


@settings(max_examples=120)
@given(value=_value)
def test_property_value_roundtrip(value):
    assert decode_value(encode_value(value)) == value


@settings(max_examples=60)
@given(
    obj=st.dictionaries(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=10,
        ),
        _value,
        max_size=5,
    )
)
def test_property_object_roundtrip(obj):
    assert decode_object(encode_object(obj)) == obj
