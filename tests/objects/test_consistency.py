"""Tests for the database consistency checker, including fault injection."""

import pytest

from repro.errors import IndexCorruptionError

from tests.conftest import populate_students


@pytest.fixture
def indexed_db(student_db):
    student_db.create_ssf_index("Student", "hobbies", 64, 2)
    student_db.create_bssf_index("Student", "hobbies", 64, 2)
    student_db.create_nested_index("Student", "hobbies")
    populate_students(student_db, count=40)
    return student_db


class TestHealthyDatabase:
    def test_passes_and_reports_counts(self, indexed_db):
        checked = indexed_db.check_consistency(sample=20)
        assert checked == {"Student.hobbies": 20}

    def test_sample_caps_work(self, indexed_db):
        assert indexed_db.check_consistency(sample=5)["Student.hobbies"] == 5

    def test_passes_after_mutations(self, indexed_db):
        oid = indexed_db.insert("Student", {"name": "x", "hobbies": {"Chess"}})
        indexed_db.update(oid, {"name": "x", "hobbies": {"Golf"}})
        victim = next(iter(indexed_db.scan("Student")))[0]
        indexed_db.delete(victim)
        indexed_db.check_consistency(sample=50)

    def test_no_indexes_is_trivially_consistent(self, populated_db):
        assert populated_db.check_consistency() == {}


class TestFaultInjection:
    def test_detects_missing_nix_posting(self, indexed_db):
        """Remove one posting directly from the B+-tree behind the
        facade's back; the checker must notice the lost object."""
        nix = indexed_db.index("Student", "hobbies", "nix")
        oid, values = next(iter(indexed_db.scan("Student")))
        element = sorted(values["hobbies"])[0]
        from repro.access.nix.keycodec import encode_key

        assert nix.tree.delete(encode_key(element), oid)
        with pytest.raises(IndexCorruptionError, match="lost"):
            indexed_db.check_consistency(sample=50)

    def test_detects_cleared_signature_bit(self, indexed_db):
        """Zero one slice page of the BSSF; some object loses a bit its
        signature needs, and the superset self-search misses it."""
        bssf = indexed_db.index("Student", "hobbies", "bssf")
        # find a slice that actually has bits set
        for position in range(bssf.signature_bits):
            column = bssf.read_slice(position)
            if column.any():
                slice_file = bssf._slice_files[position]
                page = slice_file.read_page(0)
                page.zero()
                slice_file.write_page(0, page)
                break
        with pytest.raises(IndexCorruptionError, match="lost"):
            indexed_db.check_consistency(sample=50)

    def test_detects_structurally_broken_tree(self, indexed_db):
        """Corrupt the NIX root page kind byte; verify() must throw."""
        nix = indexed_db.index("Student", "hobbies", "nix")
        tree_file = nix.tree.file
        page = tree_file.read_page(nix.tree.root_page)
        page.write_bytes(0, b"\x07")  # invalid node kind
        tree_file.write_page(nix.tree.root_page, page)
        with pytest.raises(IndexCorruptionError):
            indexed_db.check_consistency(sample=5)
