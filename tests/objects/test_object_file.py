"""Tests for the slotted-page object file."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObjectStoreError
from repro.objects.object_file import ObjectFile
from repro.storage.paged_file import StorageManager


def make_file(page_size: int = 256) -> ObjectFile:
    manager = StorageManager(page_size=page_size, pool_capacity=0)
    return ObjectFile(manager.create_file("heap"))


class TestInsertRead:
    def test_roundtrip(self):
        heap = make_file()
        address = heap.insert(b"hello world")
        assert heap.read(address) == b"hello world"

    def test_multiple_records_one_page(self):
        heap = make_file()
        addresses = [heap.insert(f"rec{i}".encode()) for i in range(5)]
        assert heap.num_pages == 1
        for i, address in enumerate(addresses):
            assert heap.read(address) == f"rec{i}".encode()

    def test_page_overflow_allocates_new_page(self):
        heap = make_file(page_size=64)
        # 64-byte pages: header 4 + slot 4 leaves < 60 bytes of data room.
        a = heap.insert(b"x" * 40)
        b = heap.insert(b"y" * 40)
        assert a.page_no == 0 and b.page_no == 1

    def test_oversized_record_rejected(self):
        heap = make_file(page_size=64)
        with pytest.raises(ObjectStoreError):
            heap.insert(b"z" * 60)

    def test_max_record_bytes(self):
        heap = make_file(page_size=64)
        heap.insert(b"z" * heap.max_record_bytes)  # exactly fits

    def test_empty_record(self):
        heap = make_file()
        address = heap.insert(b"")
        assert heap.read(address) == b""


class TestDelete:
    def test_deleted_record_unreadable(self):
        heap = make_file()
        address = heap.insert(b"doomed")
        heap.delete(address)
        with pytest.raises(ObjectStoreError):
            heap.read(address)

    def test_double_delete_rejected(self):
        heap = make_file()
        address = heap.insert(b"doomed")
        heap.delete(address)
        with pytest.raises(ObjectStoreError):
            heap.delete(address)

    def test_other_records_survive_delete(self):
        heap = make_file()
        keep = heap.insert(b"keep")
        doomed = heap.insert(b"doomed")
        heap.delete(doomed)
        assert heap.read(keep) == b"keep"

    def test_bad_slot_rejected(self):
        heap = make_file()
        address = heap.insert(b"x")
        bad = type(address)(address.page_no, 7)
        with pytest.raises(ObjectStoreError):
            heap.read(bad)


class TestUpdate:
    def test_in_place_when_fits(self):
        heap = make_file()
        address = heap.insert(b"abcdef")
        new_address = heap.update(address, b"ABC")
        assert new_address == address
        assert heap.read(address) == b"ABC"

    def test_relocates_when_grows(self):
        heap = make_file()
        address = heap.insert(b"ab")
        heap.insert(b"blocker")
        new_address = heap.update(address, b"a much longer record body")
        assert new_address != address
        assert heap.read(new_address) == b"a much longer record body"
        with pytest.raises(ObjectStoreError):
            heap.read(address)

    def test_update_deleted_rejected(self):
        heap = make_file()
        address = heap.insert(b"x")
        heap.delete(address)
        with pytest.raises(ObjectStoreError):
            heap.update(address, b"y")


class TestScan:
    def test_scan_returns_live_records_in_order(self):
        heap = make_file()
        addresses = [heap.insert(f"r{i}".encode()) for i in range(6)]
        heap.delete(addresses[2])
        records = [payload for _, payload in heap.scan()]
        assert records == [b"r0", b"r1", b"r3", b"r4", b"r5"]

    def test_live_record_count(self):
        heap = make_file()
        for i in range(4):
            heap.insert(bytes([i]))
        assert heap.live_record_count() == 4

    def test_scan_empty(self):
        assert list(make_file().scan()) == []


class TestRecordAddress:
    def test_properties_and_repr(self):
        heap = make_file()
        address = heap.insert(b"x")
        assert address.page_no == 0
        assert address.slot == 0
        assert "page=0" in repr(address)


@settings(max_examples=40, deadline=None)
@given(
    payloads=st.lists(st.binary(max_size=60), min_size=1, max_size=40),
)
def test_property_all_live_records_recoverable(payloads):
    heap = make_file(page_size=128)
    addresses = [heap.insert(p) for p in payloads]
    for address, payload in zip(addresses, payloads):
        assert heap.read(address) == payload
    scanned = [payload for _, payload in heap.scan()]
    assert scanned == payloads
