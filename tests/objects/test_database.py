"""Tests for the Database facade and index maintenance."""

import pytest

from repro.errors import AccessFacilityError, SchemaError
from repro.objects.database import Database
from repro.objects.schema import ClassSchema

from tests.conftest import populate_students


class TestIndexManagement:
    def test_create_all_three(self, student_db):
        student_db.create_ssf_index("Student", "hobbies", 64, 2)
        student_db.create_bssf_index("Student", "hobbies", 64, 2)
        student_db.create_nested_index("Student", "hobbies")
        assert set(student_db.indexes_on("Student", "hobbies")) == {
            "ssf", "bssf", "nix",
        }

    def test_index_on_scalar_rejected(self, student_db):
        with pytest.raises(SchemaError):
            student_db.create_nested_index("Student", "name")

    def test_duplicate_facility_rejected(self, student_db):
        student_db.create_ssf_index("Student", "hobbies", 64, 2)
        with pytest.raises(AccessFacilityError):
            student_db.create_ssf_index("Student", "hobbies", 128, 2)

    def test_index_lookup_by_name(self, student_db):
        ssf = student_db.create_ssf_index("Student", "hobbies", 64, 2)
        assert student_db.index("Student", "hobbies", "ssf") is ssf
        assert student_db.index("Student", "hobbies") is ssf

    def test_ambiguous_lookup_requires_name(self, student_db):
        student_db.create_ssf_index("Student", "hobbies", 64, 2)
        student_db.create_nested_index("Student", "hobbies")
        with pytest.raises(AccessFacilityError):
            student_db.index("Student", "hobbies")

    def test_missing_index_raises(self, student_db):
        with pytest.raises(AccessFacilityError):
            student_db.index("Student", "hobbies")
        student_db.create_ssf_index("Student", "hobbies", 64, 2)
        with pytest.raises(AccessFacilityError):
            student_db.index("Student", "hobbies", "nix")

    def test_backfill_on_late_index_creation(self, student_db):
        oids = populate_students(student_db, count=30)
        nix = student_db.create_nested_index("Student", "hobbies")
        values = student_db.get(oids[0])
        element = next(iter(values["hobbies"]))
        assert oids[0] in nix.lookup_element(element)


class TestIndexMaintenance:
    @pytest.fixture
    def indexed_db(self, student_db):
        student_db.create_ssf_index("Student", "hobbies", 64, 2)
        student_db.create_bssf_index("Student", "hobbies", 64, 2)
        student_db.create_nested_index("Student", "hobbies")
        return student_db

    def _search_all(self, db, query):
        results = {}
        for name, facility in db.indexes_on("Student", "hobbies").items():
            candidates = facility.search_superset(frozenset(query)).candidates
            confirmed = [
                oid for oid in candidates
                if frozenset(db.get(oid)["hobbies"]) >= frozenset(query)
            ]
            results[name] = sorted(confirmed)
        return results

    def test_insert_updates_every_index(self, indexed_db):
        oid = indexed_db.insert(
            "Student", {"name": "J", "hobbies": {"Baseball", "Fishing"}}
        )
        for answer in self._search_all(indexed_db, {"Baseball"}).values():
            assert answer == [oid]

    def test_delete_removes_from_every_index(self, indexed_db):
        oid = indexed_db.insert(
            "Student", {"name": "J", "hobbies": {"Baseball"}}
        )
        indexed_db.delete(oid)
        for answer in self._search_all(indexed_db, {"Baseball"}).values():
            assert answer == []

    def test_update_reindexes_changed_set(self, indexed_db):
        oid = indexed_db.insert("Student", {"name": "J", "hobbies": {"Chess"}})
        indexed_db.update(oid, {"name": "J", "hobbies": {"Golf"}})
        assert self._search_all(indexed_db, {"Chess"})["nix"] == []
        assert self._search_all(indexed_db, {"Golf"})["nix"] == [oid]

    def test_update_with_unchanged_set_skips_reindex(self, indexed_db):
        oid = indexed_db.insert("Student", {"name": "J", "hobbies": {"Chess"}})
        before = indexed_db.io_snapshot()
        indexed_db.update(oid, {"name": "Jeff", "hobbies": {"Chess"}})
        delta = indexed_db.io_snapshot() - before
        index_pages = sum(
            counts.logical_total
            for name, counts in delta.per_file.items()
            if not name.startswith("objects:")
        )
        assert index_pages == 0

    def test_verify_indexes(self, indexed_db):
        populate_students(indexed_db, count=40)
        indexed_db.verify_indexes()  # must not raise

    def test_facility_storage_report(self, indexed_db):
        populate_students(indexed_db, count=10)
        report = indexed_db.facility_storage_report()
        assert "Student.hobbies/ssf" in report
        assert report["Student.hobbies/nix"]["leaf"] >= 1


class TestFacadeBasics:
    def test_get_roundtrip(self, student_db):
        oid = student_db.insert("Student", {"name": "x", "hobbies": {"a"}})
        assert student_db.get(oid)["name"] == "x"

    def test_scan_and_count(self, student_db):
        populate_students(student_db, count=7)
        assert student_db.count("Student") == 7
        assert len(list(student_db.scan("Student"))) == 7

    def test_io_snapshot_delta(self, student_db):
        before = student_db.io_snapshot()
        student_db.insert("Student", {"name": "x", "hobbies": set()})
        assert (student_db.io_snapshot() - before).logical_total >= 1

    def test_multiple_classes_independent(self, database):
        database.define_class(ClassSchema.build("A", tags="set"))
        database.define_class(ClassSchema.build("B", tags="set"))
        database.create_nested_index("A", "tags")
        oid_b = database.insert("B", {"tags": {"t"}})
        nix = database.index("A", "tags", "nix")
        assert nix.lookup_element("t") == []  # B's insert must not leak into A's index
        oid_a = database.insert("A", {"tags": {"t"}})
        assert nix.lookup_element("t") == [oid_a]
        assert database.get(oid_b)["tags"] == {"t"}
