"""Tests for the object store (OIDs + per-class object files)."""

import pytest

from repro.errors import ObjectStoreError, SchemaError, UnknownOIDError
from repro.objects.object_store import ObjectStore
from repro.objects.schema import ClassSchema
from repro.storage.paged_file import StorageManager


@pytest.fixture
def store() -> ObjectStore:
    s = ObjectStore(StorageManager(page_size=4096, pool_capacity=0))
    s.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    return s


class TestSchemaManagement:
    def test_duplicate_class_rejected(self, store):
        with pytest.raises(SchemaError):
            store.define_class(ClassSchema.build("Student", name="scalar"))

    def test_unknown_class_rejected(self, store):
        with pytest.raises(SchemaError):
            store.schema("Ghost")
        with pytest.raises(SchemaError):
            store.insert("Ghost", {})

    def test_class_names(self, store):
        store.define_class(ClassSchema.build("Course", name="scalar"))
        assert store.class_names() == ("Course", "Student")


class TestLifecycle:
    def test_insert_fetch(self, store):
        oid = store.insert("Student", {"name": "Jeff", "hobbies": {"Baseball"}})
        assert store.fetch(oid) == {"name": "Jeff", "hobbies": {"Baseball"}}
        assert store.exists(oid)

    def test_distinct_oids(self, store):
        a = store.insert("Student", {"name": "a", "hobbies": set()})
        b = store.insert("Student", {"name": "b", "hobbies": set()})
        assert a != b

    def test_oid_encodes_class(self, store):
        oid = store.insert("Student", {"name": "x", "hobbies": set()})
        assert store.class_name_of(oid) == "Student"

    def test_insert_validates(self, store):
        with pytest.raises(SchemaError):
            store.insert("Student", {"name": "x"})

    def test_update(self, store):
        oid = store.insert("Student", {"name": "x", "hobbies": set()})
        store.update(oid, {"name": "x", "hobbies": {"Chess"}})
        assert store.fetch(oid)["hobbies"] == {"Chess"}

    def test_update_validates(self, store):
        oid = store.insert("Student", {"name": "x", "hobbies": set()})
        with pytest.raises(SchemaError):
            store.update(oid, {"name": "x"})

    def test_update_grows_record(self, store):
        oid = store.insert("Student", {"name": "x", "hobbies": set()})
        big = {f"hobby-{i}" for i in range(40)}
        store.update(oid, {"name": "x", "hobbies": big})
        assert store.fetch(oid)["hobbies"] == big

    def test_delete(self, store):
        oid = store.insert("Student", {"name": "x", "hobbies": set()})
        store.delete(oid)
        assert not store.exists(oid)
        with pytest.raises(UnknownOIDError):
            store.fetch(oid)
        with pytest.raises(UnknownOIDError):
            store.delete(oid)

    def test_unknown_class_id(self, store):
        from repro.objects.oid import OID

        with pytest.raises(UnknownOIDError):
            store.fetch(OID(999, 0))


class TestScansAndStats:
    def test_scan_in_oid_order(self, store):
        oids = [
            store.insert("Student", {"name": f"s{i}", "hobbies": set()})
            for i in range(5)
        ]
        store.delete(oids[1])
        scanned = [oid for oid, _ in store.scan("Student")]
        assert scanned == [oids[0]] + oids[2:]

    def test_count(self, store):
        assert store.count("Student") == 0
        store.insert("Student", {"name": "a", "hobbies": set()})
        assert store.count("Student") == 1

    def test_count_unknown_class(self, store):
        with pytest.raises(SchemaError):
            store.count("Ghost")

    def test_object_pages_grow(self, store):
        assert store.object_pages("Student") == 0
        for i in range(200):
            store.insert(
                "Student",
                {"name": f"s{i}", "hobbies": {f"h{j}" for j in range(10)}},
            )
        assert store.object_pages("Student") >= 2

    def test_fetch_costs_one_page(self, store):
        oid = store.insert("Student", {"name": "j", "hobbies": {"a"}})
        before = store.storage.snapshot()
        store.fetch(oid)
        delta = store.storage.snapshot() - before
        assert delta.logical_total == 1

    def test_set_attribute_value(self, store):
        oid = store.insert("Student", {"name": "j", "hobbies": {"a", "b"}})
        assert store.set_attribute_value(oid, "hobbies") == frozenset({"a", "b"})
        with pytest.raises(ObjectStoreError):
            store.set_attribute_value(oid, "name")
