"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out and "table7" in out


class TestRun:
    def test_run_single(self, capsys):
        assert main(["run", "table5"]) == 0
        out = capsys.readouterr().out
        assert "685" in out and "6531" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "table5", "table6"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out and "table6" in out

    def test_run_analytical_expands(self, capsys):
        assert main(["run", "analytical"]) == 0
        out = capsys.readouterr().out
        for eid in ("figure4", "figure10", "table7"):
            assert eid in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99"]) == 1
        assert "failed" in capsys.readouterr().err

    def test_failure_does_not_stop_others(self, capsys):
        assert main(["run", "figure99", "table5"]) == 1
        captured = capsys.readouterr()
        assert "685" in captured.out


class TestTrace:
    QUERY = 'select Student where hobbies contains "Chess"'

    def test_prints_span_tree(self, capsys):
        assert main(["trace", self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "query.execute" in out
        assert "plan  :" in out and "pages :" in out

    def test_json_payload(self, capsys):
        assert main(["trace", "--json", self.QUERY]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["name"] == "query.execute"
        assert payload["rows"] == payload["trace"]["attributes"]["results"]
        assert "storage.pool.hits" in payload["metrics"]["counters"]

    def test_bad_query_fails(self, capsys):
        assert main(["trace", "select Nope where a contains 1"]) == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_serve_accepts_shard_of(self):
        args = build_parser().parse_args(["serve", "--shard-of", "1/3"])
        assert args.shard_of == "1/3"

    def test_route_parses_policy_flags(self):
        args = build_parser().parse_args(
            [
                "route",
                "a:7731;b:7731",
                "--partial-results",
                "degraded",
                "--deadline-ms",
                "500",
                "--hedge",
                "p99",
            ]
        )
        assert args.shards == "a:7731;b:7731"
        assert args.partial_results == "degraded"
        assert args.deadline_ms == 500.0
        assert args.hedge == "p99"


class TestServeValidation:
    def test_bad_shard_of_rejected(self, capsys):
        assert main(["serve", "--shard-of", "3/3"]) == 2
        assert "--shard-of" in capsys.readouterr().err

    def test_bad_hedge_rejected(self, capsys):
        assert main(["route", "a;b", "--hedge", "soon"]) == 2
        assert "--hedge" in capsys.readouterr().err
