"""Tests for the query planner."""

import pytest

from repro.errors import PlanningError, SchemaError
from repro.query.parser import parse_query
from repro.query.planner import CostContext, plan_query

from tests.conftest import populate_students

CTX = CostContext(num_objects=120, domain_cardinality=12, target_cardinality=3)


def q1(*elements):
    body = ", ".join(f'"{e}"' for e in elements)
    return parse_query(f"select Student where hobbies has-subset ({body})")


def q2(*elements):
    body = ", ".join(f'"{e}"' for e in elements)
    return parse_query(f"select Student where hobbies in-subset ({body})")


class TestScanFallback:
    def test_no_index_means_scan(self, populated_db):
        plan = plan_query(populated_db, q1("Baseball"), context=CTX)
        assert plan.is_scan
        assert len(plan.residual_predicates) == 1
        assert "scan" in plan.describe()

    def test_unknown_class_raises(self, populated_db):
        query = parse_query('select Ghost where h contains "x"')
        with pytest.raises(SchemaError):
            plan_query(populated_db, query, context=CTX)

    def test_prefer_unavailable_facility_raises(self, populated_db):
        populated_db.create_ssf_index("Student", "hobbies", 64, 2)
        with pytest.raises(PlanningError):
            plan_query(
                populated_db, q1("Baseball"), context=CTX, prefer_facility="nix"
            )


class TestFacilitySelection:
    @pytest.fixture
    def full_db(self, populated_db):
        populated_db.create_ssf_index("Student", "hobbies", 64, 2)
        populated_db.create_bssf_index("Student", "hobbies", 64, 2)
        populated_db.create_nested_index("Student", "hobbies")
        return populated_db

    def test_plan_records_alternatives(self, full_db):
        plan = plan_query(full_db, q1("Baseball", "Fishing"), context=CTX)
        assert len(plan.alternatives) == 3
        assert plan.estimated_cost == min(plan.alternatives.values())

    def test_prefer_facility_honored(self, full_db):
        for name in ("ssf", "bssf", "nix"):
            plan = plan_query(
                full_db, q1("Baseball"), context=CTX, prefer_facility=name
            )
            assert plan.facility_name == name

    def test_superset_mode_for_has_subset(self, full_db):
        plan = plan_query(full_db, q1("Baseball"), context=CTX)
        assert plan.search_mode == "superset"

    def test_subset_mode_for_in_subset(self, full_db):
        plan = plan_query(full_db, q2("Baseball", "Tennis"), context=CTX)
        assert plan.search_mode == "subset"

    def test_overlap_mode(self, full_db):
        query = parse_query('select Student where hobbies overlaps ("Golf")')
        plan = plan_query(full_db, query, context=CTX)
        assert plan.search_mode == "overlap"

    def test_residuals_exclude_driver(self, full_db):
        query = parse_query(
            'select Student where hobbies has-subset ("Golf") '
            'and hobbies in-subset ("Golf", "Chess", "Tennis")'
        )
        plan = plan_query(full_db, query, context=CTX)
        assert len(plan.residual_predicates) == 1
        assert plan.driving_predicate not in plan.residual_predicates


class TestSmartParameters:
    @pytest.fixture
    def bssf_db(self, populated_db):
        populated_db.create_bssf_index("Student", "hobbies", 256, 2)
        return populated_db

    def test_smart_superset_limits_elements(self, bssf_db):
        plan = plan_query(
            bssf_db,
            q1("Baseball", "Fishing", "Tennis", "Golf"),
            context=CTX,
            smart=True,
        )
        assert plan.use_elements is not None
        assert plan.use_elements < 4

    def test_naive_mode_disables_strategy(self, bssf_db):
        plan = plan_query(
            bssf_db,
            q1("Baseball", "Fishing", "Tennis", "Golf"),
            context=CTX,
            smart=False,
        )
        assert plan.use_elements is None

    def test_smart_subset_sets_slice_budget(self, bssf_db):
        context = CostContext(
            num_objects=120, domain_cardinality=12, target_cardinality=2
        )
        plan = plan_query(
            bssf_db, q2("Baseball", "Fishing", "Tennis"), context=context
        )
        # with tiny Dq the smart budget caps the zero slices examined
        assert plan.search_mode == "subset"
        if plan.slices_to_examine is not None:
            assert 0 < plan.slices_to_examine < 256

    def test_describe_mentions_parameters(self, bssf_db):
        plan = plan_query(
            bssf_db, q1("Baseball", "Fishing", "Tennis"), context=CTX
        )
        assert "bssf" in plan.describe()


class TestCostContext:
    def test_estimate_from_database(self, populated_db):
        context = CostContext.estimate(populated_db, "Student", "hobbies")
        assert context.num_objects == 120
        assert context.target_cardinality == 3
        assert context.domain_cardinality >= 10

    def test_estimate_empty_class_raises(self, student_db):
        with pytest.raises(PlanningError):
            CostContext.estimate(student_db, "Student", "hobbies")

    def test_parameters_conversion(self):
        params = CTX.parameters(page_bytes=4096)
        assert params.num_objects == 120
        assert params.domain_cardinality == 12

    def test_planner_estimates_context_when_missing(self, populated_db):
        populated_db.create_nested_index("Student", "hobbies")
        plan = plan_query(populated_db, q1("Baseball"))
        assert plan.facility_name == "nix"
