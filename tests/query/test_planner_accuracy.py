"""Statistical accuracy of the planner's cost estimates.

The planner's value rests on its estimates tracking reality. This module
executes a batch of random queries through each facility and asserts the
estimated page cost stays within a modest factor of the measured logical
page accesses — individual queries fluctuate (integer signature weights,
hypergeometric drop counts), so bounds are per-query loose and tight in
aggregate.
"""

import pytest

from repro.objects.database import Database
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import ParsedQuery
from repro.query.planner import CostContext
from repro.query.predicates import has_subset, in_subset
from repro.workloads.generator import (
    EVAL_ATTRIBUTE,
    EVAL_CLASS,
    SetWorkloadGenerator,
    WorkloadSpec,
    load_workload,
)

SPEC = WorkloadSpec(
    num_objects=1024, domain_cardinality=416, target_cardinality=10, seed=6
)
CTX = CostContext(
    num_objects=1024, domain_cardinality=416, target_cardinality=10
)


@pytest.fixture(scope="module")
def testbed():
    db = Database()
    load_workload(db, SPEC)
    db.create_ssf_index(EVAL_CLASS, EVAL_ATTRIBUTE, 250, 2, seed=1)
    db.create_bssf_index(EVAL_CLASS, EVAL_ATTRIBUTE, 250, 2, seed=1)
    db.create_nested_index(EVAL_CLASS, EVAL_ATTRIBUTE)
    generator = SetWorkloadGenerator(
        WorkloadSpec(0, SPEC.domain_cardinality, SPEC.target_cardinality,
                     seed=99)
    )
    return db, QueryExecutor(db), generator


def _run_batch(testbed, facility, mode, dq, count=6):
    _, executor, generator = testbed
    ratios = []
    for _ in range(count):
        query = generator.random_query_set(dq)
        predicate = (
            has_subset(EVAL_ATTRIBUTE, *query)
            if mode == "superset"
            else in_subset(EVAL_ATTRIBUTE, *query)
        )
        parsed = ParsedQuery(class_name=EVAL_CLASS, predicates=(predicate,))
        result = executor.execute(
            parsed, ExecutionOptions(context=CTX, prefer_facility=facility, smart=False)
        )
        estimated = float(
            result.statistics.plan.split("~")[1].split(" pages")[0]
        )
        measured = result.statistics.page_accesses
        ratios.append(measured / max(estimated, 1.0))
    return ratios


class TestEstimateAccuracy:
    @pytest.mark.parametrize("facility", ["ssf", "bssf", "nix"])
    def test_superset_estimates_track_measurements(self, testbed, facility):
        ratios = _run_batch(testbed, facility, "superset", dq=3)
        mean = sum(ratios) / len(ratios)
        assert 0.3 <= mean <= 2.0, ratios

    @pytest.mark.parametrize("facility", ["ssf", "nix"])
    def test_subset_estimates_track_measurements(self, testbed, facility):
        ratios = _run_batch(testbed, facility, "subset", dq=60)
        mean = sum(ratios) / len(ratios)
        assert 0.3 <= mean <= 2.0, ratios

    def test_bssf_subset_measured_never_far_above_estimate(self, testbed):
        """BSSF subset short-circuits, so measured ≤ estimate (plus noise)."""
        ratios = _run_batch(testbed, "bssf", "subset", dq=60)
        assert all(ratio <= 1.5 for ratio in ratios), ratios

    def test_planner_ranks_facilities_correctly_on_average(self, testbed):
        """Across the batch, the plan the planner would choose must be at
        least as cheap (measured) as the costliest alternative."""
        db, executor, generator = testbed
        worse_count = 0
        trials = 5
        for _ in range(trials):
            query = generator.random_query_set(3)
            parsed = ParsedQuery(
                class_name=EVAL_CLASS,
                predicates=(has_subset(EVAL_ATTRIBUTE, *query),),
            )
            chosen = executor.execute(parsed, ExecutionOptions(context=CTX, smart=False))
            costs = {}
            for facility in ("ssf", "bssf", "nix"):
                run = executor.execute(
                    parsed, ExecutionOptions(context=CTX, prefer_facility=facility, smart=False)
                )
                costs[facility] = run.statistics.page_accesses
            if chosen.statistics.page_accesses > max(costs.values()):
                worse_count += 1
        assert worse_count == 0
