"""Property-based tests: describe() output re-parses to the same query."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import SetPredicateKind
from repro.query.parser import ParsedQuery, parse_query
from repro.query.predicates import ScalarPredicate, SetPredicate

_identifier = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True).filter(
    # identifiers that collide with keywords would change parse shape
    lambda s: s.lower() not in {"select", "where", "and", "of"}
)

_literal = st.one_of(
    st.text(max_size=10),
    st.integers(-10_000, 10_000),
)

_set_kind = st.sampled_from(
    [
        SetPredicateKind.HAS_SUBSET,
        SetPredicateKind.IN_SUBSET,
        SetPredicateKind.EQUALS,
        SetPredicateKind.OVERLAPS,
    ]
)


@st.composite
def _set_predicate(draw):
    return SetPredicate(
        attribute=draw(_identifier),
        kind=draw(_set_kind),
        constant=draw(st.frozensets(_literal, min_size=1, max_size=5)),
    )


@st.composite
def _contains_predicate(draw):
    return SetPredicate(
        attribute=draw(_identifier),
        kind=SetPredicateKind.CONTAINS,
        constant=frozenset([draw(_literal)]),
    )


@st.composite
def _scalar_predicate(draw):
    return ScalarPredicate(attribute=draw(_identifier), value=draw(_literal))


_predicate = st.one_of(_set_predicate(), _contains_predicate(), _scalar_predicate())


@settings(max_examples=120)
@given(
    class_name=_identifier,
    predicates=st.lists(_predicate, min_size=1, max_size=4),
)
def test_property_describe_roundtrips(class_name, predicates):
    query = ParsedQuery(class_name=class_name, predicates=tuple(predicates))
    assert parse_query(query.describe()) == query


@settings(max_examples=60)
@given(
    outer=_identifier,
    inner=_identifier,
    attribute=_identifier,
    inner_attr=_identifier,
    value=_literal,
)
def test_property_subquery_describe_roundtrips(
    outer, inner, attribute, inner_attr, value
):
    from repro.query.predicates import SubqueryPredicate

    inner_query = ParsedQuery(
        class_name=inner,
        predicates=(ScalarPredicate(attribute=inner_attr, value=value),),
    )
    query = ParsedQuery(
        class_name=outer,
        predicates=(
            SubqueryPredicate(
                attribute=attribute,
                kind=SetPredicateKind.HAS_SUBSET,
                subquery=inner_query,
            ),
        ),
    )
    assert parse_query(query.describe()) == query
