"""Tests for the SQL-like query language parser."""

import pytest

from repro.core.signature import SetPredicateKind
from repro.errors import ParseError
from repro.query.parser import parse_query, tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize('select Student where hobbies has-subset ("a", 1)')
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "ident", "ident", "ident", "ident", "ident",
            "lparen", "string", "comma", "int", "rparen",
        ]

    def test_string_with_escape(self):
        tokens = tokenize('"say \\"hi\\""')
        assert tokens[0].kind == "string"

    def test_floats_and_negatives(self):
        tokens = tokenize("-1.5 -2 3")
        assert [t.kind for t in tokens] == ["float", "int", "int"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("select @")

    def test_positions_recorded(self):
        tokens = tokenize("select  Student")
        assert tokens[1].position == 8


class TestPaperQueries:
    def test_query_q1(self):
        query = parse_query(
            'select Student where hobbies has-subset ("Baseball", "Fishing")'
        )
        assert query.class_name == "Student"
        (pred,) = query.predicates
        assert pred.kind is SetPredicateKind.HAS_SUBSET
        assert pred.attribute == "hobbies"
        assert pred.constant == frozenset({"Baseball", "Fishing"})

    def test_query_q2(self):
        query = parse_query(
            'select Student where hobbies in-subset '
            '("Baseball", "Fishing", "Tennis")'
        )
        (pred,) = query.predicates
        assert pred.kind is SetPredicateKind.IN_SUBSET
        assert len(pred.constant) == 3

    def test_describe_roundtrips_semantics(self):
        query = parse_query('select S where h has-subset ("a")')
        again = parse_query(query.describe())
        assert again == query


class TestOperators:
    @pytest.mark.parametrize(
        "op,kind",
        [
            ("has-subset", SetPredicateKind.HAS_SUBSET),
            ("in-subset", SetPredicateKind.IN_SUBSET),
            ("contains", SetPredicateKind.CONTAINS),
            ("set-equals", SetPredicateKind.EQUALS),
            ("overlaps", SetPredicateKind.OVERLAPS),
        ],
    )
    def test_all_operators(self, op, kind):
        query = parse_query(f'select S where attr {op} ("x")')
        assert query.predicates[0].kind is kind

    def test_contains_bare_literal(self):
        query = parse_query('select S where h contains "a"')
        assert query.predicates[0].constant == frozenset({"a"})

    def test_contains_multiple_rejected(self):
        with pytest.raises(ParseError):
            parse_query('select S where h contains ("a", "b")')

    def test_unknown_operator(self):
        with pytest.raises(ParseError, match="unknown operator"):
            parse_query('select S where h superset-of ("a")')

    def test_case_insensitive_keywords(self):
        query = parse_query('SELECT S WHERE h HAS-SUBSET ("a")')
        assert query.class_name == "S"


class TestLiterals:
    def test_int_literals(self):
        query = parse_query("select S where h has-subset (1, -2, 30)")
        assert query.predicates[0].constant == frozenset({1, -2, 30})

    def test_float_literals(self):
        query = parse_query("select S where h has-subset (1.5, -0.25)")
        assert query.predicates[0].constant == frozenset({1.5, -0.25})

    def test_mixed_literals(self):
        query = parse_query('select S where h has-subset ("a", 1)')
        assert query.predicates[0].constant == frozenset({"a", 1})

    def test_escaped_quotes_decoded(self):
        query = parse_query('select S where h contains "say \\"hi\\""')
        assert query.predicates[0].constant == frozenset({'say "hi"'})


class TestConjunction:
    def test_and_combines_predicates(self):
        query = parse_query(
            'select S where a has-subset ("x") and b in-subset ("y", "z")'
        )
        assert len(query.predicates) == 2
        assert query.predicates[1].attribute == "b"

    def test_three_way_and(self):
        query = parse_query(
            'select S where a contains "x" and b contains "y" and c contains "z"'
        )
        assert len(query.predicates) == 3


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(ParseError):
            parse_query("")

    def test_missing_select(self):
        with pytest.raises(ParseError):
            parse_query('find S where h contains "a"')

    def test_missing_where(self):
        with pytest.raises(ParseError):
            parse_query("select S")

    def test_unterminated_set(self):
        with pytest.raises(ParseError):
            parse_query('select S where h has-subset ("a"')

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query('select S where h contains "a" extra')

    def test_empty_set_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_query("select S where h has-subset ()")
