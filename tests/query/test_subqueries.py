"""Tests for scalar predicates and nested subqueries (the §1 scheme)."""

import pytest

from repro.core.signature import SetPredicateKind
from repro.errors import ParseError, PlanningError, QueryError
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import parse_query
from repro.query.planner import CostContext, plan_query
from repro.query.predicates import ScalarPredicate, SubqueryPredicate
from repro.workloads.university import build_university


@pytest.fixture(scope="module")
def campus():
    built = build_university(num_students=120, seed=13)
    built.database.create_nested_index("Student", "courses")
    built.database.create_bssf_index("Student", "courses", 64, 2)
    return built


@pytest.fixture(scope="module")
def executor(campus):
    return QueryExecutor(campus.database)


CTX = CostContext(num_objects=120, domain_cardinality=10, target_cardinality=4)

TWO_STEP = (
    'select Student where courses has-subset '
    '(select Course where category = "DB")'
)


class TestScalarPredicateParsing:
    def test_equality_parses(self):
        query = parse_query('select Course where category = "DB"')
        (pred,) = query.predicates
        assert isinstance(pred, ScalarPredicate)
        assert pred.attribute == "category"
        assert pred.value == "DB"

    def test_int_equality(self):
        query = parse_query("select T where year = 3")
        assert query.predicates[0].value == 3

    def test_describe_roundtrips(self):
        query = parse_query('select Course where category = "DB"')
        assert parse_query(query.describe()) == query

    def test_mixed_with_set_predicate(self):
        query = parse_query(
            'select Student where hobbies contains "Chess" and name = "Jeff"'
        )
        assert len(query.predicates) == 2
        assert isinstance(query.predicates[1], ScalarPredicate)


class TestScalarPredicateSemantics:
    def test_matches(self):
        pred = ScalarPredicate("category", "DB")
        assert pred.matches({"category": "DB"})
        assert not pred.matches({"category": "OS"})

    def test_set_attribute_rejected(self):
        with pytest.raises(QueryError):
            ScalarPredicate("hobbies", "x").matches({"hobbies": {"x"}})

    def test_missing_attribute_rejected(self):
        with pytest.raises(QueryError):
            ScalarPredicate("ghost", 1).matches({})

    def test_empty_attribute_rejected(self):
        with pytest.raises(QueryError):
            ScalarPredicate("", 1)


class TestSubqueryParsing:
    def test_two_step_query_parses(self):
        query = parse_query(TWO_STEP)
        (pred,) = query.predicates
        assert isinstance(pred, SubqueryPredicate)
        assert pred.kind is SetPredicateKind.HAS_SUBSET
        assert pred.subquery.class_name == "Course"
        assert query.has_unresolved_subqueries()

    def test_describe_roundtrips(self):
        query = parse_query(TWO_STEP)
        assert parse_query(query.describe()) == query

    def test_nested_subquery_with_conjunction(self):
        query = parse_query(
            'select Student where courses in-subset '
            '(select Course where category = "DB" and name = "DB Theory") '
            'and hobbies contains "Chess"'
        )
        sub = query.predicates[0]
        assert isinstance(sub, SubqueryPredicate)
        assert len(sub.subquery.predicates) == 2
        assert len(query.predicates) == 2

    def test_unterminated_subquery(self):
        with pytest.raises(ParseError):
            parse_query(
                'select S where c has-subset (select Course where x = 1'
            )

    def test_doubly_nested(self):
        query = parse_query(
            "select A where s has-subset "
            "(select B where t has-subset (select C where u = 1))"
        )
        inner = query.predicates[0].subquery.predicates[0]
        assert isinstance(inner, SubqueryPredicate)


class TestPlannerInteraction:
    def test_planner_rejects_unresolved(self, campus):
        query = parse_query(TWO_STEP)
        with pytest.raises(PlanningError, match="unresolved"):
            plan_query(campus.database, query, context=CTX)

    def test_scalar_only_query_scans(self, campus):
        query = parse_query('select Course where category = "DB"')
        plan = plan_query(campus.database, query)
        assert plan.is_scan


class TestExecution:
    def test_two_step_scheme_matches_manual(self, campus, executor):
        db = campus.database
        result = executor.execute_text(TWO_STEP, ExecutionOptions(context=CTX))
        oid_list = frozenset(campus.course_oids("DB"))
        expected = sorted(
            oid for oid, values in db.scan("Student")
            if oid_list <= frozenset(values["courses"])
        )
        assert sorted(result.oids()) == expected
        assert "nix" in result.statistics.plan or "bssf" in result.statistics.plan

    def test_only_db_lectures_via_subquery(self, campus, executor):
        db = campus.database
        text = (
            'select Student where courses in-subset '
            '(select Course where category = "DB")'
        )
        result = executor.execute_text(text, ExecutionOptions(context=CTX))
        oid_list = frozenset(campus.course_oids("DB"))
        expected = sorted(
            oid for oid, values in db.scan("Student")
            if frozenset(values["courses"]) <= oid_list
        )
        assert sorted(result.oids()) == expected

    def test_scalar_query_executes_by_scan(self, executor):
        result = executor.execute_text('select Course where category = "DB"')
        assert len(result) == 3
        assert all(v["category"] == "DB" for _, v in result.rows)

    def test_subquery_respects_facility_preference(self, campus, executor):
        result = executor.execute_text(
            TWO_STEP, ExecutionOptions(context=CTX, prefer_facility="bssf")
        )
        assert "bssf" in result.statistics.plan

    def test_empty_subquery_result(self, executor):
        text = (
            'select Student where courses has-subset '
            '(select Course where category = "Nonexistent")'
        )
        result = executor.execute_text(text, ExecutionOptions(context=CTX))
        # every student's course set contains the empty set
        assert len(result) == 120
