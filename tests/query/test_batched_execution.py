"""Batched execution equivalence: ``execute_many`` vs one-at-a-time.

The batch fast path (facility ``prepare_batch`` + ``match_many`` kernels +
raw-counter accounting) must be *observably invisible*: identical rows in
identical order, identical plans and statistics, and bit-identical
per-file page accounting — for every facility, every search mode, every
batch size, and through every fallback (scans, subqueries, degraded
facilities). Fixed-seed golden checks pin that contract; a hypothesis
sweep searches for query mixes that break it.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions

from tests.conftest import HOBBIES, populate_students

OPS = ["has-subset", "in-subset", "overlaps", "contains"]


def build_db(seed=5):
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_ssf_index("Student", "hobbies", 64, 2)
    db.create_bssf_index("Student", "hobbies", 64, 2)
    db.create_nested_index("Student", "hobbies")
    populate_students(db, seed=seed)
    return db


def golden_queries(count=30, seed=9):
    rng = random.Random(seed)
    texts = []
    for _ in range(count):
        op = rng.choice(OPS)
        if op == "contains":
            texts.append(
                f'select Student where hobbies contains "{rng.choice(HOBBIES)}"'
            )
            continue
        elements = rng.sample(HOBBIES, rng.choice([1, 2, 3]))
        literals = ", ".join(f'"{e}"' for e in elements)
        texts.append(f"select Student where hobbies {op} ({literals})")
    return texts


def page_profile(stats):
    """Nonzero per-file counters — the comparable core of an I/O snapshot.

    The sequential path diffs dense snapshots (zero-count files survive as
    explicit zeros) while the batch path diffs raw counters (only touched
    files appear), so equality is defined over nonzero entries.
    """
    assert stats.io is not None
    return sorted(
        (name, counts.logical_reads, counts.logical_writes,
         counts.physical_reads, counts.physical_writes)
        for name, counts in stats.io.files()
        if counts.logical_total or counts.physical_total
    )


def assert_equivalent(sequential, batched):
    assert len(sequential) == len(batched)
    for left, right in zip(sequential, batched):
        assert left.rows == right.rows
        a, b = left.statistics, right.statistics
        assert a.plan == b.plan
        assert a.candidates == b.candidates
        assert a.false_drops == b.false_drops
        assert a.results == b.results
        assert a.detail.get("exact_search") == b.detail.get("exact_search")
        assert ("degraded" in a.detail) == ("degraded" in b.detail)
        assert page_profile(a) == page_profile(b)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("prefer", ["ssf", "bssf", "nix", None])
    @pytest.mark.parametrize("batch_size", [2, 8, 64])
    def test_rows_stats_and_pages_identical(self, prefer, batch_size):
        texts = golden_queries()
        db_seq, db_bat = build_db(), build_db()
        opts = ExecutionOptions(prefer_facility=prefer)
        sequential = [
            QueryExecutor(db_seq).execute_text(text, opts) for text in texts
        ]
        batched = QueryExecutor(db_bat).execute_many(
            texts, opts.evolve(batch_size=batch_size)
        )
        assert_equivalent(sequential, batched)
        # Merged shared totals — not just per-query deltas — must agree.
        assert db_seq.io_snapshot().total() == db_bat.io_snapshot().total()

    def test_batch_size_one_is_plain_sequential(self):
        texts = golden_queries(count=6)
        db = build_db()
        executor = QueryExecutor(db)
        sequential = [executor.execute_text(t) for t in texts]
        unbatched = executor.execute_many(
            texts, ExecutionOptions(batch_size=1)
        )
        assert_equivalent(sequential, unbatched)

    def test_scan_queries_fall_out_of_batches(self):
        # Scalar-only predicates plan as scans; interleaved with index
        # queries they must break batches without perturbing anything.
        texts = [
            'select Student where hobbies contains "Chess"',
            'select Student where name = "s001"',
            'select Student where hobbies overlaps ("Golf", "Tennis")',
            'select Student where name = "s002"',
        ]
        db_seq, db_bat = build_db(), build_db()
        sequential = [
            QueryExecutor(db_seq).execute_text(text) for text in texts
        ]
        batched = QueryExecutor(db_bat).execute_many(
            texts, ExecutionOptions(batch_size=4)
        )
        assert_equivalent(sequential, batched)

    def test_subqueries_fall_out_of_batches(self):
        def build_courses():
            db = Database(page_size=4096, pool_capacity=0)
            db.define_class(
                ClassSchema.build("Course", name="scalar", category="scalar")
            )
            db.define_class(
                ClassSchema.build("Student", name="scalar", courses="set:Course")
            )
            db.create_bssf_index("Student", "courses", 64, 2)
            course_oids = [
                db.insert(
                    "Course",
                    {"name": f"c{i}", "category": "DB" if i % 2 else "AI"},
                )
                for i in range(6)
            ]
            rng = random.Random(3)
            for i in range(40):
                db.insert(
                    "Student",
                    {
                        "name": f"s{i}",
                        "courses": set(rng.sample(course_oids, 2)),
                    },
                )
            return db

        texts = [
            "select Student where courses has-subset "
            '(select Course where category = "DB")',
            'select Student where courses overlaps '
            '(select Course where category = "AI")',
        ]
        db_seq, db_bat = build_courses(), build_courses()
        sequential = [
            QueryExecutor(db_seq).execute_text(text) for text in texts
        ]
        batched = QueryExecutor(db_bat).execute_many(
            texts, ExecutionOptions(batch_size=4)
        )
        assert_equivalent(sequential, batched)


class TestDegradedFallback:
    def test_degraded_facility_batches_identically(self):
        texts = golden_queries(count=10)
        db_seq, db_bat = build_db(), build_db()
        for db in (db_seq, db_bat):
            db.mark_degraded("Student", "hobbies", "bssf", "injected for test")
        opts = ExecutionOptions(prefer_facility="bssf")
        sequential = [
            QueryExecutor(db_seq).execute_text(text, opts) for text in texts
        ]
        batched = QueryExecutor(db_bat).execute_many(
            texts, opts.evolve(batch_size=8)
        )
        assert_equivalent(sequential, batched)
        for result in batched:
            assert result.statistics.plan.endswith(
                "-> degraded-fallback scan(Student)"
            )
        assert db_seq.io_snapshot().total() == db_bat.io_snapshot().total()

    def test_healthy_facilities_still_batch_around_degraded_one(self):
        texts = golden_queries(count=10)
        db_seq, db_bat = build_db(), build_db()
        for db in (db_seq, db_bat):
            db.mark_degraded("Student", "hobbies", "ssf", "injected for test")
        sequential = [
            QueryExecutor(db_seq).execute_text(text) for text in texts
        ]
        batched = QueryExecutor(db_bat).execute_many(
            texts, ExecutionOptions(batch_size=8)
        )
        assert_equivalent(sequential, batched)


@st.composite
def query_text(draw):
    op = draw(st.sampled_from(OPS))
    if op == "contains":
        hobby = draw(st.sampled_from(HOBBIES))
        return f'select Student where hobbies contains "{hobby}"'
    elements = draw(
        st.lists(st.sampled_from(HOBBIES), min_size=1, max_size=5, unique=True)
    )
    literals = ", ".join(f'"{e}"' for e in elements)
    return f"select Student where hobbies {op} ({literals})"


# One database pair for the whole sweep: queries are read-only, so reuse
# keeps the property test fast enough to run as tier-1.
_DB = build_db()
_EXECUTOR = QueryExecutor(_DB)


class TestBatchedProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        texts=st.lists(query_text(), min_size=1, max_size=12),
        batch_size=st.integers(2, 6),
    )
    def test_any_query_mix_is_equivalent(self, texts, batch_size):
        sequential = [_EXECUTOR.execute_text(text) for text in texts]
        batched = _EXECUTOR.execute_many(
            texts, ExecutionOptions(batch_size=batch_size)
        )
        assert_equivalent(sequential, batched)
