"""ExecutionOptions and the legacy-keyword deprecation shim."""

import inspect

import pytest

from repro.query import executor as executor_module
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions, coerce_options
from repro.query.planner import CostContext
from tests.conftest import HOBBIES, populate_students

CTX = CostContext(
    num_objects=120, domain_cardinality=len(HOBBIES), target_cardinality=3
)
QUERY = 'select Student where hobbies contains "Baseball"'


@pytest.fixture
def executor(student_db):
    populate_students(student_db)
    student_db.create_bssf_index(
        "Student", "hobbies", signature_bits=128, bits_per_element=2
    )
    return QueryExecutor(student_db)


class TestExecutionOptions:
    def test_defaults(self):
        opts = ExecutionOptions()
        assert opts.context is None
        assert opts.prefer_facility is None
        assert opts.smart is True
        assert opts.trace is False
        assert opts.tracer is None
        assert not opts.tracing_requested

    def test_evolve_returns_modified_copy(self):
        opts = ExecutionOptions(smart=False)
        traced = opts.evolve(trace=True)
        assert traced.trace and not opts.trace
        assert traced.smart is False

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionOptions().smart = False

    def test_tracer_implies_tracing_requested(self):
        from repro.obs.tracer import Tracer

        assert ExecutionOptions(tracer=Tracer()).tracing_requested


class TestCoerceOptions:
    def test_no_arguments_yields_defaults(self):
        assert coerce_options(None, {}) == ExecutionOptions()

    def test_options_object_passes_through(self):
        opts = ExecutionOptions(smart=False)
        assert coerce_options(opts, {}) is opts

    def test_legacy_keywords_warn_and_convert(self):
        with pytest.warns(DeprecationWarning, match="ExecutionOptions"):
            opts = coerce_options(None, {"context": CTX, "smart": False})
        assert opts.context is CTX
        assert opts.smart is False

    def test_mixing_styles_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            coerce_options(ExecutionOptions(), {"smart": False})

    def test_unknown_keyword_is_an_error(self):
        with pytest.raises(TypeError, match="unknown execution keyword"):
            coerce_options(None, {"facility": "bssf"})


class TestLegacyShimOnExecutor:
    def test_old_keywords_still_work(self, executor):
        new_style = executor.execute_text(
            QUERY, ExecutionOptions(context=CTX, prefer_facility="bssf")
        )
        with pytest.warns(DeprecationWarning):
            old_style = executor.execute_text(
                QUERY, context=CTX, prefer_facility="bssf"
            )
        assert old_style.oids() == new_style.oids()
        assert old_style.statistics.plan == new_style.statistics.plan

    def test_explain_accepts_legacy_keywords(self, executor):
        with pytest.warns(DeprecationWarning):
            text = executor.explain(QUERY, context=CTX)
        assert "plan  :" in text

    def test_legacy_trace_keyword(self, executor):
        with pytest.warns(DeprecationWarning):
            result = executor.execute_text(QUERY, context=CTX, trace=True)
        assert result.trace is not None


class TestElapsedClock:
    def test_executor_uses_perf_counter_not_wall_clock(self):
        """Regression guard: elapsed_seconds must come from the monotonic
        high-resolution clock, never ``time.time()`` (coarse, and steps
        backwards on wall-clock adjustment)."""
        source = inspect.getsource(executor_module)
        assert "time.perf_counter()" in source
        assert "time.time()" not in source

    def test_elapsed_is_recorded(self, executor):
        result = executor.execute_text(QUERY, ExecutionOptions(context=CTX))
        assert result.statistics.elapsed_seconds >= 0.0
