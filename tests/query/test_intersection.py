"""Tests for index-intersection plans on conjunctive queries."""

import random

import pytest

from repro.objects.database import Database
from repro.objects.schema import ClassSchema
from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import parse_query
from repro.query.planner import CostContext, plan_query

COLORS = ["red", "green", "blue", "cyan", "teal", "plum", "gold", "gray"]
SHAPES = ["cube", "ball", "cone", "ring", "disc", "star", "tube", "wedge"]


@pytest.fixture(scope="module")
def two_attribute_db():
    db = Database()
    db.define_class(ClassSchema.build("Item", colors="set", shapes="set"))
    rng = random.Random(17)
    for _ in range(400):
        db.insert(
            "Item",
            {
                "colors": set(rng.sample(COLORS, 3)),
                "shapes": set(rng.sample(SHAPES, 3)),
            },
        )
    db.create_nested_index("Item", "colors")
    db.create_nested_index("Item", "shapes")
    db.create_bssf_index("Item", "colors", 64, 2)
    return db


CTX = CostContext(num_objects=400, domain_cardinality=8, target_cardinality=3)

CONJUNCTION = (
    'select Item where colors has-subset ("red") '
    'and shapes has-subset ("cube")'
)


def brute_force(db, text):
    query = parse_query(text)
    return sorted(
        oid for oid, values in db.scan(query.class_name)
        if all(p.matches(values) for p in query.predicates)
    )


class TestPlanning:
    def test_intersection_chosen_for_weak_single_filters(self, two_attribute_db):
        plan = plan_query(two_attribute_db, parse_query(CONJUNCTION), context=CTX)
        assert plan.intersect_with is not None
        assert plan.driving_predicate.attribute != (
            plan.intersect_with.predicate.attribute
        )
        assert "∩" in plan.describe()
        assert "intersection" in plan.alternatives

    def test_intersection_estimate_below_single_plans(self, two_attribute_db):
        plan = plan_query(two_attribute_db, parse_query(CONJUNCTION), context=CTX)
        singles = [
            cost for name, cost in plan.alternatives.items()
            if name != "intersection"
        ]
        assert plan.estimated_cost < min(singles)

    def test_single_predicate_never_intersects(self, two_attribute_db):
        plan = plan_query(
            two_attribute_db,
            parse_query('select Item where colors has-subset ("red")'),
            context=CTX,
        )
        assert plan.intersect_with is None

    def test_prefer_facility_disables_intersection(self, two_attribute_db):
        plan = plan_query(
            two_attribute_db,
            parse_query(CONJUNCTION),
            context=CTX,
            prefer_facility="nix",
        )
        assert plan.intersect_with is None

    def test_same_attribute_conjunction_can_intersect(self, two_attribute_db):
        # two predicates on the same attribute are distinct positions too
        text = (
            'select Item where colors has-subset ("red") '
            'and colors has-subset ("blue")'
        )
        plan = plan_query(two_attribute_db, parse_query(text), context=CTX)
        # whichever shape wins, execution must be correct (checked below);
        # here we only require a valid plan object
        assert plan.driving_predicate is not None


class TestExecution:
    @pytest.mark.parametrize(
        "text",
        [
            CONJUNCTION,
            'select Item where colors has-subset ("red", "green") '
            'and shapes has-subset ("ball")',
            'select Item where colors has-subset ("red") '
            'and shapes in-subset '
            '("cube", "ball", "cone", "ring", "disc")',
            'select Item where colors has-subset ("red") '
            'and colors has-subset ("blue")',
        ],
    )
    def test_results_match_brute_force(self, two_attribute_db, text):
        executor = QueryExecutor(two_attribute_db)
        result = executor.execute_text(text, ExecutionOptions(context=CTX))
        assert sorted(result.oids()) == brute_force(two_attribute_db, text)

    def test_intersection_shrinks_candidates(self, two_attribute_db):
        executor = QueryExecutor(two_attribute_db)
        combined = executor.execute_text(CONJUNCTION, ExecutionOptions(context=CTX))
        single = executor.execute_text(
            'select Item where colors has-subset ("red")', ExecutionOptions(context=CTX,
            prefer_facility="nix"),
        )
        assert combined.statistics.candidates < single.statistics.candidates
        assert "intersected_with" in combined.statistics.detail

    def test_intersection_costs_fewer_pages(self, two_attribute_db):
        executor = QueryExecutor(two_attribute_db)
        intersected = executor.execute_text(CONJUNCTION, ExecutionOptions(context=CTX))
        forced_single = executor.execute_text(
            CONJUNCTION, ExecutionOptions(context=CTX, prefer_facility="nix")
        )
        assert (
            intersected.statistics.page_accesses
            <= forced_single.statistics.page_accesses
        )
