"""Tests for set predicates."""

import pytest

from repro.core.signature import SetPredicateKind
from repro.errors import QueryError
from repro.query.predicates import (
    SetPredicate,
    contains,
    has_subset,
    in_subset,
    overlaps,
    set_equals,
)


class TestConstruction:
    def test_constant_coerced_to_frozenset(self):
        pred = SetPredicate("hobbies", SetPredicateKind.HAS_SUBSET, {"a"})
        assert isinstance(pred.constant, frozenset)

    def test_empty_attribute_rejected(self):
        with pytest.raises(QueryError):
            SetPredicate("", SetPredicateKind.HAS_SUBSET, frozenset())

    def test_query_cardinality(self):
        assert has_subset("h", "a", "b").query_cardinality == 2

    def test_describe(self):
        text = has_subset("hobbies", "Baseball").describe()
        assert "hobbies" in text and "has-subset" in text and "Baseball" in text


class TestHelpers:
    def test_has_subset(self):
        pred = has_subset("h", "a", "b")
        assert pred.kind is SetPredicateKind.HAS_SUBSET
        assert pred.constant == frozenset({"a", "b"})

    def test_in_subset(self):
        assert in_subset("h", "a").kind is SetPredicateKind.IN_SUBSET

    def test_contains(self):
        pred = contains("h", "a")
        assert pred.kind is SetPredicateKind.CONTAINS
        assert pred.constant == frozenset({"a"})

    def test_set_equals(self):
        assert set_equals("h", 1, 2).kind is SetPredicateKind.EQUALS

    def test_overlaps(self):
        assert overlaps("h", 1).kind is SetPredicateKind.OVERLAPS


class TestMatching:
    def _obj(self, *hobbies):
        return {"name": "x", "hobbies": set(hobbies)}

    def test_has_subset_semantics(self):
        pred = has_subset("hobbies", "a", "b")
        assert pred.matches(self._obj("a", "b", "c"))
        assert pred.matches(self._obj("a", "b"))
        assert not pred.matches(self._obj("a"))

    def test_in_subset_semantics(self):
        pred = in_subset("hobbies", "a", "b", "c")
        assert pred.matches(self._obj("a"))
        assert pred.matches(self._obj())  # empty set is a subset
        assert not pred.matches(self._obj("a", "z"))

    def test_contains_semantics(self):
        pred = contains("hobbies", "a")
        assert pred.matches(self._obj("a", "b"))
        assert not pred.matches(self._obj("b"))

    def test_equals_semantics(self):
        pred = set_equals("hobbies", "a", "b")
        assert pred.matches(self._obj("b", "a"))
        assert not pred.matches(self._obj("a", "b", "c"))

    def test_overlaps_semantics(self):
        pred = overlaps("hobbies", "a", "z")
        assert pred.matches(self._obj("z"))
        assert not pred.matches(self._obj("q"))

    def test_missing_attribute_raises(self):
        with pytest.raises(QueryError):
            has_subset("ghost", "a").matches({"hobbies": set()})

    def test_non_set_attribute_raises(self):
        with pytest.raises(QueryError):
            has_subset("name", "a").matches({"name": "Jeff"})
