"""Tests for QueryExecutor.explain."""

import pytest

from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.planner import CostContext

from tests.conftest import populate_students

CTX = CostContext(num_objects=120, domain_cardinality=12, target_cardinality=3)


@pytest.fixture
def executor(student_db):
    student_db.create_ssf_index("Student", "hobbies", 64, 2)
    student_db.create_bssf_index("Student", "hobbies", 64, 2)
    student_db.create_nested_index("Student", "hobbies")
    populate_students(student_db)
    return QueryExecutor(student_db)


class TestExplain:
    def test_shows_plan_and_alternatives(self, executor):
        text = executor.explain(
            'select Student where hobbies has-subset ("Baseball", "Fishing")',
            ExecutionOptions(context=CTX),
        )
        assert "plan  :" in text
        assert "alternatives" in text
        for name in ("ssf:", "bssf:", "nix:"):
            assert name in text
        assert "<- chosen" in text

    def test_respects_preference(self, executor):
        text = executor.explain(
            'select Student where hobbies has-subset ("Baseball")',
            ExecutionOptions(context=CTX, prefer_facility="nix"),
        )
        assert "nix.superset" in text

    def test_scan_plan(self, student_db):
        populate_students(student_db)
        executor = QueryExecutor(student_db)
        text = executor.explain(
            'select Student where hobbies contains "Chess"', ExecutionOptions(context=CTX)
        )
        assert "scan(Student)" in text
        assert "residual filters" in text

    def test_does_not_modify_data(self, executor):
        db = executor.database
        count_before = db.count("Student")
        executor.explain(
            'select Student where hobbies contains "Chess"', ExecutionOptions(context=CTX)
        )
        assert db.count("Student") == count_before

    def test_residuals_listed(self, executor):
        text = executor.explain(
            'select Student where hobbies has-subset ("Golf") '
            'and hobbies contains "Chess"',
            ExecutionOptions(context=CTX),
        )
        assert "residual filters" in text
