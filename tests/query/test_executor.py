"""Tests for the query executor: correctness and statistics."""

import pytest

from repro.query.executor import QueryExecutor
from repro.query.options import ExecutionOptions
from repro.query.parser import parse_query
from repro.query.planner import CostContext

from tests.conftest import populate_students

CTX = CostContext(num_objects=120, domain_cardinality=12, target_cardinality=3)


@pytest.fixture
def full_db(student_db):
    student_db.create_ssf_index("Student", "hobbies", 64, 2)
    student_db.create_bssf_index("Student", "hobbies", 64, 2)
    student_db.create_nested_index("Student", "hobbies")
    populate_students(student_db)
    return student_db


@pytest.fixture
def executor(full_db):
    return QueryExecutor(full_db)


def brute_force(db, text):
    query = parse_query(text)
    return sorted(
        oid
        for oid, values in db.scan(query.class_name)
        if all(p.matches(values) for p in query.predicates)
    )


QUERIES = [
    'select Student where hobbies has-subset ("Baseball", "Fishing")',
    'select Student where hobbies has-subset ("Chess")',
    'select Student where hobbies in-subset '
    '("Baseball", "Fishing", "Tennis", "Golf", "Chess")',
    'select Student where hobbies contains "Sailing"',
    'select Student where hobbies overlaps ("Cycling", "Painting")',
    'select Student where hobbies set-equals ("Baseball", "Fishing", "Golf")',
]


class TestCorrectness:
    @pytest.mark.parametrize("text", QUERIES)
    @pytest.mark.parametrize("prefer", ["ssf", "bssf", "nix", None])
    def test_every_facility_matches_brute_force(
        self, executor, full_db, text, prefer
    ):
        result = executor.execute_text(text, ExecutionOptions(context=CTX, prefer_facility=prefer))
        assert sorted(result.oids()) == brute_force(full_db, text)

    @pytest.mark.parametrize("smart", [True, False])
    def test_smart_and_naive_agree(self, executor, full_db, smart):
        text = QUERIES[0]
        result = executor.execute_text(
            text, ExecutionOptions(context=CTX, prefer_facility="bssf", smart=smart)
        )
        assert sorted(result.oids()) == brute_force(full_db, text)

    def test_conjunction_applies_residuals(self, executor, full_db):
        text = (
            'select Student where hobbies has-subset ("Baseball") '
            'and hobbies in-subset '
            '("Baseball", "Fishing", "Tennis", "Golf", "Chess")'
        )
        result = executor.execute_text(text, ExecutionOptions(context=CTX))
        assert sorted(result.oids()) == brute_force(full_db, text)

    def test_rows_carry_attribute_values(self, executor):
        result = executor.execute_text(QUERIES[1], ExecutionOptions(context=CTX))
        for _, values in result.rows:
            assert "Chess" in values["hobbies"]

    def test_scan_fallback_matches(self, student_db):
        populate_students(student_db)
        executor = QueryExecutor(student_db)
        text = QUERIES[0]
        result = executor.execute_text(text, ExecutionOptions(context=CTX))
        assert "scan" in result.statistics.plan
        assert sorted(result.oids()) == brute_force(student_db, text)


class TestStatistics:
    def test_false_drops_counted(self, executor):
        result = executor.execute_text(
            QUERIES[0], ExecutionOptions(context=CTX, prefer_facility="ssf")
        )
        stats = result.statistics
        assert stats.candidates == stats.results + stats.false_drops
        assert stats.false_drops >= 0

    def test_io_snapshot_attached(self, executor):
        result = executor.execute_text(QUERIES[0], ExecutionOptions(context=CTX))
        assert result.statistics.page_accesses > 0

    def test_elapsed_recorded(self, executor):
        result = executor.execute_text(QUERIES[0], ExecutionOptions(context=CTX))
        assert result.statistics.elapsed_seconds >= 0.0

    def test_false_drop_ratio(self, executor):
        result = executor.execute_text(
            QUERIES[0], ExecutionOptions(context=CTX, prefer_facility="ssf")
        )
        ratio = result.statistics.false_drop_ratio(population=120)
        assert 0.0 <= ratio <= 1.0

    def test_nix_superset_has_no_false_drops(self, executor):
        result = executor.execute_text(
            QUERIES[0], ExecutionOptions(context=CTX, prefer_facility="nix")
        )
        assert result.statistics.false_drops == 0

    def test_detail_propagated_from_facility(self, executor):
        result = executor.execute_text(
            QUERIES[0], ExecutionOptions(context=CTX, prefer_facility="bssf")
        )
        assert "slices_read" in result.statistics.detail


class TestDataMutation:
    def test_results_reflect_deletes(self, executor, full_db):
        text = QUERIES[1]
        before = executor.execute_text(text, ExecutionOptions(context=CTX))
        victim = before.oids()[0]
        full_db.delete(victim)
        after = executor.execute_text(text, ExecutionOptions(context=CTX))
        assert victim not in after.oids()
        assert len(after) == len(before) - 1

    def test_results_reflect_inserts(self, executor, full_db):
        oid = full_db.insert(
            "Student", {"name": "new", "hobbies": {"Chess", "Golf"}}
        )
        result = executor.execute_text(QUERIES[1], ExecutionOptions(context=CTX))
        assert oid in result.oids()
