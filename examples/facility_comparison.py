"""Compare SSF, BSSF and NIX on one workload — the paper's evaluation, live.

Loads the Section 4 synthetic workload at a laptop scale (N = 2048, with V
scaled to keep the paper's posting density d = Dt·N/V ≈ 24.6), indexes the
same attribute with all three facilities, runs both query types through
each, and prints measured page accesses next to the analytical model's
prediction at the same parameters.

Run: ``python examples/facility_comparison.py``
"""

from repro.experiments.empirical import EmpiricalConfig, Testbed, empirical_sweep


def main() -> None:
    config = EmpiricalConfig(
        num_objects=2048,
        domain_cardinality=832,
        target_cardinality=10,
        signature_bits=500,
        bits_per_element=2,
        seed=1,
        queries_per_point=3,
    )
    print(
        f"building testbed: N={config.num_objects}, "
        f"V={config.domain_cardinality}, Dt={config.target_cardinality}, "
        f"F={config.signature_bits}, m={config.bits_per_element} ..."
    )
    testbed = Testbed.build(config)
    storage = testbed.database.facility_storage_report()
    print("\nindex storage (pages):")
    for path, pages in sorted(storage.items()):
        print(f"  {path:28s} {pages}  total={sum(pages.values())}")

    print()
    print(empirical_sweep(config, "superset", (1, 2, 3, 5, 8), testbed=testbed).render())
    print()
    print(empirical_sweep(config, "subset", (10, 30, 100, 300), testbed=testbed).render())
    print()
    print(
        empirical_sweep(
            config, "superset", (2, 5, 10), smart=True,
            facilities=("bssf",), testbed=testbed,
        ).render()
    )


if __name__ == "__main__":
    main()
