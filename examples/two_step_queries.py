"""The Section 1 two-step scheme as one declarative query, plus snapshots.

The paper's motivating query — "find all students who take all of the
lectures in the DB category" — is a two-step plan:

1. resolve the OIDs of Course objects with ``category = "DB"``;
2. evaluate ``Student.courses ⊇ OID-list`` through a set access facility.

With subquery support, both steps are a single statement::

    select Student where courses has-subset
        (select Course where category = "DB")

This example runs that query (and its "only DB lectures" ⊆ variant), then
snapshots the database to a file and shows the loaded copy answering the
same query identically.

Run: ``python examples/two_step_queries.py``
"""

import tempfile
from pathlib import Path

from repro import (
    CostContext,
    ExecutionOptions,
    QueryExecutor,
    load_database,
    save_database,
)
from repro.workloads.university import build_university


def main() -> None:
    campus = build_university(num_students=250, seed=21)
    db = campus.database
    db.create_nested_index("Student", "courses")
    db.create_bssf_index("Student", "courses", signature_bits=64, bits_per_element=3)

    executor = QueryExecutor(db)
    context = CostContext(
        num_objects=250, domain_cardinality=10, target_cardinality=4
    )

    all_db = (
        'select Student where courses has-subset '
        '(select Course where category = "DB")'
    )
    only_db = (
        'select Student where courses in-subset '
        '(select Course where category = "DB")'
    )

    for title, text in [("take ALL DB lectures", all_db),
                        ("take ONLY DB lectures", only_db)]:
        result = executor.execute_text(text, ExecutionOptions(context=context))
        stats = result.statistics
        print(f"{title}: {len(result)} students")
        print(f"  plan: {stats.plan}")
        print(f"  candidates={stats.candidates} false_drops={stats.false_drops} "
              f"pages={stats.page_accesses}\n")

    # Snapshot the whole database and re-run on the loaded copy.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campus.sigdb"
        save_database(db, path)
        print(f"snapshot written: {path.stat().st_size / 1024:.0f} KiB")
        loaded = load_database(path)
        replay = QueryExecutor(loaded).execute_text(
            all_db, ExecutionOptions(context=context)
        )
        original = executor.execute_text(all_db, ExecutionOptions(context=context))
        assert sorted(replay.oids()) == sorted(original.oids())
        print(
            f"loaded copy answers identically: {len(replay)} students, "
            f"plan {replay.statistics.plan}"
        )


if __name__ == "__main__":
    main()
