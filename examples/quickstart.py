"""Quickstart: index a set-valued attribute and run the paper's queries.

Creates a small object database with a ``Student`` class, builds a
bit-sliced signature file (the paper's recommended facility) over the
``hobbies`` set attribute, and runs the two motivating queries:

* Q1 (T ⊇ Q): students whose hobbies include {Baseball, Fishing};
* Q2 (T ⊆ Q): students whose hobbies are within {Baseball, Fishing, Tennis}.

Run: ``python examples/quickstart.py``
"""

import random

from repro import (
    ClassSchema,
    CostContext,
    Database,
    ExecutionOptions,
    QueryExecutor,
)

HOBBIES = [
    "Baseball", "Fishing", "Tennis", "Football", "Golf", "Chess",
    "Photography", "Climbing", "Cycling", "Painting",
]


def main() -> None:
    # 1. Define the schema and a BSSF set access facility.
    db = Database()
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index(
        "Student", "hobbies", signature_bits=128, bits_per_element=2
    )

    # 2. Populate.
    rng = random.Random(42)
    for i in range(300):
        db.insert(
            "Student",
            {"name": f"student-{i:03d}", "hobbies": set(rng.sample(HOBBIES, 3))},
        )
    db.insert("Student", {"name": "Jeff", "hobbies": {"Baseball", "Fishing"}})

    # 3. Query. The context feeds the planner's cost model (N, V, Dt).
    executor = QueryExecutor(db)
    context = CostContext(
        num_objects=301, domain_cardinality=len(HOBBIES), target_cardinality=3
    )

    for title, text in [
        ("Q1 (T ⊇ Q)",
         'select Student where hobbies has-subset ("Baseball", "Fishing")'),
        ("Q2 (T ⊆ Q)",
         'select Student where hobbies in-subset '
         '("Baseball", "Fishing", "Tennis")'),
    ]:
        result = executor.execute_text(text, ExecutionOptions(context=context))
        stats = result.statistics
        print(f"--- {title} ---")
        print(f"query : {text}")
        print(f"plan  : {stats.plan}")
        print(
            f"rows  : {len(result)}   candidates: {stats.candidates}   "
            f"false drops: {stats.false_drops}   "
            f"page accesses: {stats.page_accesses}"
        )
        for oid, values in result.rows[:5]:
            print(f"        {values['name']:14s} {sorted(values['hobbies'])}")
        if len(result) > 5:
            print(f"        ... and {len(result) - 5} more")
        print()


if __name__ == "__main__":
    main()
