"""Design-tuning advisor: pick (F, m) for a BSSF from workload statistics.

Walks through the paper's Section 5 tuning story for a user-supplied
workload (N, V, Dt, expected Dq mix):

1. the text-retrieval default ``m_opt`` and its false-drop probability;
2. the retrieval-cost-optimal small m (the paper's actual recommendation);
3. ``D_q^opt`` and the smart-strategy slice budget for ``T ⊆ Q``;
4. a final recommended configuration with projected storage and costs.

Run: ``python examples/design_tuning.py [N V Dt]``
"""

import sys

from repro.core.false_drop import false_drop_superset, rounded_optimal_m
from repro.core.tuning import best_m_for_retrieval, optimal_zero_slices
from repro.costmodel.bssf_model import BSSFCostModel
from repro.costmodel.nix_model import NIXCostModel
from repro.costmodel.parameters import CostParameters
from repro.costmodel.smart import (
    smart_subset_bssf,
    smart_subset_dq_opt,
    smart_superset_bssf,
    subset_resolution_ceiling,
)
from repro.costmodel.ssf_model import SSFCostModel


def advise(N: int, V: int, Dt: int) -> None:
    params = CostParameters(num_objects=N, domain_cardinality=V)
    candidate_fs = [25 * Dt, 50 * Dt]  # the paper's F ≈ 25·Dt and 50·Dt points
    typical_dq_superset = max(2, Dt // 3)

    print(f"workload: N={N}, V={V}, Dt={Dt}")
    print(f"candidate signature widths: F ∈ {candidate_fs}\n")

    best_config = None
    for F in candidate_fs:
        m_opt = rounded_optimal_m(F, Dt)
        m_best = best_m_for_retrieval(
            lambda m: BSSFCostModel(params, F, m).retrieval_cost_superset(
                Dt, typical_dq_superset
            ),
            max_m=m_opt,
        )
        model = BSSFCostModel(params, F, m_best)
        fd_opt = false_drop_superset(F, m_opt, Dt, typical_dq_superset)
        fd_best = false_drop_superset(F, m_best, Dt, typical_dq_superset)
        dq_opt = smart_subset_dq_opt(model, Dt)
        slices = optimal_zero_slices(
            F, m_best, Dt, model.slice_pages, subset_resolution_ceiling(model)
        )
        print(f"F = {F}:")
        print(f"  m_opt (eq. 3)        = {m_opt}   (Fd = {fd_opt:.2e})")
        print(f"  retrieval-optimal m  = {m_best}   (Fd = {fd_best:.2e})")
        print(f"  RC T⊇Q @Dq={typical_dq_superset}       = "
              f"{smart_superset_bssf(model, Dt, typical_dq_superset).cost:.1f} pages (smart)")
        print(f"  RC T⊆Q @Dq={5 * Dt}      = "
              f"{smart_subset_bssf(model, Dt, 5 * Dt).cost:.1f} pages (smart)")
        print(f"  D_q^opt              = {dq_opt:.0f}  "
              f"(examine {slices} zero slices below it)")
        print(f"  storage              = {model.storage_cost()} pages")
        print(f"  E[insert]            = {model.insert_cost_expected(Dt):.1f} pages\n")
        cost = smart_superset_bssf(model, Dt, typical_dq_superset).cost
        if best_config is None or cost < best_config[0]:
            best_config = (cost, F, m_best)

    _, F, m = best_config
    chosen = BSSFCostModel(params, F, m)
    nix = NIXCostModel(params, Dt)
    ssf = SSFCostModel(params, F, m)
    print("=== recommendation ===")
    print(f"BSSF with F={F}, m={m}")
    print(
        f"storage: BSSF {chosen.storage_cost()} pages vs "
        f"SSF {ssf.storage_cost()} vs NIX {nix.storage_cost()}"
    )
    print(
        f"T⊇Q @Dq={typical_dq_superset}: BSSF "
        f"{smart_superset_bssf(chosen, Dt, typical_dq_superset).cost:.1f} vs "
        f"NIX {nix.retrieval_cost_superset(typical_dq_superset):.1f} pages"
    )
    print(
        f"T⊆Q @Dq={5 * Dt}: BSSF "
        f"{smart_subset_bssf(chosen, Dt, 5 * Dt).cost:.1f} vs "
        f"NIX {nix.retrieval_cost_subset(5 * Dt):.1f} pages"
    )


def main() -> None:
    if len(sys.argv) == 4:
        N, V, Dt = (int(arg) for arg in sys.argv[1:])
    else:
        N, V, Dt = 32_000, 13_000, 10  # the paper's configuration
    advise(N, V, Dt)


if __name__ == "__main__":
    main()
