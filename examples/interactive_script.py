"""Drive the shell programmatically — a scripted session end to end.

Shows the statement language (`create class`, `create index`, `insert
into`, `analyze`, `explain`, queries) and meta-commands, the same surface
``sigfile-repro shell`` offers interactively.

Run: ``python examples/interactive_script.py``
"""

from repro.shell import Shell

SESSION = [
    '-- schema',
    'create class Paper (title scalar, keywords set, authors set)',
    'create index bssf on Paper.keywords (F = 256, m = 2)',
    'create index nix on Paper.authors',
    '-- data',
    'insert into Paper (title = "Signature files in OODBs",'
    ' keywords = {"signature", "sets", "oodb"},'
    ' authors = {"Ishikawa", "Kitagawa", "Ohbo"})',
    'insert into Paper (title = "Access methods survey",'
    ' keywords = {"survey", "indexing", "sets"},'
    ' authors = {"Kitagawa"})',
    'insert into Paper (title = "Text retrieval with signatures",'
    ' keywords = {"signature", "text"},'
    ' authors = {"Faloutsos"})',
    '-- statistics & planning',
    'analyze Paper.keywords',
    'explain select Paper where keywords has-subset ("signature")',
    '-- queries',
    'select Paper where keywords has-subset ("signature", "sets")',
    'select Paper where authors contains "Kitagawa"',
    'select Paper where keywords in-subset'
    ' ("signature", "sets", "oodb", "text")',
    '-- health',
    '\\tables',
    '\\indexes',
    '\\check',
]


def main() -> None:
    shell = Shell()
    for line in SESSION:
        if line.startswith("--"):
            print(f"\n{line}")
            continue
        print(f"sigdb> {line}")
        response = shell.run_line(line)
        if response:
            print(response)


if __name__ == "__main__":
    main()
