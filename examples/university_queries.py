"""The paper's Section 1 scenario: course-enrollment queries over OID sets.

Builds the Student / Course / Teacher campus, indexes the OID-valued
``Student.courses`` set attribute with both a nested index and a BSSF, and
runs the two motivating queries from the introduction:

1. "Find all students who take **all** of the lectures in the DB category"
   — processed exactly as the paper describes: first resolve the DB course
   OIDs, then evaluate ``Student.courses ⊇ OID-list`` through a set access
   facility.
2. "Find all students who take **only** lectures in the DB category"
   — the same scheme with ``Student.courses ⊆ OID-list``.

Run: ``python examples/university_queries.py``
"""

from repro.workloads.university import build_university


def main() -> None:
    campus = build_university(num_students=400, courses_per_student=3, seed=9)
    db = campus.database

    nix = db.create_nested_index("Student", "courses")
    bssf = db.create_bssf_index(
        "Student", "courses", signature_bits=64, bits_per_element=3
    )

    # Step 1 of the paper's scheme: course OIDs in the "DB" category.
    oid_list = frozenset(campus.course_oids("DB"))
    print(f"DB-category courses: {sorted(oid_list)}\n")

    # Step 2a: students taking ALL DB lectures (courses ⊇ OID-list).
    print("Query: students taking all DB lectures (T ⊇ Q)")
    for name, facility in [("NIX", nix), ("BSSF", bssf)]:
        before = db.io_snapshot()
        result = facility.search_superset(oid_list)
        matches = [
            oid for oid in result.candidates
            if oid_list <= frozenset(db.get(oid)["courses"])
        ]
        pages = (db.io_snapshot() - before).logical_total
        print(
            f"  {name:4s}: {len(matches):3d} students, "
            f"{len(result.candidates) - len(matches)} false drops, "
            f"{pages} page accesses"
        )

    # Step 2b: students taking ONLY DB lectures (courses ⊆ OID-list).
    print("\nQuery: students taking only DB lectures (T ⊆ Q)")
    for name, facility in [("NIX", nix), ("BSSF", bssf)]:
        before = db.io_snapshot()
        result = facility.search_subset(oid_list)
        matches = [
            oid for oid in result.candidates
            if frozenset(db.get(oid)["courses"]) <= oid_list
        ]
        pages = (db.io_snapshot() - before).logical_total
        print(
            f"  {name:4s}: {len(matches):3d} students, "
            f"{len(result.candidates) - len(matches)} false drops, "
            f"{pages} page accesses"
        )

    sample = [
        campus.database.get(oid)["name"]
        for oid in matches[:5]
    ]
    if sample:
        print(f"\nsample answers: {', '.join(sample)}")


if __name__ == "__main__":
    main()
