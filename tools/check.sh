#!/bin/sh
# Repo check: tier-1 test suite + smoke wall-clock benchmark.
#
# The smoke thresholds are deliberately loose (full-mode acceptance is
# 5x / 3x; smoke typically measures 3x+ / 5x+) so CI noise cannot flake
# the run while a real regression to parity-speed still fails it.
set -e

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== tracing overhead guard =="
# Golden page-access counts must be bit-identical with a live tracer
# attached (tier-1 already covers this; kept as an explicit gate so a
# future tier-1 reshuffle cannot silently drop it).
python -m pytest tests/obs/test_no_overhead.py -q

echo "== fault injection (fixed seed) =="
python -m pytest tests/faults -q

echo "== wal crash matrix (fixed seed) =="
# Byte-equivalence of crash recovery at every sampled WAL-append, torn
# write, and device-write crash point (tier-1 covers this too; an explicit
# gate so a tier-1 reshuffle cannot silently drop it).
python -m pytest tests/faults/test_wal_crash_matrix.py tests/wal -q

echo "== fault injection (randomized smoke) =="
# A fresh seed each run widens coverage over time; the seed is printed so
# any failure can be reproduced exactly.
FAULTS_RANDOM_SEED="${FAULTS_RANDOM_SEED:-$(python -c 'import secrets; print(secrets.randbelow(2**32))')}"
export FAULTS_RANDOM_SEED
echo "randomized fault seed: $FAULTS_RANDOM_SEED"
python -m pytest tests/faults/test_random_smoke.py -q

echo "== wal randomized smoke =="
# Same seed as above: random crash points and transient append faults.
python -m pytest tests/wal/test_random_smoke.py -q

echo "== concurrency (latches, service, equivalence, stress) =="
# The equivalence suite demands concurrent serving byte-identical to a
# sequential replay (results, plans, merged page counts); the stress
# test races readers against a writer under WAL durability and checks
# fsck + replay stay clean. Runs under the randomized seed exported
# above so failures reproduce exactly.
python -m pytest tests/concurrency -q

echo "== smoke benchmark =="
# Thresholds are the baked smoke-mode gates (SMOKE_THRESHOLDS in
# benchmarks/bench_wallclock.py): kernel-sweep and bulk-load speedup
# floors, batched/process serving floors, and the active-tracer
# overhead-ratio ceiling. Any breach exits non-zero here and again in
# bench_report.py (which renders the verdict table for the CI log).
python benchmarks/bench_wallclock.py --smoke --json \
    --out /tmp/BENCH_wallclock_smoke.json > /dev/null
python tools/bench_report.py /tmp/BENCH_wallclock_smoke.json

echo "== concurrent serving smoke (4 workers) =="
# Loose threshold (full-mode acceptance is 2.0x at 8 workers; smoke at 4
# workers typically measures 3x+) so CI noise cannot flake the gate
# while a serialization regression still fails it.
python benchmarks/bench_wallclock.py --smoke --concurrent-only \
    --workers 4 --min-concurrent-speedup 1.5 --json \
    --out /tmp/BENCH_concurrent_smoke.json > /dev/null
python - <<'PY'
import json
report = json.load(open("/tmp/BENCH_concurrent_smoke.json"))
c = report["concurrency"]
print(
    "concurrent serving: {:.0f} queries, 1 thr {:.1f} ms -> {} thr "
    "{:.1f} ms ({:.2f}x)".format(
        c["queries"], c["sequential_ms"], int(c["workers"]),
        c["concurrent_ms"], c["concurrent_speedup"],
    )
)
PY

echo "== replication smoke (loopback failover drill) =="
# Primary + tailing replica over loopback, random workload with a
# mid-stream checkpoint, hard primary kill, promote — the promoted
# replica must be byte-identical to the primary's durable prefix and the
# FailoverClient must ride the failover with zero transport errors.
python tools/replication_smoke.py

echo "== lsm smoke (flush/compact/crash drill) =="
# Fixed-seed churn over paired in-place / LSM databases: every canonical
# query must agree on plans, rows and object-file pages (with enough
# churn that the LSM path really flushed and compacted), then crash
# drills mid-run-file build and mid-manifest install must recover to the
# durable prefix with a clean deep fsck.
python tools/lsm_smoke.py

echo "== sharding smoke (loopback chaos drill) =="
# Three hash-partitioned shard servers behind a ShardRouter: healthy
# merges must be bit-identical to unsharded answers (rows + object-file
# page counts), a hard shard kill must raise the typed strict-mode error
# and keep degraded mode answering exact subsets, and the restarted
# shard must rejoin within the breaker cool-down.
python tools/sharding_smoke.py

echo "== network serving smoke (loopback TCP) =="
# Sustained-QPS floor and p99 latency ceiling for the wire protocol +
# RemoteClient pool against a loopback TcpQueryServer (smoke gates in
# benchmarks/bench_serving.py: ≥60 qps, p99 ≤400 ms — the dev machine
# sustains 300+ qps, so only a real serving regression trips this).
python benchmarks/bench_serving.py --smoke --json \
    --out /tmp/BENCH_serving_smoke.json > /dev/null
python tools/bench_report.py /tmp/BENCH_serving_smoke.json

echo "OK"
