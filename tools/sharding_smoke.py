"""Sharding smoke: loopback scatter-gather chaos drill.

Stands up three hash-partitioned shard servers over loopback, routes a
query mix through a ``ShardRouter`` built from the ``connect`` shard-map
syntax, kills one shard mid-run without draining, and asserts the whole
partial-result contract:

1. **Healthy equivalence** — merged rows are bit-identical to the
   unsharded answers and the aggregated object-file page counts match
   (one logical object-page read per candidate, wherever it lives);
2. **Strict taxonomy** — with the shard dead, strict mode raises a typed
   ``ShardUnavailableError`` naming exactly the lost shard, within the
   deadline budget, and the error survives a wire round trip;
3. **Degraded monotone under-reporting** — degraded mode keeps answering
   with ``partial=True`` results that are exact *subsets* of the
   complete answers (never an invented row), and recovers to complete
   answers when the shard comes back.

Exit status 0 on success; any assertion prints and exits 1. Runs in a
few seconds; CI calls it from tools/check.sh.
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.errors import ShardUnavailableError  # noqa: E402
from repro.objects.database import Database  # noqa: E402
from repro.objects.schema import ClassSchema  # noqa: E402
from repro.query.executor import QueryExecutor  # noqa: E402
from repro.server.net import TcpQueryServer  # noqa: E402
from repro.serving import connect  # noqa: E402
from repro.sharding import partition_database  # noqa: E402
from repro.storage.faults import RetryPolicy  # noqa: E402
from repro.wire import decode_error, encode_error  # noqa: E402

SEED = int(os.environ.get("SHARDING_SMOKE_SEED", "1993"))
SHARDS = 3
OBJECTS = 240
HOBBIES = [
    "Baseball", "Fishing", "Tennis", "Football", "Golf", "Chess",
    "Photography", "Climbing", "Cycling", "Painting", "Cooking", "Sailing",
]
QUERIES = [
    'select Student where hobbies has-subset ("Chess")',
    'select Student where hobbies has-subset ("Golf", "Tennis")',
    'select Student where hobbies overlaps ("Sailing", "Cooking")',
]
FAST_RETRY = RetryPolicy(
    max_attempts=2, backoff_seconds=0.02, multiplier=1.0, jitter_seconds=0.0
)


def build_source(rng: random.Random) -> Database:
    db = Database(page_size=4096, pool_capacity=0)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    db.create_bssf_index("Student", "hobbies", signature_bits=128, bits_per_element=2)
    for i in range(OBJECTS):
        db.insert(
            "Student",
            {
                "name": f"s{i:04d}",
                "hobbies": set(rng.sample(HOBBIES, rng.randint(1, 4))),
            },
        )
    return db


def main() -> int:
    rng = random.Random(SEED)
    failures: list = []
    db = build_source(rng)
    executor = QueryExecutor(db)
    golden = {text: executor.execute_text(text) for text in QUERIES}

    shards = partition_database(db, SHARDS)
    servers = [
        TcpQueryServer(
            shard, max_workers=2, shard_info={"index": i, "count": SHARDS}
        ).start()
        for i, shard in enumerate(shards)
    ]
    spec = ";".join(server.url for server in servers)
    strict = connect(
        spec, deadline_ms=5_000, shard_retry_policy=FAST_RETRY,
        retry_policy=FAST_RETRY, connect_timeout_seconds=1.0,
    )
    degraded = connect(
        spec, partial_results="degraded", deadline_ms=5_000,
        shard_retry_policy=FAST_RETRY, retry_policy=FAST_RETRY,
        connect_timeout_seconds=1.0,
    )

    try:
        # -- healthy fleet: bit-identical answers and page counts ----------
        for text in QUERIES:
            merged = strict.execute(text)
            reference = golden[text]
            if merged.oids() != reference.oids():
                failures.append(f"healthy rows diverge for {text!r}")
            if merged.partial:
                failures.append(f"healthy answer flagged partial for {text!r}")
            if merged.statistics.candidates != reference.statistics.candidates:
                failures.append(f"candidate counts diverge for {text!r}")
            mine = merged.statistics.io.for_file("objects:Student")
            theirs = reference.statistics.io.for_file("objects:Student")
            if mine != theirs:
                failures.append(
                    f"object-file page counts diverge for {text!r}: "
                    f"{mine} vs {theirs}"
                )

        # -- chaos: kill one shard without draining ------------------------
        lost = servers[1]
        lost_db = lost.service.database
        host, port = lost.address
        lost.stop(drain=False)

        started = time.monotonic()
        try:
            strict.execute(QUERIES[0])
            failures.append("strict mode answered with a dead shard")
        except ShardUnavailableError as exc:
            if exc.missing_shards != [lost.url]:
                failures.append(
                    f"strict error names {exc.missing_shards}, "
                    f"expected [{lost.url}]"
                )
            if exc.code != "shard-unavailable":
                failures.append(f"unexpected error code {exc.code!r}")
            revived = decode_error(encode_error(exc))
            if not isinstance(revived, ShardUnavailableError):
                failures.append("shard-unavailable error lost over the wire")
        if time.monotonic() - started > 10.0:
            failures.append("strict failure was not deadline-bounded")

        for text in QUERIES:
            partial = degraded.execute(text)
            if not partial.partial:
                failures.append(f"degraded answer not flagged for {text!r}")
            if partial.missing_shards != [lost.url]:
                failures.append(f"degraded missing list wrong for {text!r}")
            answered = {oid.to_int() for oid in partial.oids()}
            complete = {oid.to_int() for oid in golden[text].oids()}
            if not answered <= complete:
                failures.append(f"degraded answer invented rows for {text!r}")

        # -- recovery: bring the shard back, answers complete again --------
        replacement = TcpQueryServer(
            lost_db, host=host, port=port, max_workers=2
        )
        try:
            replacement.start()
        except OSError:
            replacement = None  # port reclaimed; recovery leg skipped
            print("note: shard port reclaimed, skipping the recovery leg")
        if replacement is not None:
            servers.append(replacement)
            deadline = time.monotonic() + 10.0
            merged = None
            while time.monotonic() < deadline:
                merged = degraded.execute(QUERIES[0])
                if not merged.partial:
                    break
                time.sleep(0.05)
            if merged is None or merged.partial:
                failures.append("router never recovered the restarted shard")
            elif merged.oids() != golden[QUERIES[0]].oids():
                failures.append("post-recovery answer diverges from golden")
    except Exception as exc:  # noqa: BLE001 — smoke must report, not die
        import traceback

        traceback.print_exc()
        failures.append(f"unexpected {type(exc).__name__}: {exc}")
    finally:
        strict.close()
        degraded.close()
        for server in servers:
            server.stop(drain=False)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "sharding smoke OK: healthy merges bit-identical, strict mode "
        "fails loudly and typed, degraded mode under-reports exact "
        f"subsets and recovers (seed {SEED})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
