"""LSM smoke: seeded flush/compact/crash drill with differential gates.

Drives one fixed-seed workload (inserts / updates / deletes over a set
attribute, SSF + BSSF indexes with a tiny flush threshold so the run
crosses many memtable flushes and background-eligible compactions) and
asserts:

1. **Differential equivalence** — every canonical query returns the same
   plan, the same rows and the same object-file page count whether the
   indexes are in-place or LSM-structured, and the LSM build is
   non-vacuous (multiple flushes, at least one compaction, several live
   runs);
2. **Crash recovery** — the workload is re-run under ``durability="lsm"``
   with a fault injector that crashes the device mid-run-file build and
   mid-manifest install; recovery from the surviving log must answer
   every canonical query exactly like a WAL-free replay of the durable
   prefix, and deep fsck must come back clean.

Exit status 0 on success; any assertion prints and exits 1. Runs in a few
seconds; CI calls it from tools/check.sh.
"""

from __future__ import annotations

import os
import random
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.errors import SimulatedCrashError  # noqa: E402
from repro.objects.database import Database  # noqa: E402
from repro.objects.oid import OID  # noqa: E402
from repro.objects.schema import ClassSchema  # noqa: E402
from repro.query.executor import QueryExecutor  # noqa: E402
from repro.recovery import run_fsck  # noqa: E402
from repro.storage import FaultRule  # noqa: E402
from repro.wal.log import WAL_FILE_NAME, scan_wal  # noqa: E402

SEED = int(os.environ.get("LSM_SMOKE_SEED", "1993"))
HOBBIES = [
    "Baseball", "Fishing", "Tennis", "Football", "Golf", "Chess",
    "Photography", "Climbing", "Cycling", "Painting", "Cooking", "Sailing",
]
QUERIES = [
    'select Student where hobbies has-subset ("Chess", "Golf")',
    'select Student where hobbies in-subset '
    '("Chess", "Golf", "Tennis", "Fishing")',
    'select Student where hobbies overlaps ("Sailing", "Cycling")',
    'select Student where hobbies contains ("Baseball")',
]
STUDENT_CLASS_ID = 1

#: tiny layout so ~150 ops cross many flushes and several compactions
LSM_PARAMS = dict(flush_threshold=8, fanout=2)

#: device-write crash dimensions for the recovery drill: mid-run-file
#: build (flushes and compaction outputs share the run writer) and
#: mid-manifest slot install
CRASH_RULES = [
    ("run-file crash", FaultRule(
        "write", "crash", file="ssf:Student.hobbies:r*", at_call=100)),
    ("run-file crash (bssf)", FaultRule(
        "write", "crash", file="bssf:Student.hobbies:r*", at_call=5000)),
    ("manifest crash", FaultRule(
        "write", "crash", file="ssf:Student.hobbies:manifest:*", at_call=60)),
]


def workload_ops(*, lsm: bool) -> list:
    """One deterministic op list; each op logs exactly one WAL record."""
    index_kwargs = dict(signature_bits=128, bits_per_element=2, seed=SEED)
    if lsm:
        index_kwargs.update(lsm=True, **LSM_PARAMS)
    ops = [
        lambda db: db.define_class(
            ClassSchema.build("Student", name="scalar", hobbies="set")),
        lambda db: db.create_ssf_index("Student", "hobbies", **index_kwargs),
        lambda db: db.create_bssf_index("Student", "hobbies", **index_kwargs),
    ]

    def _insert(i, hobbies):
        return lambda db: db.insert(
            "Student", {"name": f"s{i:03d}", "hobbies": set(hobbies)})

    def _update(serial, hobbies):
        return lambda db: db.update(
            OID(STUDENT_CLASS_ID, serial),
            {"name": f"u{serial:03d}", "hobbies": set(hobbies)})

    def _delete(serial):
        return lambda db: db.delete(OID(STUDENT_CLASS_ID, serial))

    rng = random.Random(SEED)
    live, next_serial = [], 0
    for _ in range(140):
        roll = rng.random()
        if live and roll < 0.18:
            victim = rng.choice(live)
            ops.append(_update(victim, rng.sample(HOBBIES, rng.randint(1, 4))))
        elif live and roll < 0.26:
            victim = live.pop(rng.randrange(len(live)))
            ops.append(_delete(victim))
        else:
            ops.append(_insert(next_serial, rng.sample(HOBBIES, 3)))
            live.append(next_serial)
            next_serial += 1
    return ops


def build_db(*, lsm: bool, wal_dir=None, ops_limit=None) -> Database:
    kwargs = dict(page_size=4096, pool_capacity=0)
    if wal_dir is not None:
        kwargs.update(wal_dir=wal_dir, durability="lsm")
    db = Database(**kwargs)
    ops = workload_ops(lsm=lsm)
    if ops_limit is not None:
        ops = ops[:ops_limit]
    for op in ops:
        op(db)
    return db


def answers(db: Database) -> list:
    """(plan, rows, object-file pages) per canonical query."""
    db.analyze("Student", "hobbies")
    executor = QueryExecutor(db)
    out = []
    for text in QUERIES:
        result = executor.execute_text(text)
        out.append((result.statistics.plan, tuple(result.oids())))
    out.append(("object-pages", db.objects.object_pages("Student")))
    return out


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)


def differential_drill() -> None:
    inplace = build_db(lsm=False)
    lsm = build_db(lsm=True)
    check(
        answers(inplace) == answers(lsm),
        "in-place and LSM paths disagree on plans/rows/pages",
    )
    for kind in ("ssf", "bssf"):
        facility = lsm.index("Student", "hobbies", kind)
        check(getattr(facility, "is_lsm", False), f"{kind} facility not LSM")
        check(
            facility.counters["flushes"] >= 3,
            f"{kind}: vacuous drill — fewer than 3 memtable flushes",
        )
        check(
            facility.counters["compactions"] >= 1,
            f"{kind}: vacuous drill — no compaction ran",
        )
        check(facility.run_count >= 1, f"{kind}: no live runs")
    print(
        "differential: in-place == LSM on "
        f"{len(QUERIES)} queries; flushes/compactions per index: "
        + ", ".join(
            f"{kind}={lsm.index('Student', 'hobbies', kind).counters}"
            for kind in ("ssf", "bssf")
        )
    )


def durable_ops(wal_dir: str) -> int:
    scan = scan_wal(os.path.join(wal_dir, WAL_FILE_NAME))
    return sum(1 for r in scan.records if not r.type.startswith("checkpoint"))


def crash_drill(label: str, rule: FaultRule) -> None:
    with tempfile.TemporaryDirectory(prefix="lsm-smoke-") as wal_dir:
        db = Database(wal_dir=wal_dir, durability="lsm")
        db.attach_fault_injector(rules=[rule])
        crashed = False
        try:
            for op in workload_ops(lsm=True):
                op(db)
        except SimulatedCrashError:
            crashed = True
        check(crashed, f"{label}: fault never fired — drill is vacuous")
        db.detach_fault_injector()
        db.close()

        p = durable_ops(wal_dir)
        check(p >= 3, f"{label}: durable prefix too short to query")
        recovered = Database.open(wal_dir)
        check(recovered.durability == "lsm", f"{label}: durability lost")
        report = run_fsck(recovered, deep=True)
        check(report.ok, f"{label}: fsck dirty after recovery: {report}")
        baseline = build_db(lsm=True, ops_limit=p)
        check(
            answers(recovered) == answers(baseline),
            f"{label}: recovered answers diverge from the "
            f"{p}-op durable prefix",
        )
        recovered.close()
        print(f"{label}: recovered {p}-op prefix, fsck clean, answers match")


def main() -> int:
    differential_drill()
    for label, rule in CRASH_RULES:
        crash_drill(label, rule)
    print("lsm smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
