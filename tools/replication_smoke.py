"""Replication smoke: loopback failover drill with byte-equivalence gates.

Stands up a WAL-mode primary behind a ``TcpQueryServer``, subscribes a
``ReplicaDatabase`` over loopback, drives a fixed-seed random workload
(inserts / updates / deletes, an index build, a mid-run checkpoint), then
kills the primary server without draining, promotes the replica, and
asserts:

1. **Byte-equivalence** — the promoted replica's pages are byte-identical
   to a fresh replay of the primary's durable log prefix up to the
   replica's watermark (the replication guarantee in one line);
2. **Failover-aware client** — a ``FailoverClient`` given both endpoints
   completes queries before and after the failover with zero transport
   errors raised to the caller;
3. **Replica serving** — a query answered by the replica is equivalent to
   the same query answered locally (count + per-query page reads).

Exit status 0 on success; any assertion prints and exits 1. Runs in a few
seconds; CI calls it from tools/check.sh.
"""

from __future__ import annotations

import hashlib
import os
import random
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.client.failover import FailoverClient  # noqa: E402
from repro.objects.database import Database  # noqa: E402
from repro.objects.schema import ClassSchema  # noqa: E402
from repro.replication import ReplicaDatabase  # noqa: E402
from repro.server.net import TcpQueryServer  # noqa: E402
from repro.server.service import QueryService  # noqa: E402

SEED = int(os.environ.get("REPLICATION_SMOKE_SEED", "1993"))
HOBBIES = [
    "Baseball", "Fishing", "Tennis", "Football", "Golf", "Chess",
    "Photography", "Climbing", "Cycling", "Painting", "Cooking", "Sailing",
]
QUERY = 'select Student where hobbies has-subset ("Chess")'


def fingerprint(db) -> str:
    """SHA-256 over every page of every file (sorted), post-flush."""
    db.storage.flush()
    store = db.storage.store
    digest = hashlib.sha256()
    for name in sorted(store.file_names()):
        digest.update(name.encode())
        digest.update(store.num_pages(name).to_bytes(4, "little"))
        for page_no in range(store.num_pages(name)):
            digest.update(store.page_image(name, page_no))
    return digest.hexdigest()


def durable_prefix_fingerprint(wal_dir: str) -> str:
    """Recover the primary's durable state (checkpoint + log) in a copy.

    Recovery replays the same deterministic redo handlers replication
    ships through, so this is the ground truth the promoted replica must
    match byte for byte.
    """
    copy = tempfile.mkdtemp(prefix="durable-prefix-")
    for name in os.listdir(wal_dir):
        shutil.copy2(os.path.join(wal_dir, name), os.path.join(copy, name))
    db = Database.open(copy)
    digest = fingerprint(db)
    db.wal.close()
    return digest


def drive_workload(db, rng: random.Random, count: int) -> list:
    oids = []
    for i in range(count):
        roll = rng.random()
        if oids and roll < 0.15:
            victim = rng.choice(oids)
            db.update(
                victim,
                {
                    "name": f"u{i:04d}",
                    "hobbies": set(rng.sample(HOBBIES, rng.randint(1, 4))),
                },
            )
        elif oids and roll < 0.25:
            oids.remove(victim := rng.choice(oids))
            db.delete(victim)
        else:
            oids.append(
                db.insert(
                    "Student",
                    {
                        "name": f"s{i:04d}",
                        "hobbies": set(rng.sample(HOBBIES, rng.randint(1, 4))),
                    },
                )
            )
    return oids


def main() -> int:
    rng = random.Random(SEED)
    tmp = tempfile.mkdtemp(prefix="replication-smoke-")
    primary_dir = os.path.join(tmp, "primary")
    replica_dir = os.path.join(tmp, "replica")

    db = Database(wal_dir=primary_dir)
    db.define_class(ClassSchema.build("Student", name="scalar", hobbies="set"))
    primary_server = TcpQueryServer(db, heartbeat_seconds=0.2).start()

    replica = ReplicaDatabase(
        primary_server.url, replica_dir, name="smoke-replica",
        stall_timeout_seconds=5.0,
    )
    replica_server = TcpQueryServer(
        service=QueryService(replica.database, max_workers=2),
        heartbeat_seconds=0.2,
    ).start()

    client = FailoverClient([primary_server.url, replica_server.url])
    failures = []

    try:
        drive_workload(db, rng, 120)
        db.create_bssf_index(
            "Student", "hobbies", signature_bits=64, bits_per_element=2
        )
        db.checkpoint()  # truncates the log while the subscriber tails
        drive_workload(db, rng, 80)

        if not replica.wait_for_lsn(db.wal.end_lsn, timeout=20):
            failures.append(
                f"replica never caught up: watermark {replica.watermark} "
                f"< primary end {db.wal.end_lsn} ({replica.last_error})"
            )

        token = client.lsn_token()
        before = client.execute(QUERY, min_lsn=token)
        local_service = QueryService(db, max_workers=1)
        local = local_service.execute(QUERY)
        local_service.shutdown()
        if len(before.rows) != len(local.rows):
            failures.append(
                f"replica read disagrees: remote {len(before.rows)} "
                f"vs local {len(local.rows)}"
            )

        watermark = replica.watermark
        primary_fp = durable_prefix_fingerprint(primary_dir)

        # -- failover: kill the primary hard, promote the replica ----------
        primary_server.stop(drain=False)
        replica.stop()
        promoted = replica.promote()
        promoted_fp = fingerprint(promoted)
        if promoted_fp != primary_fp:
            failures.append(
                "promoted replica diverges from the primary's durable "
                f"prefix at watermark {watermark}"
            )

        # The same client, no restarts: the batch must route to the
        # promoted endpoint without surfacing a transport error.
        after = client.execute_many([QUERY] * 4)
        if len(after) != 4:
            failures.append(f"post-failover batch returned {len(after)} results")
        for result in after:
            if len(result.rows) != len(local.rows):
                failures.append("post-failover result diverges")
                break
        promoted.insert(
            "Student", {"name": "post-promotion", "hobbies": {"Chess"}}
        )
        grown = client.execute(QUERY)
        if len(grown.rows) != len(local.rows) + 1:
            failures.append("write to the promoted primary not visible")
    except Exception as exc:  # noqa: BLE001 — smoke must report, not die
        import traceback

        traceback.print_exc()
        failures.append(f"unexpected {type(exc).__name__}: {exc}")
    finally:
        client.close()
        replica_server.stop()
        replica.close()
        primary_server.stop(drain=False)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "replication smoke OK: caught up, read-your-writes honored, "
        "promoted state byte-identical, failover invisible to the client "
        f"(seed {SEED})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
