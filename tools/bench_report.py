"""Render a BENCH_wallclock.json report as a markdown table.

Reads the JSON written by ``benchmarks/bench_wallclock.py`` and prints a
human-readable summary — configuration, per-benchmark timings/speedups and
threshold verdicts — suitable for pasting into a PR description::

    python tools/bench_report.py [BENCH_wallclock.json]

Exits non-zero if the report's recorded ``pass`` flag is false.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_CONFIG_LABELS = [
    ("num_objects", "N"),
    ("signature_bits", "F"),
    ("bits_per_element", "m"),
    ("domain_cardinality", "|D|"),
    ("target_cardinality", "Dt"),
    ("page_size", "page"),
]


def render(report: dict) -> str:
    config = report.get("config", {})
    summary = ", ".join(
        f"{label}={config[key]}" for key, label in _CONFIG_LABELS if key in config
    )
    lines = [f"## Wall-clock benchmark ({report.get('mode', '?')} mode)"]
    if summary:
        lines.extend(["", f"Configuration: {summary}"])
    thresholds = report.get("thresholds", {})
    results = report.get("results", {})
    if results:
        lines.extend(
            [
                "",
                "| benchmark | naive (ms) | kernels (ms) | speedup | threshold |",
                "|---|---:|---:|---:|---|",
            ]
        )
    for name, metrics in sorted(results.items()):
        minimum = thresholds.get(name)
        if minimum is None:
            verdict = "—"
        elif metrics["speedup"] >= minimum:
            verdict = f"PASS (≥{minimum:g}x)"
        else:
            verdict = f"FAIL (<{minimum:g}x)"
        lines.append(
            f"| {name} | {metrics['naive_ms']:.2f} | {metrics['kernels_ms']:.2f} "
            f"| {metrics['speedup']:.2f}x | {verdict} |"
        )
    overhead = report.get("tracer_overhead")
    if overhead:
        ceiling = thresholds.get("tracer_overhead")
        verdict = ""
        if ceiling is not None:
            state = "PASS" if overhead["overhead_ratio"] <= ceiling else "FAIL"
            verdict = f" — {state} (≤{ceiling:g}x)"
        lines.append("")
        lines.append(
            "Active-tracer overhead (BSSF subset sweep): "
            f"off {overhead['off_ms']:.2f} ms → on {overhead['on_ms']:.2f} ms "
            f"({overhead['overhead_ratio']:.2f}x){verdict}"
        )
    batched = report.get("batched")
    if batched:
        floor = thresholds.get("batched")
        verdict = ""
        if floor is not None:
            state = "PASS" if batched["batched_speedup"] >= floor else "FAIL"
            verdict = f" — {state} (≥{floor:g}x)"
        lines.append("")
        lines.append(
            f"Batched execute_many (batch={int(batched['batch_size'])}, "
            f"{int(batched['queries'])} queries): "
            f"{batched['sequential_ms']:.2f} ms → {batched['batched_ms']:.2f} ms "
            f"({batched['batched_speedup']:.2f}x){verdict}"
        )
    process = report.get("process")
    if process:
        floor = thresholds.get("process")
        verdict = ""
        if floor is not None:
            state = "PASS" if process["process_speedup"] >= floor else "FAIL"
            verdict = f" — {state} (≥{floor:g}x)"
        lines.append("")
        lines.append(
            f"Process-pool serving ({int(process['workers'])} workers, "
            f"{int(process['queries'])} queries, CPU-bound): "
            f"{process['sequential_ms']:.2f} ms → {process['process_ms']:.2f} ms "
            f"({process['process_speedup']:.2f}x){verdict}"
        )
    sharded = report.get("sharded")
    if sharded:
        floor = thresholds.get("sharded")
        verdict = ""
        if floor is not None:
            state = "PASS" if sharded["sharded_speedup"] >= floor else "FAIL"
            verdict = f" — {state} (≥{floor:g}x)"
        lines.append("")
        lines.append(
            f"Sharded scatter-gather ({int(sharded['shards'])} shards, "
            f"{int(sharded['queries'])} queries): "
            f"{sharded['sequential_ms']:.2f} ms → {sharded['sharded_ms']:.2f} ms "
            f"({sharded['sharded_speedup']:.2f}x){verdict}"
        )
    lsm = report.get("lsm")
    if lsm:
        floor = thresholds.get("lsm_update")
        verdict = ""
        if floor is not None:
            state = "PASS" if lsm["update_speedup"] >= floor else "FAIL"
            verdict = f" — {state} (≥{floor:g}x)"
        ceiling = thresholds.get("lsm_wal_overhead")
        wal_verdict = ""
        if ceiling is not None:
            state = "PASS" if lsm["wal_overhead_ratio"] <= ceiling else "FAIL"
            wal_verdict = f" — {state} (≤{ceiling:g}x)"
        lines.append("")
        lines.append(
            f"LSM update sweep ({int(lsm['updates_per_sweep'])} updates): "
            f"in-place+WAL {lsm['inplace_wal_ms']:.2f} ms → "
            f"LSM+WAL {lsm['lsm_wal_ms']:.2f} ms "
            f"({lsm['update_speedup']:.2f}x){verdict}; "
            f"WAL overhead under LSM {lsm['wal_overhead_ratio']:.2f}x"
            f"{wal_verdict}"
        )
    wal = report.get("wal_overhead")
    if wal:
        lines.append("")
        lines.append(
            "WAL overhead (update sweep, append+fsync per update): "
            f"off {wal['off_ms']:.2f} ms → on {wal['on_ms']:.2f} ms "
            f"({wal['overhead_ratio']:.2f}x)"
        )
    serving = report.get("serving")
    if serving:
        gates = serving.get("thresholds", {})
        floor = gates.get("serving_min_qps")
        ceiling = gates.get("serving_max_p99_ms")
        qps_verdict = ""
        if floor is not None:
            state = "PASS" if serving["qps"] >= floor else "FAIL"
            qps_verdict = f" — {state} (≥{floor:g} qps)"
        p99_verdict = ""
        if ceiling is not None:
            state = "PASS" if serving["p99_ms"] <= ceiling else "FAIL"
            p99_verdict = f" — {state} (≤{ceiling:g} ms)"
        lines.append("")
        lines.append(
            f"Network serving ({int(serving['clients'])} clients, "
            f"{int(serving['workers'])} workers, "
            f"{int(serving['requests'])} requests over "
            f"{serving['duration_s']:.2f} s): "
            f"{serving['qps']:.1f} qps sustained{qps_verdict}; "
            f"p50 {serving['p50_ms']:.2f} ms, "
            f"p99 {serving['p99_ms']:.2f} ms{p99_verdict}"
        )
        if serving.get("errors"):
            lines.append(
                f"  FAIL: {int(serving['errors'])} request error(s)"
            )
    lines.append("")
    lines.append(f"Overall: {'PASS' if report['pass'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report",
        type=Path,
        nargs="?",
        default=REPO_ROOT / "BENCH_wallclock.json",
        help="path to a bench_wallclock JSON report",
    )
    args = parser.parse_args(argv)
    report = json.loads(args.report.read_text())
    print(render(report))
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
